//! Mini sensitivity study: how the L2 CAM size and the TSV latency move
//! performance (the paper's Figures 7 and 9, at example scale).
//!
//! Run: `cargo run --release --example sensitivity`

use spacea::arch::{HwConfig, Machine, RunSpec};
use spacea::mapping::{LocalityMapping, MappingStrategy};
use spacea::matrix::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = suite::entry_by_name("consph").expect("known Table I matrix");
    let a = entry.generate(128);
    let x = vec![1.0; a.cols()];
    let base = HwConfig::tiny();
    let mapping = LocalityMapping::default().map(&a, &base.shape);

    println!("L2 CAM size sweep (consph):");
    for sets in [32usize, 256, 2048, 8192] {
        let mut hw = base.clone();
        hw.l2_cam.sets = sets;
        let r = Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping))?.into_report();
        println!(
            "  L2 sets {sets:>5} ({:>4} KB): {} cycles, L2 hit {:.1}%",
            sets * 4 * 32 / 1024,
            r.cycles,
            r.l2_hit_rate * 100.0
        );
    }

    println!("TSV latency sweep (consph):");
    let mut baseline = None;
    for lat in [1u64, 2, 4, 8, 16] {
        let mut hw = base.clone();
        hw.tsv_latency = lat;
        let r = Machine::new(hw).run(RunSpec::spmv(&a, &x, &mapping))?.into_report();
        let base_cycles = *baseline.get_or_insert(r.cycles);
        println!(
            "  latency {lat:>2}: {} cycles ({:.2}x)",
            r.cycles,
            r.cycles as f64 / base_cycles as f64
        );
    }
    Ok(())
}
