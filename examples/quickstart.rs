//! Quickstart: simulate one SpMV on a SpaceA machine and inspect the report.
//!
//! Run: `cargo run --release --example quickstart`

use spacea::arch::HwConfig;
use spacea::core::{Accelerator, MappingChoice};
use spacea::matrix::gen::{banded, BandedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small FEM-style matrix: clustered row lengths, columns near the
    // diagonal — the structural pattern SpaceA's mapping exploits.
    let a = banded(&BandedConfig { n: 2048, mean_row_nnz: 32.0, ..Default::default() });
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    println!("matrix: {}", a.stats());

    // A single-cube machine with the paper's per-cube structure.
    let accel = Accelerator::builder()
        .hw_config(HwConfig::with_shape(spacea::mapping::MachineShape {
            cubes: 1,
            vaults_per_cube: 16,
            product_bgs_per_vault: 7,
            banks_per_bg: 2,
        }))
        .mapping(MappingChoice::Proposed)
        .build()?;

    let run = accel.spmv(&a, &x)?;
    let r = &run.report;
    println!("simulated {} cycles ({:.2} us at 1 GHz)", r.cycles, r.seconds * 1e6);
    println!("validated against the software oracle: {}", r.validated);
    println!("L1 CAM hit rate: {:.1}%", r.l1_hit_rate * 100.0);
    println!("L2 CAM hit rate: {:.1}%", r.l2_hit_rate * 100.0);
    println!("TSV traffic: {} bytes", r.tsv_bytes);
    println!("NoC traffic: {} byte-hops", r.noc_byte_hops);
    println!("normalized workload: {:.3}", r.normalized_workload);
    println!(
        "energy: {:.2} uJ (DRAM {:.2} + PE/CAM {:.2} + interconnect {:.2} + static {:.2})",
        run.energy.total_j() * 1e6,
        run.energy.dram_dynamic_j * 1e6,
        run.energy.pe_cam_dynamic_j * 1e6,
        run.energy.interconnect_dynamic_j * 1e6,
        run.energy.static_j * 1e6,
    );
    println!("y[0..4] = {:?}", &r.output[..4]);
    Ok(())
}
