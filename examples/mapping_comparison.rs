//! Compare the naive and proposed mappings on matrices from the Table I
//! suite — the experiment behind the paper's Figures 5 and 6, at example
//! scale.
//!
//! Run: `cargo run --release --example mapping_comparison`

use spacea::arch::{HwConfig, Machine, RunSpec};
use spacea::mapping::{LocalityMapping, MappingStrategy, NaiveMapping};
use spacea::matrix::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = HwConfig::tiny();
    println!(
        "machine: {} cubes x {} vaults, {} product PEs",
        hw.shape.cubes,
        hw.shape.vaults_per_cube,
        hw.shape.product_pes()
    );
    println!(
        "{:<20} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "matrix", "naive (cyc)", "prop (cyc)", "speedup", "L1 naive", "L1 prop"
    );

    for name in ["bcsstk32", "pwtk", "xenon2"] {
        let entry = suite::entry_by_name(name).expect("known Table I matrix");
        let a = entry.generate(256);
        let x = vec![1.0; a.cols()];

        let naive = NaiveMapping::default().map(&a, &hw.shape);
        let proposed = LocalityMapping::default().map(&a, &hw.shape);

        let machine = Machine::new(hw.clone());
        let rn = machine.run(RunSpec::spmv(&a, &x, &naive))?.into_report();
        let rp = machine.run(RunSpec::spmv(&a, &x, &proposed))?.into_report();

        println!(
            "{:<20} {:>12} {:>12} {:>8.2}x {:>9.1}% {:>9.1}%",
            name,
            rn.cycles,
            rp.cycles,
            rn.cycles as f64 / rp.cycles as f64,
            rn.l1_hit_rate * 100.0,
            rp.l1_hit_rate * 100.0,
        );
    }
    println!();
    println!("the proposed mapping wins by clustering rows with overlapping");
    println!("column sets onto the same PE/bank group, turning input-vector");
    println!("accesses into L1 CAM hits instead of TSV/NoC round trips");
    println!("(power-law graphs benefit less: their hub columns defeat row");
    println!("clustering, which is the paper's Figure 6 story for ids 12-14)");
    Ok(())
}
