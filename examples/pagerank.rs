//! Graph analytics on SpaceA: PageRank as iterated SpMV (the paper's
//! Section V-F case study, at example scale).
//!
//! Run: `cargo run --release --example pagerank`

use spacea::arch::{HwConfig, Machine, RunSpec};
use spacea::graph::workloads::CaseStudyGraph;
use spacea::graph::{pagerank, PageRankConfig};
use spacea::mapping::{LocalityMapping, MappingStrategy};
use spacea::matrix::Coo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled Wiki-shaped power-law graph.
    let g = CaseStudyGraph::Wiki.generate(512);
    println!("graph: {} vertices, {} edges", g.rows(), g.nnz());

    // Numerical PageRank (the software oracle).
    let pr = pagerank(&g, &PageRankConfig::default());
    println!("pagerank converged: {} after {} iterations", pr.converged, pr.iterations);
    let mut top: Vec<(usize, f64)> = pr.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
    println!("top 3 vertices: {:?}", &top[..3]);

    // One PageRank iteration is one SpMV with the column-normalized
    // transpose; SpaceA's timing for the whole run is iterations x one
    // simulated SpMV (the mapping is computed once and amortized).
    let n = g.rows();
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let deg = g.row_nnz(i).max(1) as f64;
        for (j, _) in g.row(i) {
            coo.push(j as usize, i, 1.0 / deg)?;
        }
    }
    let operand = coo.to_csr();

    let hw = HwConfig::tiny();
    let mapping = LocalityMapping::default().map(&operand, &hw.shape);
    let x = vec![1.0 / n as f64; n];
    let report = Machine::new(hw).run(RunSpec::spmv(&operand, &x, &mapping))?.into_report();
    println!(
        "one SpMV iteration on SpaceA: {} cycles ({:.2} us); full PageRank: {:.2} us",
        report.cycles,
        report.seconds * 1e6,
        report.seconds * 1e6 * pr.iterations as f64,
    );
    println!("validated: {}", report.validated);
    Ok(())
}
