//! Scientific computing on SpaceA: solve a diagonally dominant linear system
//! with Jacobi iteration, every SpMV running on the simulated accelerator.
//!
//! Run: `cargo run --release --example jacobi_solver`

use spacea::arch::HwConfig;
use spacea::core::solvers::jacobi;
use spacea::core::Accelerator;
use spacea::matrix::Coo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2D 5-point Laplacian-like system on a 24x24 grid: the canonical
    // FEM/finite-difference kernel the paper's structural matrices come from.
    let grid = 24usize;
    let n = grid * grid;
    let mut coo = Coo::new(n, n);
    for r in 0..grid {
        for c in 0..grid {
            let i = r * grid + c;
            coo.push(i, i, 4.5)?;
            if r > 0 {
                coo.push(i, i - grid, -1.0)?;
            }
            if r + 1 < grid {
                coo.push(i, i + grid, -1.0)?;
            }
            if c > 0 {
                coo.push(i, i - 1, -1.0)?;
            }
            if c + 1 < grid {
                coo.push(i, i + 1, -1.0)?;
            }
        }
    }
    let a = coo.to_csr();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.1).collect();
    let b = a.spmv(&x_true);

    let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build()?;
    let result = jacobi(&accel, &a, &b, 1e-10, 500)?;

    let max_err =
        result.x.iter().zip(&x_true).map(|(got, want)| (got - want).abs()).fold(0.0f64, f64::max);
    println!("system: {n} unknowns, {} non-zeros", a.nnz());
    println!("converged: {} in {} iterations", result.converged, result.iterations);
    println!("max error vs ground truth: {max_err:.2e}");
    println!(
        "simulated device time: {:.1} us, energy: {:.2} uJ",
        result.device_seconds * 1e6,
        result.device_energy_j * 1e6
    );
    Ok(())
}
