//! The Section VII execution model: offload SpMV over PCIe and quantify how
//! many iterations amortize the one-time preprocessing + transfer cost.
//!
//! Run: `cargo run --release --example offload_amortization`

use spacea::arch::HwConfig;
use spacea::core::offload::{offload_spmv, PcieModel};
use spacea::core::Accelerator;
use spacea::matrix::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = Accelerator::builder().hw_config(HwConfig::tiny()).build()?;
    let pcie = PcieModel::default();

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>14}",
        "matrix", "setup (us)", "iter (us)", "copy-out(us)", "iters to 10%"
    );
    for name in ["bcsstk32", "pwtk", "webbase-1M"] {
        let entry = suite::entry_by_name(name).expect("known Table I matrix");
        let a = entry.generate(512);
        let x = vec![1.0; a.cols()];
        let r = offload_spmv(&accel, &pcie, &a, &x)?;
        let needed =
            r.amortization_iterations(0.1).map(|n| n.to_string()).unwrap_or_else(|| "1".into());
        println!(
            "{:<20} {:>12.1} {:>12.2} {:>12.2} {:>14}",
            name,
            r.setup_s() * 1e6,
            r.iteration_s * 1e6,
            r.transfer_out_s * 1e6,
            needed,
        );
    }
    println!();
    println!("the paper's argument (Sections I and VII): iterative applications");
    println!("reuse the same matrix across many SpMV runs, so the mapping and");
    println!("PCIe transfer are one-time costs that amortize away");
    Ok(())
}
