//! SpaceA: a full reproduction of *SpaceA: Sparse Matrix Vector
//! Multiplication on Processing-in-Memory Accelerator* (HPCA 2021).
//!
//! This facade crate re-exports every sub-crate of the workspace so examples
//! and downstream users can depend on a single `spacea` crate:
//!
//! * [`matrix`] — sparse formats, Matrix Market I/O, synthetic Table I suite.
//! * [`sim`] — the event-driven simulator substrate (engine, DRAM, CAM, NoC).
//! * [`mapping`] — the two-phase mapping algorithm (Algorithm 1 + placement).
//! * [`model`] — energy / power / area models (Table II, CACTI-3DD-style).
//! * [`gpu`] — GPU (Titan Xp) and CPU baselines.
//! * [`arch`] — the SpaceA machine: PEs, bank groups, vaults, cubes.
//! * [`graph`] — graph analytics (PageRank, SSSP) as iterated semiring SpMV.
//! * [`core`] — the high-level [`core::Accelerator`] API and the experiment
//!   framework that regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use spacea::core::Accelerator;
//! use spacea::matrix::gen::{banded, BandedConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = banded(&BandedConfig { n: 512, ..Default::default() });
//! let x = vec![1.0; a.cols()];
//! let accel = Accelerator::builder().build()?;
//! let run = accel.spmv(&a, &x)?;
//! println!("simulated {} cycles", run.report.cycles);
//! # Ok(())
//! # }
//! ```

pub use spacea_arch as arch;
pub use spacea_core as core;
pub use spacea_gpu as gpu;
pub use spacea_graph as graph;
pub use spacea_mapping as mapping;
pub use spacea_matrix as matrix;
pub use spacea_model as model;
pub use spacea_sim as sim;
