//! The `Backend` trait: every SpMV execution model behind one entrypoint.
//!
//! Before this crate, the SpaceA machine (`spacea-arch`), the Titan Xp
//! csrmv model and the DGX-1 CPU model (`spacea-gpu`) were special-cased
//! call sites in `core` and `bench`. A [`Backend`] runs one
//! [`ScenarioSpec`] — a matrix in a chosen [`FormatKind`] with a chosen
//! [`Partition`] — and returns a [`ScenarioRun`] whose output vector is
//! bitwise-equal to the `Csr::spmv` reference, which makes the
//! backend × format × partitioning grid sweepable through the harness
//! cache like any other job.
//!
//! Four backends implement the trait:
//!
//! * [`SpaceaBackend`] — the paper's machine, driven through
//!   `Machine::run(RunSpec)`; needs a [`Mapping`].
//! * [`GpuBackend`] — the Titan Xp csrmv roofline, with the matrix-stream
//!   term re-derived from the format's storage model.
//! * [`CpuBackend`] — a bandwidth-bound stream model of the DGX-1 host.
//! * [`hbm::HbmBackend`] — a Serpens-style HBM accelerator: the matrix is
//!   sharded across channels ([`Partition`]), each channel streams its
//!   slots at a fixed rate, and an accumulator reorder window charges a
//!   stall whenever the same output row recurs too soon — which is
//!   exactly what SELL-C-σ's row interleaving avoids (DESIGN.md §8).

#![warn(missing_docs)]

pub mod hbm;

pub use hbm::{HbmBackend, HbmDetail, HbmSpec};

use spacea_arch::{HwConfig, Machine, RunSpec};
use spacea_gpu::spec::Dgx1CpuSpec;
use spacea_gpu::{simulate_csrmv, TitanXpSpec};
use spacea_mapping::Mapping;
use spacea_matrix::formats::SparseFormat;
use spacea_matrix::Csr;

/// Bytes of useful payload per logical non-zero (4 B column index + 8 B
/// value), the unit behind every backend's effective-bandwidth metric.
pub const NNZ_BYTES: u64 = 12;

/// Titan Xp core clock, used to express GPU model time in cycles.
pub const GPU_CLOCK_HZ: f64 = 1.582e9;

/// DGX-1 host (Xeon E5-2698 v4) clock, used to express CPU model time in
/// cycles.
pub const CPU_CLOCK_HZ: f64 = 2.2e9;

/// How a backend shards the matrix across its parallel resources
/// (SparseP's 1D partitioning taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Equal contiguous row ranges per shard.
    RowSplit,
    /// Contiguous row ranges balanced by stored slots per shard.
    NnzSplit,
}

impl Partition {
    /// Every partitioning, in sweep order.
    pub const ALL: [Partition; 2] = [Partition::RowSplit, Partition::NnzSplit];

    /// Short name used in CLI axes, CSV cells and job labels.
    pub fn label(self) -> &'static str {
        match self {
            Partition::RowSplit => "row",
            Partition::NnzSplit => "nnz",
        }
    }

    /// Parses a [`Partition::label`] string.
    pub fn parse(s: &str) -> Option<Partition> {
        Partition::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The execution models the scenario matrix sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The SpaceA machine (paper Section III).
    Spacea,
    /// The Titan Xp csrmv model (paper Section II-B).
    Gpu,
    /// The DGX-1 host CPU stream model.
    Cpu,
    /// The Serpens-style HBM streaming accelerator model.
    Hbm,
}

impl BackendKind {
    /// Every backend, in sweep order.
    pub const ALL: [BackendKind; 4] =
        [BackendKind::Spacea, BackendKind::Gpu, BackendKind::Cpu, BackendKind::Hbm];

    /// Short name used in CLI axes, CSV cells and job labels.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Spacea => "spacea",
            BackendKind::Gpu => "gpu",
            BackendKind::Cpu => "cpu",
            BackendKind::Hbm => "hbm",
        }
    }

    /// Parses a [`BackendKind::label`] string.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.label() == s)
    }

    /// Whether this backend consumes a SpaceA [`Mapping`].
    pub fn needs_mapping(self) -> bool {
        matches!(self, BackendKind::Spacea)
    }

    /// Builds this backend from the machine / device parameters.
    pub fn build(self, hw: &HwConfig, gpu: &TitanXpSpec, hbm: &HbmSpec) -> Box<dyn Backend> {
        match self {
            BackendKind::Spacea => Box::new(SpaceaBackend { hw: hw.clone() }),
            BackendKind::Gpu => Box::new(GpuBackend { spec: *gpu }),
            BackendKind::Cpu => Box::new(CpuBackend { spec: Dgx1CpuSpec::default() }),
            BackendKind::Hbm => Box::new(HbmBackend { spec: *hbm }),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the scenario matrix: run `format`'s representation of `a`
/// with `partition` sharding on some backend, against input `x`.
pub struct ScenarioSpec<'a> {
    /// The canonical CSR (the bitwise reference and the mapping input).
    pub a: &'a Csr,
    /// The storage layout the backend executes.
    pub format: &'a dyn SparseFormat,
    /// How the backend shards the matrix.
    pub partition: Partition,
    /// The input vector (`len == a.cols()`).
    pub x: &'a [f64],
    /// A SpaceA mapping; required by [`BackendKind::needs_mapping`]
    /// backends, ignored by the rest.
    pub mapping: Option<&'a Mapping>,
}

/// What every backend reports for one scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// The output vector, bitwise-equal to `Csr::spmv` on the same matrix.
    pub y: Vec<f64>,
    /// Modelled execution time in cycles of the backend's own clock.
    pub cycles: u64,
    /// Modelled execution time in seconds.
    pub time_s: f64,
    /// Bytes of matrix storage streamed (the format's footprint).
    pub stream_bytes: u64,
    /// Useful-payload throughput: `nnz × 12 B / time` (Figure 2's metric).
    pub effective_bw: f64,
    /// The format's storage bytes per logical non-zero.
    pub bytes_per_nnz: f64,
    /// Accumulator reorder-window stalls (HBM backend; 0 elsewhere).
    pub reorder_stalls: u64,
}

/// A `run(spec)`-shaped SpMV execution model (see the crate docs).
pub trait Backend {
    /// Which model this is.
    fn kind(&self) -> BackendKind;

    /// Runs one scenario cell.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the spec is unrunnable
    /// (missing mapping, dimension mismatch, simulator fault).
    fn run(&self, spec: &ScenarioSpec<'_>) -> Result<ScenarioRun, String>;
}

pub(crate) fn check_dims(spec: &ScenarioSpec<'_>) -> Result<(), String> {
    if spec.x.len() != spec.a.cols() {
        return Err(format!("input length {} != {} columns", spec.x.len(), spec.a.cols()));
    }
    if spec.format.rows() != spec.a.rows() || spec.format.cols() != spec.a.cols() {
        return Err(format!(
            "format is {}x{} but matrix is {}x{}",
            spec.format.rows(),
            spec.format.cols(),
            spec.a.rows(),
            spec.a.cols()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SpaceA
// ---------------------------------------------------------------------------

/// The SpaceA machine behind the [`Backend`] trait: a cycle-accurate
/// `Machine::run(RunSpec)` with the scenario's mapping. The partition axis
/// is subsumed by the mapping (row assignment *is* SpaceA's partitioning);
/// the format contributes its storage model to the stream-bytes report.
pub struct SpaceaBackend {
    /// Machine configuration.
    pub hw: HwConfig,
}

impl Backend for SpaceaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spacea
    }

    fn run(&self, spec: &ScenarioSpec<'_>) -> Result<ScenarioRun, String> {
        check_dims(spec)?;
        let mapping = spec.mapping.ok_or("the spacea backend requires a mapping")?;
        let out = Machine::new(self.hw.clone())
            .run(RunSpec::spmv(spec.a, spec.x, mapping))
            .map_err(|e| e.to_string())?;
        let report = out.report;
        let y = out.outputs.into_iter().next().ok_or("machine produced no output vector")?;
        let effective_bw = if report.seconds > 0.0 {
            (spec.a.nnz() as u64 * NNZ_BYTES) as f64 / report.seconds
        } else {
            0.0
        };
        Ok(ScenarioRun {
            y,
            cycles: report.cycles,
            time_s: report.seconds,
            stream_bytes: spec.format.bytes() as u64,
            effective_bw,
            bytes_per_nnz: spec.format.bytes_per_nnz(),
            reorder_stalls: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// GPU
// ---------------------------------------------------------------------------

/// The Titan Xp csrmv roofline behind the [`Backend`] trait.
///
/// `simulate_csrmv` models the CSR stream + input-vector gather traffic;
/// this wrapper swaps the CSR stream term for the scenario format's
/// storage footprint and re-evaluates the bandwidth/ALU roofline, so COO's
/// extra row indices and SELL/BCSR padding cost real modelled time.
pub struct GpuBackend {
    /// Device parameters.
    pub spec: TitanXpSpec,
}

impl Backend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    fn run(&self, spec: &ScenarioSpec<'_>) -> Result<ScenarioRun, String> {
        check_dims(spec)?;
        let base = simulate_csrmv(&self.spec, spec.a);
        // Replace the CSR stream with the format's footprint, keeping the
        // gather/write traffic the cache model already priced.
        let csr_stream = spec.a.csr_bytes() as i64;
        let fmt_stream = spec.format.bytes() as i64;
        let dram_bytes = (base.dram_bytes as i64 + fmt_stream - csr_stream).max(0) as u64;
        let mem_time = dram_bytes as f64 / (self.spec.dram_bw * base.bw_efficiency);
        let alu_time = spec.a.nnz() as f64 / self.spec.peak_flops;
        let time_s = mem_time.max(alu_time).max(f64::MIN_POSITIVE);
        Ok(ScenarioRun {
            y: spec.format.spmv(spec.x),
            cycles: (time_s * GPU_CLOCK_HZ).ceil() as u64,
            time_s,
            stream_bytes: spec.format.bytes() as u64,
            effective_bw: (spec.a.nnz() as u64 * NNZ_BYTES) as f64 / time_s,
            bytes_per_nnz: spec.format.bytes_per_nnz(),
            reorder_stalls: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

/// A bandwidth-bound stream model of the DGX-1 host CPU: the format's
/// storage streams once, every non-zero gathers 8 B of `x` (no cache
/// credit), and `y` is read and written once per row, all at the host's
/// sustained streaming efficiency.
pub struct CpuBackend {
    /// Host parameters.
    pub spec: Dgx1CpuSpec,
}

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn run(&self, spec: &ScenarioSpec<'_>) -> Result<ScenarioRun, String> {
        check_dims(spec)?;
        let bytes =
            spec.format.bytes() as u64 + 8 * spec.a.nnz() as u64 + 16 * spec.a.rows() as u64;
        let time_s =
            (bytes as f64 / (self.spec.mem_bw * self.spec.bw_efficiency)).max(f64::MIN_POSITIVE);
        Ok(ScenarioRun {
            y: spec.format.spmv(spec.x),
            cycles: (time_s * CPU_CLOCK_HZ).ceil() as u64,
            time_s,
            stream_bytes: spec.format.bytes() as u64,
            effective_bw: (spec.a.nnz() as u64 * NNZ_BYTES) as f64 / time_s,
            bytes_per_nnz: spec.format.bytes_per_nnz(),
            reorder_stalls: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_mapping::MapKind;
    use spacea_matrix::formats::FormatKind;
    use spacea_matrix::gen::{banded, BandedConfig};

    fn sample() -> Csr {
        banded(&BandedConfig { n: 96, mean_row_nnz: 6.0, seed: 11, ..Default::default() })
    }

    fn input(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn labels_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.label()), Some(b));
        }
        for p in Partition::ALL {
            assert_eq!(Partition::parse(p.label()), Some(p));
        }
        assert_eq!(BackendKind::parse("tpu"), None);
        assert_eq!(Partition::parse("2d"), None);
    }

    #[test]
    fn every_backend_times_every_format_and_matches_csr_bitwise() {
        let a = sample();
        let x = input(a.cols());
        let want = bits(&a.spmv(&x));
        let hw = HwConfig::tiny();
        let mapping = MapKind::Proposed.strategy().map(&a, &hw.shape);
        for bk in BackendKind::ALL {
            let backend = bk.build(&hw, &TitanXpSpec::default(), &HbmSpec::default());
            assert_eq!(backend.kind(), bk);
            for fk in FormatKind::ALL {
                let format = fk.build(&a);
                let spec = ScenarioSpec {
                    a: &a,
                    format: format.as_ref(),
                    partition: Partition::RowSplit,
                    x: &x,
                    mapping: Some(&mapping),
                };
                let run = backend.run(&spec).unwrap_or_else(|e| panic!("{bk}/{fk}: {e}"));
                assert_eq!(bits(&run.y), want, "{bk}/{fk} must be bitwise CSR");
                assert!(run.cycles > 0, "{bk}/{fk}");
                assert!(run.time_s > 0.0, "{bk}/{fk}");
                assert!(run.stream_bytes > 0, "{bk}/{fk}");
                assert!(run.effective_bw > 0.0, "{bk}/{fk}");
            }
        }
    }

    #[test]
    fn spacea_requires_a_mapping() {
        let a = sample();
        let x = input(a.cols());
        let format = FormatKind::Csr.build(&a);
        let spec = ScenarioSpec {
            a: &a,
            format: format.as_ref(),
            partition: Partition::RowSplit,
            x: &x,
            mapping: None,
        };
        let err = SpaceaBackend { hw: HwConfig::tiny() }.run(&spec).unwrap_err();
        assert!(err.contains("mapping"), "{err}");
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = sample();
        let format = FormatKind::Coo.build(&a);
        let x = vec![1.0; a.cols() + 1];
        let spec = ScenarioSpec {
            a: &a,
            format: format.as_ref(),
            partition: Partition::RowSplit,
            x: &x,
            mapping: None,
        };
        assert!(CpuBackend { spec: Dgx1CpuSpec::default() }.run(&spec).is_err());
    }

    #[test]
    fn gpu_model_charges_formats_with_bigger_footprints() {
        let a = sample();
        let x = input(a.cols());
        let backend = GpuBackend { spec: TitanXpSpec::default() };
        let time_of = |fk: FormatKind| {
            let format = fk.build(&a);
            let spec = ScenarioSpec {
                a: &a,
                format: format.as_ref(),
                partition: Partition::RowSplit,
                x: &x,
                mapping: None,
            };
            backend.run(&spec).map(|r| r.time_s).unwrap_or(0.0)
        };
        // COO streams 16 B/nnz against CSR's ~12: strictly slower in the
        // bandwidth-bound regime.
        assert!(time_of(FormatKind::Coo) > time_of(FormatKind::Csr));
    }
}
