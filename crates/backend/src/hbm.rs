//! A Serpens-style HBM streaming accelerator model.
//!
//! Serpens (DAC 2022) streams a sparse matrix out of HBM with one
//! processing lane per channel and accumulates partial sums in on-chip
//! URAM. Two properties dominate its performance and are what this model
//! captures:
//!
//! 1. **Channel sharding** — the packed matrix stream is split into
//!    contiguous shards, one per HBM channel, with shard boundaries set
//!    by the [`crate::Partition`] (equal rows vs equal non-zeros); the
//!    run finishes when the *slowest* channel drains, so imbalance costs
//!    real time.
//! 2. **The accumulator reorder window** — a floating-point accumulator
//!    has multi-cycle latency, so an element whose output row was touched
//!    within the last [`HbmSpec::reorder_window`] pipeline slots incurs a
//!    read-after-write stall. A row-major CSR stream is the worst case
//!    (every long row stalls on itself); SELL-C-σ's column-major slices
//!    space same-row elements `C` slots apart, which is exactly the
//!    scheduling trick Serpens implements in hardware.
//!
//! The model consumes [`SparseFormat::stream_rows`] — the format's own
//! slot emission order — so the format axis changes HBM cycle counts
//! through two real mechanisms: storage footprint (bytes to stream) and
//! stream schedule (stalls). Padding slots cost bandwidth but also space
//! out live elements, the classic ELLPACK trade.

use crate::{check_dims, Backend, BackendKind, Partition, ScenarioRun, ScenarioSpec, NNZ_BYTES};
use spacea_matrix::formats::PAD;
use spacea_obs::sampler::{MetricKey, Timeline};
use spacea_obs::series::Series;

/// Parameters of the HBM accelerator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmSpec {
    /// HBM pseudo-channels feeding independent lanes (Serpens uses 24 for
    /// the matrix).
    pub channels: usize,
    /// Stream bandwidth per channel, bytes per accelerator cycle.
    pub channel_bytes_per_cycle: f64,
    /// Accelerator clock in Hz.
    pub freq_hz: f64,
    /// Pipeline slots an output row must stay untouched before it can be
    /// accumulated again without stalling (the fp-add latency shadow).
    pub reorder_window: usize,
    /// Penalty per reorder conflict, in cycles.
    pub stall_cycles: u64,
}

impl Default for HbmSpec {
    fn default() -> Self {
        // 24 channels × 32 B/cycle × 450 MHz ≈ 345.6 GB/s of matrix
        // stream, Serpens-scale; window 6 < SELL's default C of 8, so a
        // well-interleaved stream clears the accumulator shadow.
        HbmSpec {
            channels: 24,
            channel_bytes_per_cycle: 32.0,
            freq_hz: 450.0e6,
            reorder_window: 6,
            stall_cycles: 3,
        }
    }
}

/// Per-channel accounting of one HBM run, consumed by [`hbm_timeline`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HbmDetail {
    /// Stream slots (live + padding) each channel drained.
    pub channel_slots: Vec<u64>,
    /// Bytes each channel streamed.
    pub channel_bytes: Vec<u64>,
    /// Cycles each channel took (stream + stalls).
    pub channel_cycles: Vec<u64>,
    /// Reorder-window stalls each channel hit.
    pub channel_stalls: Vec<u64>,
    /// Aggregate stream-bandwidth utilization in `[0, 1]`: bytes moved
    /// over bytes the channels could have moved while the slowest drained.
    pub utilization: f64,
}

/// The Serpens-style HBM backend (see the module docs).
pub struct HbmBackend {
    /// Accelerator parameters.
    pub spec: HbmSpec,
}

impl HbmBackend {
    /// Runs one scenario cell, returning the per-channel accounting next
    /// to the scenario report.
    ///
    /// # Errors
    ///
    /// Returns a message for dimension mismatches (the model itself
    /// cannot fault).
    pub fn run_detailed(
        &self,
        spec: &ScenarioSpec<'_>,
    ) -> Result<(ScenarioRun, HbmDetail), String> {
        check_dims(spec)?;
        let channels = self.spec.channels.max(1);
        let window = self.spec.reorder_window;
        let rows = spec.a.rows();
        let nnz = spec.a.nnz();

        let stream = spec.format.stream_rows();
        let slots_total = stream.len().max(1);
        let bytes_per_slot = spec.format.bytes() as f64 / slots_total as f64;

        // Channels own *contiguous shards of the stream* (Serpens feeds
        // each lane a contiguous slice of the packed matrix), so the
        // format's slot spacing — SELL's C-way interleaving in particular
        // — survives sharding. Row-split cuts shard boundaries so every
        // channel sees an equal share of output rows (rows counted in
        // first-appearance order, which for a row-major stream is the
        // classic contiguous row range); nnz-split balances live slots.
        let mut slots = vec![0u64; channels];
        let mut stalls = vec![0u64; channels];
        // Each channel's last `window` stream slots (PAD included: padding
        // occupies a pipeline slot and therefore spaces live elements).
        let mut recent: Vec<Vec<u32>> = vec![vec![PAD; window]; channels];
        let mut cursor = vec![0usize; channels];
        let mut seen = vec![false; rows];
        let mut rows_seen = 0usize;
        let mut live_seen = 0usize;
        for &r in &stream {
            if r != PAD && !seen[r as usize] {
                seen[r as usize] = true;
                rows_seen += 1;
            }
            let ch = match spec.partition {
                Partition::RowSplit => (rows_seen.saturating_sub(1) * channels)
                    .checked_div(rows)
                    .map_or(0, |c| c.min(channels - 1)),
                Partition::NnzSplit => {
                    (live_seen * channels).checked_div(nnz).map_or(0, |c| c.min(channels - 1))
                }
            };
            if r != PAD {
                live_seen += 1;
            }
            slots[ch] += 1;
            if window > 0 {
                if r != PAD && recent[ch].contains(&r) {
                    stalls[ch] += 1;
                }
                let at = cursor[ch];
                recent[ch][at] = r;
                cursor[ch] = (at + 1) % window;
            }
        }

        let mut cycles = vec![0u64; channels];
        let mut bytes = vec![0u64; channels];
        let mut max_cycles = 1u64;
        for ch in 0..channels {
            bytes[ch] = (slots[ch] as f64 * bytes_per_slot).round() as u64;
            let drain = (bytes[ch] as f64 / self.spec.channel_bytes_per_cycle).ceil() as u64;
            cycles[ch] = drain + stalls[ch] * self.spec.stall_cycles;
            max_cycles = max_cycles.max(cycles[ch]);
        }
        let time_s = max_cycles as f64 / self.spec.freq_hz;
        let total_bytes: u64 = bytes.iter().sum();
        let capacity = max_cycles as f64 * channels as f64 * self.spec.channel_bytes_per_cycle;
        let detail = HbmDetail {
            channel_slots: slots,
            channel_bytes: bytes,
            channel_cycles: cycles,
            channel_stalls: stalls.clone(),
            utilization: if capacity > 0.0 { total_bytes as f64 / capacity } else { 0.0 },
        };
        let run = ScenarioRun {
            y: spec.format.spmv(spec.x),
            cycles: max_cycles,
            time_s,
            stream_bytes: spec.format.bytes() as u64,
            effective_bw: (spec.a.nnz() as u64 * NNZ_BYTES) as f64 / time_s,
            bytes_per_nnz: spec.format.bytes_per_nnz(),
            reorder_stalls: stalls.iter().sum(),
        };
        Ok((run, detail))
    }
}

impl Backend for HbmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hbm
    }

    fn run(&self, spec: &ScenarioSpec<'_>) -> Result<ScenarioRun, String> {
        self.run_detailed(spec).map(|(run, _)| run)
    }
}

/// Builds an observability timeline from one HBM run: per-channel gauges
/// (keyed like per-vault machine gauges) plus run-level aggregates, all
/// under keys registered in `spacea_obs::registry::METRICS`.
pub fn hbm_timeline(detail: &HbmDetail) -> Timeline {
    let channels = detail.channel_cycles.len();
    let end = detail.channel_cycles.iter().copied().max().unwrap_or(1).max(1);
    let mut series = Vec::with_capacity(3 * channels + 2);
    for ch in 0..channels {
        let mut bytes = Series::new(2, end);
        bytes.record(detail.channel_cycles[ch], detail.channel_bytes[ch] as f64);
        series.push((MetricKey::vault("hbm", ch, "channel-bytes"), bytes));
        let mut cycles = Series::new(2, end);
        cycles.record(detail.channel_cycles[ch], detail.channel_cycles[ch] as f64);
        series.push((MetricKey::vault("hbm", ch, "channel-cycles"), cycles));
        let mut stalls = Series::new(2, end);
        stalls.record(detail.channel_cycles[ch], detail.channel_stalls[ch] as f64);
        series.push((MetricKey::vault("hbm", ch, "channel-stalls"), stalls));
    }
    let mut total_stalls = Series::new(2, end);
    total_stalls.record(end, detail.channel_stalls.iter().sum::<u64>() as f64);
    series.push((MetricKey::global("hbm", "reorder-stalls"), total_stalls));
    let mut util = Series::new(2, end);
    util.record(end, detail.utilization);
    series.push((MetricKey::global("hbm", "utilization"), util));
    Timeline { series, slices: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::formats::FormatKind;
    use spacea_matrix::gen::{banded, BandedConfig};
    use spacea_matrix::{suite, Csr};

    fn sample() -> Csr {
        banded(&BandedConfig { n: 200, mean_row_nnz: 16.0, seed: 7, ..Default::default() })
    }

    fn run_kind(a: &Csr, kind: FormatKind, partition: Partition) -> (ScenarioRun, HbmDetail) {
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let format = kind.build(a);
        let spec = ScenarioSpec { a, format: format.as_ref(), partition, x: &x, mapping: None };
        HbmBackend { spec: HbmSpec::default() }.run_detailed(&spec).unwrap()
    }

    #[test]
    fn sell_interleaving_beats_csr_on_stalls() {
        let a = sample();
        let (csr, _) = run_kind(&a, FormatKind::Csr, Partition::RowSplit);
        let (sell, _) = run_kind(&a, FormatKind::Sell, Partition::RowSplit);
        // A row-major CSR stream stalls on every long row; SELL's default
        // C of 8 exceeds the reorder window of 6, clearing the shadow.
        assert!(csr.reorder_stalls > 0, "CSR must hit the accumulator shadow");
        assert_eq!(sell.reorder_stalls, 0, "SELL-C-σ must clear the reorder window");
        assert_eq!(
            csr.y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sell.y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn nnz_split_balances_power_law_matrices() {
        // Stanford-shaped: a few heavy rows. Row-split leaves one channel
        // holding the heavy rows; nnz-split evens out the drain time.
        let a = suite::entry_by_id(13).unwrap().generate(2048);
        let (_, row) = run_kind(&a, FormatKind::Csr, Partition::RowSplit);
        let (_, nnz) = run_kind(&a, FormatKind::Csr, Partition::NnzSplit);
        let spread = |d: &HbmDetail| {
            let max = *d.channel_slots.iter().max().unwrap() as f64;
            let mean = d.channel_slots.iter().sum::<u64>() as f64 / d.channel_slots.len() as f64;
            max / mean.max(1.0)
        };
        assert!(
            spread(&nnz) < spread(&row),
            "nnz-split spread {:.3} must beat row-split spread {:.3}",
            spread(&nnz),
            spread(&row)
        );
    }

    #[test]
    fn partitions_change_the_cycle_count() {
        let a = suite::entry_by_id(13).unwrap().generate(2048);
        let (row, _) = run_kind(&a, FormatKind::Csr, Partition::RowSplit);
        let (nnz, _) = run_kind(&a, FormatKind::Csr, Partition::NnzSplit);
        assert_ne!(row.cycles, nnz.cycles, "partitioning must be a real axis");
        assert!(nnz.cycles < row.cycles, "balancing must help a power-law matrix");
    }

    #[test]
    fn channel_accounting_is_conserved() {
        let a = sample();
        for partition in Partition::ALL {
            for kind in FormatKind::ALL {
                let (run, detail) = run_kind(&a, kind, partition);
                let slots: u64 = detail.channel_slots.iter().sum();
                let format = kind.build(&a);
                assert_eq!(slots as usize, format.stored_slots(), "{kind}/{partition}");
                assert_eq!(run.cycles, *detail.channel_cycles.iter().max().unwrap());
                assert!(detail.utilization > 0.0 && detail.utilization <= 1.0);
            }
        }
    }

    #[test]
    fn timeline_uses_registered_keys_only() {
        let a = sample();
        let (_, detail) = run_kind(&a, FormatKind::Sell, Partition::RowSplit);
        let tl = hbm_timeline(&detail);
        assert!(!tl.series.is_empty());
        for (key, _) in &tl.series {
            assert!(
                spacea_obs::registry::is_known(&key.component, &key.name),
                "unregistered metric {}/{}",
                key.component,
                key.name
            );
        }
    }

    #[test]
    fn empty_matrix_still_runs() {
        let a = spacea_matrix::Coo::new(8, 8).to_csr();
        let (run, _) = run_kind(&a, FormatKind::Csr, Partition::NnzSplit);
        assert_eq!(run.y, vec![0.0; 8]);
        assert!(run.cycles >= 1);
    }
}
