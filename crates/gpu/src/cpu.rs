//! Bandwidth-bound analytic model of the DGX-1 host CPU (Table III baseline).
//!
//! The paper runs GAP-benchmark PageRank and SSSP on 2× Xeon E5-2698 as the
//! CPU baseline. Graph analytics on well-optimized CPU code is memory-bound,
//! so the model charges per-iteration DRAM traffic against the host's
//! sustained bandwidth.

use crate::spec::Dgx1CpuSpec;
use spacea_matrix::Csr;

/// Modelled CPU execution of an iterative graph workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuRun {
    /// Total execution time in seconds.
    pub time_s: f64,
    /// Total DRAM traffic in bytes.
    pub bytes: u64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Bytes touched per edge per sweep in a GAP-style pull implementation:
/// 4 B column index + 8 B weight, plus the gathered vertex value — a random
/// access that pulls a cache line and, on power-law graphs, wastes most of
/// it (charged at half a 64 B line on average).
const BYTES_PER_EDGE: u64 = 44;
/// Bytes touched per vertex per sweep (old + new value + degree).
const BYTES_PER_VERTEX: u64 = 20;

/// Models `iterations` full sweeps over the graph (PageRank-style: every
/// iteration touches every edge).
pub fn model_full_sweeps(spec: &Dgx1CpuSpec, a: &Csr, iterations: usize) -> CpuRun {
    let per_iter = a.nnz() as u64 * BYTES_PER_EDGE + a.rows() as u64 * BYTES_PER_VERTEX;
    let bytes = per_iter * iterations as u64;
    CpuRun { time_s: bytes as f64 / (spec.mem_bw * spec.bw_efficiency), bytes, iterations }
}

/// Models frontier-based sweeps (SSSP-style): iteration `i` touches
/// `active[i]` of the edges, expressed as fractions of the edge total.
pub fn model_frontier_sweeps(spec: &Dgx1CpuSpec, a: &Csr, active_fractions: &[f64]) -> CpuRun {
    let mut bytes = 0u64;
    for &f in active_fractions {
        let f = f.clamp(0.0, 1.0);
        bytes += (a.nnz() as f64 * f) as u64 * BYTES_PER_EDGE
            + (a.rows() as f64 * f.min(1.0)) as u64 * BYTES_PER_VERTEX;
    }
    CpuRun {
        time_s: bytes as f64 / (spec.mem_bw * spec.bw_efficiency),
        bytes,
        iterations: active_fractions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::gen::{rmat, RmatConfig};

    fn graph() -> Csr {
        rmat(&RmatConfig { n: 2048, edges: 16384, ..Default::default() })
    }

    #[test]
    fn time_scales_with_iterations() {
        let spec = Dgx1CpuSpec::default();
        let g = graph();
        let r10 = model_full_sweeps(&spec, &g, 10);
        let r20 = model_full_sweeps(&spec, &g, 20);
        assert!((r20.time_s / r10.time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frontier_cheaper_than_full() {
        let spec = Dgx1CpuSpec::default();
        let g = graph();
        let full = model_full_sweeps(&spec, &g, 4);
        let frontier = model_frontier_sweeps(&spec, &g, &[0.1, 0.5, 0.5, 0.1]);
        assert!(frontier.time_s < full.time_s);
    }

    #[test]
    fn bandwidth_bound_magnitude() {
        // A 16k-edge graph sweep should take microseconds on a 150 GB/s host.
        let r = model_full_sweeps(&Dgx1CpuSpec::default(), &graph(), 1);
        assert!(r.time_s > 1e-7 && r.time_s < 1e-2, "time {}", r.time_s);
    }

    #[test]
    fn fractions_clamped() {
        let spec = Dgx1CpuSpec::default();
        let g = graph();
        let a = model_frontier_sweeps(&spec, &g, &[2.0]);
        let b = model_full_sweeps(&spec, &g, 1);
        assert!((a.time_s - b.time_s).abs() / b.time_s < 0.01);
    }
}
