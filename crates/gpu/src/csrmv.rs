//! Transaction-level model of cuSPARSE `csrmv()` on Titan Xp.
//!
//! Execution time is the roofline maximum of the memory time and the compute
//! time:
//!
//! * memory time = total DRAM traffic / achieved bandwidth, where traffic is
//!   the streamed CSR arrays, the output-vector read+write, and the
//!   input-vector gather misses from an L2 cache simulation;
//! * achieved bandwidth = peak bandwidth × an efficiency factor derived from
//!   the row-length distribution: rows much shorter than a warp leave lanes
//!   idle, and high row-length variance causes divergence and uncoalesced
//!   bursts (the reason the paper's matrices 12–14 utilize the DRAM poorly).
//!
//! The model reports the same metrics the paper profiles in Figure 2: DRAM
//! read throughput, effective read throughput (`nnz`·12 B / time), achieved
//! GFLOPs and ALU utilization.

use crate::cache::CacheSim;
use crate::spec::TitanXpSpec;
use spacea_matrix::Csr;

/// Result of one modelled csrmv execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRun {
    /// Modelled execution time in seconds.
    pub time_s: f64,
    /// Total DRAM traffic in bytes (reads + writes).
    pub dram_bytes: u64,
    /// DRAM *read* traffic in bytes.
    pub dram_read_bytes: u64,
    /// DRAM read throughput in bytes/s (Figure 2's orange bars).
    pub dram_read_throughput: f64,
    /// Effective read throughput: `nnz × 12 B / time` (Figure 2's blue bars).
    pub effective_read_throughput: f64,
    /// DRAM bandwidth utilization (read throughput / peak).
    pub bw_utilization: f64,
    /// Achieved GFLOP/s, computed as `nnz / time` per the paper.
    pub gflops: f64,
    /// ALU utilization: achieved over peak fp64 GFLOPs.
    pub alu_utilization: f64,
    /// Modelled energy in joules.
    pub energy_j: f64,
    /// The bandwidth efficiency factor applied (for tests and ablation).
    pub bw_efficiency: f64,
    /// L2 hit rate on input-vector gathers.
    pub x_l2_hit_rate: f64,
}

/// Bytes per non-zero in the effective-throughput metric (4 B column index +
/// 8 B double value).
pub const NNZ_BYTES: u64 = 12;

/// Models one `y = A·x` csrmv launch on the GPU.
///
/// Deterministic: the L2 cache simulation walks rows in order, mirroring the
/// row-major scheduling of csrmv thread blocks.
pub fn simulate_csrmv(spec: &TitanXpSpec, a: &Csr) -> GpuRun {
    let stats = a.stats();
    let nnz = a.nnz() as u64;

    // --- Traffic ---------------------------------------------------------
    // CSR arrays stream once; y is read and written once per row.
    let csr_stream = a.csr_bytes() as u64;
    // Input-vector gathers filtered by the L2.
    let mut l2 = CacheSim::new(spec.l2_bytes, spec.l2_ways, spec.line_bytes);
    for i in 0..a.rows() {
        for &c in a.row_cols(i) {
            l2.access(c as u64 * 8);
        }
    }
    let x_traffic = l2.miss_bytes();
    let read_bytes = csr_stream + x_traffic + (a.rows() * 8) as u64;
    let write_bytes = (a.rows() * 8) as u64;
    let dram_bytes = read_bytes + write_bytes;

    // --- Bandwidth efficiency ---------------------------------------------
    let eff = bandwidth_efficiency(stats.mean_row_nnz, stats.stddev_row_nnz);
    let achieved_bw = spec.dram_bw * eff;

    // --- Roofline ----------------------------------------------------------
    let mem_time = dram_bytes as f64 / achieved_bw;
    let compute_time = nnz as f64 / spec.peak_flops;
    let time_s = mem_time.max(compute_time);

    let dram_read_throughput = read_bytes as f64 / time_s;
    let effective_read_throughput = (nnz * NNZ_BYTES) as f64 / time_s;
    let gflops = nnz as f64 / time_s;
    let bw_utilization = dram_read_throughput / spec.dram_bw;
    let alu_utilization = gflops / spec.peak_flops;

    // --- Energy -------------------------------------------------------------
    let power = spec.idle_power_w
        + spec.dram_power_w * bw_utilization.min(1.0)
        + spec.alu_power_w * alu_utilization.min(1.0);
    let energy_j = power * time_s;

    let x_accesses = l2.hits() + l2.misses();
    GpuRun {
        time_s,
        dram_bytes,
        dram_read_bytes: read_bytes,
        dram_read_throughput,
        effective_read_throughput,
        bw_utilization,
        gflops,
        alu_utilization,
        energy_j,
        bw_efficiency: eff,
        x_l2_hit_rate: if x_accesses == 0 { 0.0 } else { l2.hits() as f64 / x_accesses as f64 },
    }
}

/// Bandwidth efficiency as a function of row-length statistics.
///
/// * `row_factor` — cuSPARSE assigns warps to rows; rows much shorter than a
///   warp (32 threads) leave lanes idle and issue small bursts.
/// * `skew_factor` — high σ/μ causes load imbalance across warps and
///   divergent, uncoalesced gathers.
///
/// Calibrated so structural Table I matrices land near the paper's ~43%
/// average utilization (excluding graphs) and the power-law matrices fall to
/// single digits.
pub fn bandwidth_efficiency(mean_row: f64, stddev_row: f64) -> f64 {
    let mean_row = mean_row.max(1e-9);
    let row_factor = mean_row / (mean_row + 4.0);
    let cov = stddev_row / mean_row;
    let skew_factor = 1.0 / (1.0 + 0.6 * cov).powi(2);
    (0.62 * row_factor * skew_factor).clamp(0.005, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::suite;

    fn run(name: &str) -> GpuRun {
        let e = suite::entry_by_name(name).expect("known matrix");
        simulate_csrmv(&TitanXpSpec::default(), &e.generate(128))
    }

    #[test]
    fn structural_matrix_utilizes_bandwidth_well() {
        let r = run("cant");
        assert!(
            r.bw_utilization > 0.25 && r.bw_utilization < 0.7,
            "cant utilization {} out of the paper's structural range",
            r.bw_utilization
        );
    }

    #[test]
    fn power_law_matrices_utilize_poorly() {
        for name in ["soc-sign-epinions", "Stanford", "webbase-1M"] {
            let r = run(name);
            assert!(
                r.bw_utilization < 0.2,
                "{name} utilization {} should be poor",
                r.bw_utilization
            );
        }
    }

    #[test]
    fn alu_utilization_is_single_digit() {
        for name in ["cant", "pwtk", "Stanford"] {
            let r = run(name);
            assert!(r.alu_utilization < 0.10, "{name} ALU util {}", r.alu_utilization);
        }
    }

    #[test]
    fn effective_close_to_actual_for_structural() {
        // Figure 2: "the effective bandwidth utilization is close to the
        // actual bandwidth utilization" — little redundant traffic.
        let r = run("bcsstk32");
        let ratio = r.effective_read_throughput / r.dram_read_throughput;
        assert!(ratio > 0.6 && ratio <= 1.05, "effective/actual ratio {ratio}");
    }

    #[test]
    fn memory_bound_not_compute_bound() {
        let r = run("consph");
        // If memory-bound, achieved GFLOPs must sit far below peak.
        assert!(r.alu_utilization < 0.2);
        assert!(r.time_s > 0.0);
    }

    #[test]
    fn energy_positive_and_plausible() {
        let r = run("cant");
        let power = r.energy_j / r.time_s;
        assert!(power > 55.0 && power < 275.0, "GPU power {power} W implausible");
    }

    #[test]
    fn efficiency_monotone_in_skew() {
        assert!(bandwidth_efficiency(50.0, 5.0) > bandwidth_efficiency(50.0, 100.0));
        assert!(bandwidth_efficiency(50.0, 10.0) > bandwidth_efficiency(3.0, 10.0));
    }

    #[test]
    fn deterministic() {
        let e = suite::entry_by_id(1).unwrap();
        let m = e.generate(256);
        let s = TitanXpSpec::default();
        assert_eq!(simulate_csrmv(&s, &m), simulate_csrmv(&s, &m));
    }
}
