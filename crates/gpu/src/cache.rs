//! A minimal set-associative cache simulator.
//!
//! Used to estimate the GPU's L2 behaviour on input-vector gathers: every
//! miss becomes a 32-byte DRAM transaction. The model only needs hit/miss
//! accounting, so lines carry no data.

/// A set-associative LRU cache over byte addresses.
///
/// # Example
///
/// ```
/// use spacea_gpu::cache::CacheSim;
///
/// let mut c = CacheSim::new(1024, 4, 32);
/// assert!(!c.access(0));  // cold miss
/// assert!(c.access(8));   // same 32 B line
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_use)
    num_sets: usize,
    ways: usize,
    line_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates a cache of `capacity_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the capacity is smaller than one
    /// way of lines.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(
            capacity_bytes > 0 && ways > 0 && line_bytes > 0,
            "cache parameters must be positive"
        );
        let num_sets = (capacity_bytes / (ways * line_bytes)).max(1);
        CacheSim {
            sets: vec![Vec::with_capacity(ways); num_sets],
            num_sets,
            ways,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Misses allocate the line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr / self.line_bytes as u64;
        let set_ix = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let set = &mut self.sets[set_ix];
        if let Some(way) = set.iter_mut().find(|(t, _)| *t == tag) {
            way.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // On a full set the LRU way is replaced; an empty ways list (never
        // built by `new`) degrades to a plain insert rather than a panic.
        let lru = set.iter().enumerate().min_by_key(|(_, (_, lu))| *lu).map(|(i, _)| i);
        match lru {
            Some(victim) if set.len() >= self.ways => set[victim] = (tag, self.tick),
            _ => set.push((tag, self.tick)),
        }
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Miss traffic in bytes (misses × line size).
    pub fn miss_bytes(&self) -> u64 {
        self.misses * self.line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_hits() {
        let mut c = CacheSim::new(4096, 4, 32);
        assert!(!c.access(100)); // cold miss, line 3
        assert!(c.access(101)); // same line
        assert!(c.access(96)); // still line 3 (96..128)
        assert!(!c.access(31)); // line 0: cold miss
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn capacity_evictions() {
        // 2 sets × 1 way × 32 B = tiny cache; alternating lines thrash.
        let mut c = CacheSim::new(64, 1, 32);
        assert!(!c.access(0));
        assert!(!c.access(64)); // same set (line 2 % 2 = 0), evicts line 0
        assert!(!c.access(0)); // thrashed
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn lru_within_set() {
        // 1 set × 2 ways.
        let mut c = CacheSim::new(64, 2, 32);
        c.access(0); // line 0
        c.access(32); // line 1
        c.access(0); // refresh line 0
        c.access(64); // evicts line 1 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(32), "line 1 was evicted");
    }

    #[test]
    fn miss_bytes_counts_lines() {
        let mut c = CacheSim::new(4096, 4, 32);
        c.access(0);
        c.access(4096);
        assert_eq!(c.miss_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ways_panics() {
        CacheSim::new(1024, 0, 32);
    }
}
