//! GPU and CPU baseline models for the SpaceA reproduction.
//!
//! The paper baselines SpMV against cuSPARSE `csrmv()` on an NVIDIA Titan Xp
//! (Section II-B, Figure 2) and graph analytics against the GAP benchmark on
//! a DGX-1 host CPU (Section V-F). Neither platform is available here, so
//! this crate models them at the transaction level (see DESIGN.md §4):
//!
//! * [`csrmv`] — a Titan Xp csrmv model: CSR streaming traffic plus an L2
//!   [cache simulation](cache) for input-vector gathers, a bandwidth/ALU
//!   roofline, and an efficiency term derived from row-length statistics
//!   (warp underutilization on short rows, divergence on skewed rows).
//! * [`cpu`] — a bandwidth-bound analytic model of the DGX-1's Xeon host for
//!   PageRank and SSSP iterations.
//!
//! The models are deterministic and reproduce the *shape* of Figure 2: high
//! DRAM utilization on structural matrices, poor utilization on the social /
//! web graphs (matrices 12–14), and single-digit ALU utilization everywhere.

#![warn(missing_docs)]

pub mod cache;
pub mod cpu;
pub mod csrmv;
pub mod spec;

pub use csrmv::{simulate_csrmv, GpuRun};
pub use spec::TitanXpSpec;
