//! Published hardware specifications of the baseline platforms.

/// NVIDIA Titan Xp, the paper's GPU baseline (Section II-B, V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TitanXpSpec {
    /// Peak DRAM bandwidth in bytes/s (paper: 547.8 GB/s).
    pub dram_bw: f64,
    /// Peak double-precision throughput in FLOP/s. The paper computes ALU
    /// utilization as achieved `nnz / time` over "maximum GFLOPs"; Titan Xp's
    /// fp64 rate (1/32 of its 12.15 TFLOPS fp32) reproduces the reported
    /// 2.68% average.
    pub peak_flops: f64,
    /// L2 cache capacity in bytes (3 MB).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 / DRAM transaction granularity in bytes.
    pub line_bytes: usize,
    /// Idle (constant) power draw in watts.
    pub idle_power_w: f64,
    /// Additional power at full DRAM bandwidth, watts.
    pub dram_power_w: f64,
    /// Additional power at full ALU occupancy, watts.
    pub alu_power_w: f64,
    /// Die size in mm² (used for the paper's iso-area argument: 471 mm² ≈
    /// 10 cube footprints).
    pub die_mm2: f64,
}

impl Default for TitanXpSpec {
    fn default() -> Self {
        TitanXpSpec {
            dram_bw: 547.8e9,
            peak_flops: 380.0e9,
            l2_bytes: 3 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 32,
            idle_power_w: 55.0,
            dram_power_w: 160.0,
            alu_power_w: 60.0,
            die_mm2: 471.0,
        }
    }
}

/// The DGX-1 host CPU used as the Table III baseline: 2× Intel Xeon E5-2698
/// v4 (40 cores total, 153.6 GB/s aggregate memory bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dgx1CpuSpec {
    /// Aggregate memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Sustained bandwidth efficiency of streaming graph sweeps (GAP
    /// PageRank is a well-optimized sequential stream).
    pub bw_efficiency: f64,
    /// Sustained efficiency of relaxation sweeps (SSSP): scattered
    /// distance updates and priority work make these far less
    /// bandwidth-efficient — the reason the paper's SSSP speedups exceed
    /// its PageRank speedups.
    pub sssp_efficiency: f64,
}

impl Default for Dgx1CpuSpec {
    fn default() -> Self {
        Dgx1CpuSpec { mem_bw: 153.6e9, bw_efficiency: 0.40, sssp_efficiency: 0.12 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_matches_paper_numbers() {
        let s = TitanXpSpec::default();
        assert!((s.dram_bw - 547.8e9).abs() < 1.0);
        assert_eq!(s.l2_bytes, 3 * 1024 * 1024);
        assert!((s.die_mm2 - 471.0).abs() < 1e-9);
    }

    #[test]
    fn dgx1_bandwidth_matches_paper() {
        assert!((Dgx1CpuSpec::default().mem_bw - 153.6e9).abs() < 1.0);
    }
}
