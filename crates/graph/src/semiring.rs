//! Semiring SpMV: the algebraic core of graph-as-linear-algebra \[33\].

use spacea_matrix::Csr;

/// A semiring over `f64`: an "addition" with identity and a "multiplication".
///
/// [`PlusTimes`] gives ordinary SpMV; [`MinPlus`] gives shortest-path
/// relaxation. The trait is sealed in spirit — implementations must satisfy
/// associativity of `add` and distributivity of `mul` over `add` for the
/// iteration algebra to be meaningful.
pub trait Semiring {
    /// The additive identity (`0` for plus-times, `+∞` for min-plus).
    fn zero() -> f64;
    /// The semiring addition.
    fn add(a: f64, b: f64) -> f64;
    /// The semiring multiplication.
    fn mul(a: f64, b: f64) -> f64;
}

/// The ordinary arithmetic semiring `(+, ×, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    fn zero() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The tropical semiring `(min, +, +∞)` used by Bellman–Ford SSSP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Computes `y = A ⊕.⊗ x` over semiring `S`.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
#[allow(clippy::needless_range_loop)] // indexed kernels read clearer
pub fn semiring_spmv<S: Semiring>(a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "input vector length must equal matrix columns");
    let mut y = vec![S::zero(); a.rows()];
    for i in 0..a.rows() {
        let mut acc = S::zero();
        for (c, v) in a.row(i) {
            acc = S::add(acc, S::mul(v, x[c as usize]));
        }
        y[i] = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::Coo;

    fn a() -> Csr {
        // [ 0 2 ]
        // [ 3 0 ]
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn plus_times_matches_spmv() {
        let a = a();
        let x = [5.0, 7.0];
        assert_eq!(semiring_spmv::<PlusTimes>(&a, &x), a.spmv(&x));
    }

    #[test]
    fn min_plus_relaxes_edges() {
        let a = a();
        // distances: d(0)=0, d(1)=inf; edge 1→0 of weight 3 relaxes d(1)
        // through column 0: y[1] = 3 + 0 = 3.
        let y = semiring_spmv::<MinPlus>(&a, &[0.0, f64::INFINITY]);
        assert_eq!(y, vec![f64::INFINITY, 3.0]);
    }

    #[test]
    fn min_plus_zero_is_infinity() {
        assert_eq!(MinPlus::zero(), f64::INFINITY);
        assert_eq!(MinPlus::add(3.0, f64::INFINITY), 3.0);
        assert_eq!(MinPlus::mul(3.0, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn empty_rows_produce_identity() {
        let a = Csr::from_parts(2, 2, vec![0, 0, 1], vec![0], vec![1.0]).unwrap();
        let y = semiring_spmv::<MinPlus>(&a, &[1.0, 1.0]);
        assert_eq!(y[0], f64::INFINITY);
    }
}
