//! PageRank as iterated SpMV (paper Section V-F, case-study workload "PR").

use crate::semiring::{semiring_spmv, PlusTimes};
use spacea_matrix::Csr;

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (the canonical 0.85).
    pub damping: f64,
    /// L1 convergence threshold on the rank vector.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, tolerance: 1e-7, max_iterations: 100 }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final rank vector (sums to ~1).
    pub ranks: Vec<f64>,
    /// SpMV iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Runs power-iteration PageRank on a directed adjacency matrix `a`
/// (`a[i][j] != 0` ⇔ edge `i → j`).
///
/// Each iteration is one SpMV `r' = d · Aᵀ_col-norm · r + (1-d)/n`, the exact
/// shape SpaceA accelerates. Dangling mass is redistributed uniformly.
///
/// Column-normalized transpose of an adjacency matrix: entry `(j, i)` is
/// `1 / outdeg(i)` per edge `i → j` — the PageRank iteration's SpMV operand,
/// built once (the mapping amortization argument of the paper). Shared with
/// the Table III case study and the harness job model.
pub fn pr_operand(a: &Csr) -> Csr {
    let n = a.rows();
    let mut coo = spacea_matrix::Coo::new(n, n);
    coo.reserve(a.nnz());
    for i in 0..n {
        let deg = a.row_nnz(i).max(1) as f64;
        for (j, _) in a.row(i) {
            // lint:allow(R1) transposed indices come from a validated Csr
            coo.push(j as usize, i, 1.0 / deg).expect("transposed coordinate in bounds");
        }
    }
    coo.to_csr()
}

/// # Panics
///
/// Panics if `a` is not square or has no rows.
#[allow(clippy::needless_range_loop)] // indexed kernels read clearer
pub fn pagerank(a: &Csr, cfg: &PageRankConfig) -> PageRankResult {
    assert_eq!(a.rows(), a.cols(), "adjacency matrix must be square");
    assert!(a.rows() > 0, "graph must have at least one vertex");
    let n = a.rows();

    let out_deg: Vec<usize> = (0..n).map(|i| a.row_nnz(i)).collect();
    let at = pr_operand(a);

    let mut r = vec![1.0 / n as f64; n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iterations {
        iterations += 1;
        let dangling: f64 =
            spacea_matrix::reduce::sum_f64((0..n).filter(|&i| out_deg[i] == 0).map(|i| r[i]))
                / n as f64;
        let spread = semiring_spmv::<PlusTimes>(&at, &r);
        let base = (1.0 - cfg.damping) / n as f64;
        let mut delta = 0.0;
        let mut next = vec![0.0; n];
        for i in 0..n {
            next[i] = base + cfg.damping * (spread[i] + dangling);
            delta += (next[i] - r[i]).abs();
        }
        r = next;
        if delta < cfg.tolerance {
            converged = true;
            break;
        }
    }
    PageRankResult { ranks: r, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::gen::{rmat, RmatConfig};
    use spacea_matrix::Coo;

    fn cycle3() -> Csr {
        // 0 → 1 → 2 → 0
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn symmetric_cycle_ranks_equal() {
        let r = pagerank(&cycle3(), &PageRankConfig::default());
        assert!(r.converged);
        for i in 0..3 {
            assert!((r.ranks[i] - 1.0 / 3.0).abs() < 1e-6, "rank {i} = {}", r.ranks[i]);
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = rmat(&RmatConfig { n: 500, edges: 3000, ..Default::default() });
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank sum {sum}");
    }

    #[test]
    fn hub_outranks_leaf() {
        // star: 1,2,3 all point to 0.
        let mut coo = Coo::new(4, 4);
        for s in 1..4 {
            coo.push(s, 0, 1.0).unwrap();
        }
        let r = pagerank(&coo.to_csr(), &PageRankConfig::default());
        assert!(r.ranks[0] > r.ranks[1]);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = rmat(&RmatConfig { n: 200, edges: 1000, ..Default::default() });
        let r = pagerank(&g, &PageRankConfig { max_iterations: 3, ..Default::default() });
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn dangling_mass_preserved() {
        // 0 → 1, vertex 1 dangles.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        let r = pagerank(&coo.to_csr(), &PageRankConfig::default());
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }
}
