//! Breadth-first search as semiring SpMV iterations.
//!
//! BFS is SSSP over unit edge weights: level `k` relaxations are one
//! min-plus SpMV with the unweighted adjacency structure. Included because
//! the vertex-centric frameworks the paper compares against (Tesseract,
//! GraphP) all report BFS, and it exercises the frontier-profile machinery
//! with the sharpest expansion/contraction shape.

use crate::semiring::{semiring_spmv, MinPlus};
use spacea_matrix::Csr;

/// Result of a BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// Hop count from the source (`usize::MAX` if unreachable).
    pub levels: Vec<usize>,
    /// Full SpMV sweeps executed (= eccentricity of the source + 1).
    pub iterations: usize,
    /// Vertices newly reached per sweep, as fractions of |V|.
    pub frontier_fractions: Vec<f64>,
}

/// Runs BFS from `source` over the adjacency structure of `a` (edge
/// `i → j` ⇔ `a[i][j] != 0`; weights are ignored).
///
/// # Panics
///
/// Panics if `a` is not square or `source` is out of range.
pub fn bfs(a: &Csr, source: usize) -> BfsResult {
    assert_eq!(a.rows(), a.cols(), "adjacency matrix must be square");
    assert!(source < a.rows(), "source vertex out of range");
    let n = a.rows();

    // Unit-weight transpose: gather over in-edges.
    let mut coo = spacea_matrix::Coo::new(n, n);
    coo.reserve(a.nnz());
    for i in 0..n {
        for (j, _) in a.row(i) {
            // lint:allow(R1) indices come from a validated Csr
            coo.push(j as usize, i, 1.0).expect("transposed coordinate in bounds");
        }
    }
    let at = coo.to_csr();

    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut iterations = 0;
    let mut frontier_fractions = Vec::new();
    while iterations < n.max(1) {
        iterations += 1;
        let relaxed = semiring_spmv::<MinPlus>(&at, &dist);
        let mut changed = 0usize;
        for v in 0..n {
            let cand = relaxed[v].min(dist[v]);
            if cand < dist[v] {
                dist[v] = cand;
                changed += 1;
            }
        }
        frontier_fractions.push(changed as f64 / n as f64);
        if changed == 0 {
            break;
        }
    }
    let levels =
        dist.into_iter().map(|d| if d.is_finite() { d as usize } else { usize::MAX }).collect();
    BfsResult { levels, iterations, frontier_fractions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::Coo;

    fn path4() -> Csr {
        // 0 → 1 → 2 → 3 (weights deliberately non-unit: BFS must ignore them)
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 9.0).unwrap();
        coo.push(1, 2, 0.5).unwrap();
        coo.push(2, 3, 2.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn levels_count_hops_not_weights() {
        let r = bfs(&path4(), 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_max() {
        let r = bfs(&path4(), 1);
        assert_eq!(r.levels[0], usize::MAX);
        assert_eq!(r.levels[3], 2);
    }

    #[test]
    fn frontier_expands_then_dies() {
        // Star from the center: one sweep reaches all leaves, next is empty.
        let mut coo = Coo::new(5, 5);
        for leaf in 1..5 {
            coo.push(0, leaf, 1.0).unwrap();
        }
        let r = bfs(&coo.to_csr(), 0);
        assert_eq!(r.frontier_fractions[0], 0.8);
        assert_eq!(*r.frontier_fractions.last().unwrap(), 0.0);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn bfs_matches_sssp_on_unit_weights() {
        use spacea_matrix::gen::{rmat, RmatConfig};
        let g = rmat(&RmatConfig { n: 256, edges: 1500, ..Default::default() });
        // Unit-weight copy for SSSP.
        let mut coo = Coo::new(g.rows(), g.cols());
        for i in 0..g.rows() {
            for (j, _) in g.row(i) {
                coo.push(i, j as usize, 1.0).unwrap();
            }
        }
        let unit = coo.to_csr();
        let b = bfs(&g, 0);
        let s = crate::sssp(&unit, 0);
        for v in 0..g.rows() {
            let bl = b.levels[v];
            let sd = s.distances[v];
            if bl == usize::MAX {
                assert!(sd.is_infinite());
            } else {
                assert_eq!(bl as f64, sd, "vertex {v}");
            }
        }
    }
}
