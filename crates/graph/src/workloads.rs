//! The Section V-F case-study graphs: Wiki ("WK") and LiveJournal ("LJ").
//!
//! The SNAP datasets themselves are not redistributable here, so scaled
//! R-MAT graphs reproduce their published vertex/edge shapes (see DESIGN.md
//! §4). Edge weights are positive uniform values so the same graph serves
//! both PageRank (weights ignored by normalization) and SSSP.

use spacea_matrix::gen::{rmat, RmatConfig};
use spacea_matrix::Csr;

/// The case-study graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseStudyGraph {
    /// Wiki-shaped ("WK"): ~2.4 M vertices, ~5 M edges, very sparse and
    /// highly skewed.
    Wiki,
    /// LiveJournal-shaped ("LJ"): ~4.8 M vertices, ~69 M edges, denser
    /// social graph.
    LiveJournal,
}

impl CaseStudyGraph {
    /// Short label matching Table III ("WK" / "LJ").
    pub fn label(&self) -> &'static str {
        match self {
            CaseStudyGraph::Wiki => "WK",
            CaseStudyGraph::LiveJournal => "LJ",
        }
    }

    /// Published vertex count of the original dataset.
    pub fn published_vertices(&self) -> usize {
        match self {
            CaseStudyGraph::Wiki => 2_394_385,
            CaseStudyGraph::LiveJournal => 4_847_571,
        }
    }

    /// Published edge count of the original dataset.
    pub fn published_edges(&self) -> usize {
        match self {
            CaseStudyGraph::Wiki => 5_021_410,
            CaseStudyGraph::LiveJournal => 68_993_773,
        }
    }

    /// Generates the scaled R-MAT stand-in: vertices and edges divided by
    /// `scale` with the dataset's sparsity preserved.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn generate(&self, scale: usize) -> Csr {
        assert!(scale > 0, "scale must be positive");
        let n = (self.published_vertices() / scale).max(64);
        let edges = (self.published_edges() / scale).max(n);
        let (a, b, c) = match self {
            // wiki-Talk is extremely hub-dominated.
            CaseStudyGraph::Wiki => (0.65, 0.15, 0.15),
            CaseStudyGraph::LiveJournal => (0.57, 0.19, 0.19),
        };
        let g = rmat(&RmatConfig { n, edges, a, b, c, seed: 0x5ACE_A600 + n as u64 });
        // R-MAT keeps spawning full-size hubs at any scale, but a scaled
        // dataset's maximum degree shrinks with it; clamp rows to the
        // published maximum in-degree scaled by the same factor, spreading
        // the clipped edges uniformly (keeps nnz, fixes the artificial
        // one-PE hub bottleneck).
        let max_degree = match self {
            CaseStudyGraph::Wiki => 3_311, // wiki-Talk max in-degree
            CaseStudyGraph::LiveJournal => 13_906,
        };
        let cap = (max_degree / scale).max(8);
        let g = clamp_row_degrees(&g, cap);
        // R-MAT values are signed; SSSP needs positive weights.
        make_weights_positive(&g)
    }
}

/// Redistributes entries of rows longer than `cap` to uniformly-chosen rows
/// (deterministic), preserving the total non-zero count.
fn clamp_row_degrees(g: &Csr, cap: usize) -> Csr {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0x5ACE_A601 + g.rows() as u64);
    let n = g.rows();
    let mut coo = spacea_matrix::Coo::new(n, n);
    coo.reserve(g.nnz());
    let mut spill = 0usize;
    for i in 0..n {
        for (k, (j, w)) in g.row(i).enumerate() {
            if k < cap {
                // lint:allow(R1) indices come from a validated Csr
                coo.push(i, j as usize, w).expect("coordinate in bounds");
            } else {
                spill += 1;
                let _ = w;
            }
        }
    }
    for _ in 0..spill {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        // lint:allow(R1) gen_range keeps spill edges in bounds
        coo.push(u, v, 0.5).expect("coordinate in bounds");
    }
    coo.to_csr()
}

fn make_weights_positive(g: &Csr) -> Csr {
    let mut coo = spacea_matrix::Coo::new(g.rows(), g.cols());
    coo.reserve(g.nnz());
    for i in 0..g.rows() {
        for (j, w) in g.row(i) {
            // lint:allow(R1) indices come from a validated Csr
            coo.push(i, j as usize, w.abs().max(0.05)).expect("coordinate in bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table3() {
        assert_eq!(CaseStudyGraph::Wiki.label(), "WK");
        assert_eq!(CaseStudyGraph::LiveJournal.label(), "LJ");
    }

    #[test]
    fn scaled_sizes_track_published_shape() {
        let g = CaseStudyGraph::Wiki.generate(512);
        let expected_n = 2_394_385 / 512;
        assert_eq!(g.rows(), expected_n);
        // nnz = self-loops (n) + edges, some lost to dedup.
        assert!(g.nnz() >= expected_n);
    }

    #[test]
    fn lj_denser_than_wiki() {
        let wk = CaseStudyGraph::Wiki.generate(1024);
        let lj = CaseStudyGraph::LiveJournal.generate(1024);
        let d_wk = wk.nnz() as f64 / wk.rows() as f64;
        let d_lj = lj.nnz() as f64 / lj.rows() as f64;
        assert!(d_lj > d_wk, "LJ density {d_lj} must exceed WK {d_wk}");
    }

    #[test]
    fn weights_positive_for_sssp() {
        let g = CaseStudyGraph::Wiki.generate(1024);
        for i in 0..g.rows() {
            for (_, w) in g.row(i) {
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(CaseStudyGraph::Wiki.generate(1024), CaseStudyGraph::Wiki.generate(1024));
    }
}
