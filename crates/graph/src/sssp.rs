//! Single-source shortest path as min-plus SpMV (paper Section V-F, "SSSP").

use crate::semiring::{semiring_spmv, MinPlus};
use spacea_matrix::Csr;

/// Result of an SSSP run.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// Distance from the source to each vertex (`+∞` if unreachable).
    pub distances: Vec<f64>,
    /// Bellman–Ford iterations (full min-plus SpMV sweeps) executed.
    pub iterations: usize,
    /// Fraction of vertices whose distance changed in each iteration — the
    /// frontier profile consumed by the CPU baseline model.
    pub frontier_fractions: Vec<f64>,
}

/// Runs Bellman–Ford SSSP from `source` over the weighted adjacency matrix
/// (`a[i][j] = w` ⇔ edge `i → j` of weight `w > 0`).
///
/// Each iteration is one min-plus SpMV over the transpose:
/// `d'_v = min(d_v, min_u (d_u + w(u, v)))` — the same data movement as an
/// arithmetic SpMV, which is how SpaceA executes it.
///
/// # Panics
///
/// Panics if `a` is not square, `source` is out of range, or a weight is
/// non-positive.
pub fn sssp(a: &Csr, source: usize) -> SsspResult {
    assert_eq!(a.rows(), a.cols(), "adjacency matrix must be square");
    assert!(source < a.rows(), "source vertex out of range");
    let at = {
        // Min-plus relaxation gathers over in-edges: transpose once.
        let t = a.transpose();
        for i in 0..t.rows() {
            for (_, w) in t.row(i) {
                assert!(w > 0.0, "edge weights must be positive");
            }
        }
        t
    };

    let n = a.rows();
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut iterations = 0;
    let mut frontier_fractions = Vec::new();

    // Bellman–Ford converges in at most n-1 sweeps.
    while iterations < n.max(1) {
        iterations += 1;
        let relaxed = semiring_spmv::<MinPlus>(&at, &dist);
        let mut changed = 0usize;
        for v in 0..n {
            let cand = relaxed[v].min(dist[v]);
            if cand < dist[v] {
                dist[v] = cand;
                changed += 1;
            }
        }
        frontier_fractions.push(changed as f64 / n as f64);
        if changed == 0 {
            break;
        }
    }
    SsspResult { distances: dist, iterations, frontier_fractions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::Coo;

    fn line_graph() -> Csr {
        // 0 -1-> 1 -2-> 2 -3-> 3
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        coo.push(2, 3, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn line_graph_distances() {
        let r = sssp(&line_graph(), 0);
        assert_eq!(r.distances, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let r = sssp(&line_graph(), 2);
        assert_eq!(r.distances[0], f64::INFINITY);
        assert_eq!(r.distances[3], 3.0);
    }

    #[test]
    fn shorter_path_wins() {
        // 0→2 direct weight 10, 0→1→2 weight 3.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 2, 10.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        let r = sssp(&coo.to_csr(), 0);
        assert_eq!(r.distances[2], 3.0);
    }

    #[test]
    fn frontier_shrinks_to_zero() {
        let r = sssp(&line_graph(), 0);
        assert_eq!(*r.frontier_fractions.last().unwrap(), 0.0);
        assert!(r.iterations >= 3, "a 4-chain needs at least 3 sweeps");
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let g = random_weighted(64, 300, 77);
        let r = sssp(&g, 0);
        let d = dijkstra(&g, 0);
        for (v, &b) in d.iter().enumerate() {
            let a = r.distances[v];
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                "vertex {v}: bellman-ford {a} vs dijkstra {b}"
            );
        }
    }

    fn random_weighted(n: usize, edges: usize, seed: u64) -> Csr {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..edges {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if u != v {
                coo.push(u, v, rng.gen_range(0.5..5.0)).unwrap();
            }
        }
        coo.to_csr()
    }

    fn dijkstra(g: &Csr, s: usize) -> Vec<f64> {
        let n = g.rows();
        let mut dist = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        dist[s] = 0.0;
        for _ in 0..n {
            let u = (0..n)
                .filter(|&v| !done[v] && dist[v].is_finite())
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).unwrap());
            let Some(u) = u else { break };
            done[u] = true;
            for (v, w) in g.row(u) {
                let v = v as usize;
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                }
            }
        }
        dist
    }
}
