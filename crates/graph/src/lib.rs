//! Graph analytics formulated as iterated SpMV (paper Section V-F).
//!
//! "In the vertex-centric programming model, a graph algorithm is equivalent
//! to multiple iterations of SpMV when edges are stored in an adjacency
//! matrix" — the paper rewrites PageRank and SSSP into SpMV iterations \[33\]
//! and runs them on SpaceA. This crate provides:
//!
//! * [`semiring`] — the algebraic abstraction: SpMV over (+, ×) for
//!   PageRank-style propagation and over (min, +) for shortest paths.
//! * [`pagerank`](mod@pagerank) — power-iteration PageRank with convergence detection.
//! * [`sssp`](mod@sssp) — Bellman–Ford SSSP as min-plus SpMV iterations, reporting the
//!   per-iteration frontier sizes the CPU baseline model consumes.
//! * [`workloads`] — scaled Wiki ("WK") and LiveJournal ("LJ")-shaped R-MAT
//!   graphs matching the published SNAP sizes.
//!
//! Numerical results are computed in software (the oracle); the SpaceA
//! *timing* of one iteration comes from simulating the equivalent SpMV on
//! the machine, which moves identical data regardless of the semiring.

#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod pagerank;
pub mod semiring;
pub mod sssp;
pub mod workloads;

pub use bfs::{bfs, BfsResult};
pub use cc::{connected_components, CcResult};
pub use pagerank::{pagerank, pr_operand, PageRankConfig, PageRankResult};
pub use semiring::{semiring_spmv, MinPlus, PlusTimes, Semiring};
pub use sssp::{sssp, SsspResult};
