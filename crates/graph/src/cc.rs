//! Connected components by label propagation — another vertex-centric
//! workload (Tesseract's benchmark suite includes it) that becomes iterated
//! semiring SpMV: each sweep takes the minimum label over in-neighbours,
//! which is one (min, ×→select) SpMV with unit structure.

use crate::semiring::{semiring_spmv, MinPlus};
use spacea_matrix::Csr;

/// Result of a connected-components run.
#[derive(Debug, Clone, PartialEq)]
pub struct CcResult {
    /// Component label per vertex (the smallest vertex id in the weakly
    /// connected component).
    pub labels: Vec<usize>,
    /// Label-propagation sweeps executed.
    pub iterations: usize,
    /// Number of distinct components.
    pub components: usize,
}

/// Computes weakly connected components of the graph by min-label
/// propagation over the symmetrized structure.
///
/// Each iteration is one min-plus SpMV with zero edge weights — identical
/// data movement to an arithmetic SpMV, which is how SpaceA would run it.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn connected_components(a: &Csr) -> CcResult {
    assert_eq!(a.rows(), a.cols(), "adjacency matrix must be square");
    let n = a.rows();
    if n == 0 {
        return CcResult { labels: Vec::new(), iterations: 0, components: 0 };
    }

    // Symmetrized zero-weight structure: label flows both ways.
    let mut coo = spacea_matrix::Coo::new(n, n);
    coo.reserve(2 * a.nnz());
    for i in 0..n {
        for (j, _) in a.row(i) {
            let j = j as usize;
            if i != j {
                // Min-plus with weight 0 propagates the label unchanged.
                // lint:allow(R1) indices come from a validated Csr
                coo.push(i, j, 0.0).expect("in bounds");
                // lint:allow(R1) indices come from a validated Csr
                coo.push(j, i, 0.0).expect("in bounds");
            }
        }
    }
    let sym = coo.to_csr();

    let mut labels: Vec<f64> = (0..n).map(|v| v as f64).collect();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let propagated = semiring_spmv::<MinPlus>(&sym, &labels);
        let mut changed = false;
        for v in 0..n {
            let cand = propagated[v].min(labels[v]);
            if cand < labels[v] {
                labels[v] = cand;
                changed = true;
            }
        }
        if !changed || iterations >= n {
            break;
        }
    }
    let labels: Vec<usize> = labels.into_iter().map(|l| l as usize).collect();
    let mut distinct: Vec<usize> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    CcResult { labels, iterations, components: distinct.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::Coo;

    #[test]
    fn two_triangles_are_two_components() {
        let mut coo = Coo::new(6, 6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            coo.push(u, v, 1.0).unwrap();
        }
        let r = connected_components(&coo.to_csr());
        assert_eq!(r.components, 2);
        assert_eq!(r.labels[..3], [0, 0, 0]);
        assert_eq!(r.labels[3..], [3, 3, 3]);
    }

    #[test]
    fn direction_is_ignored() {
        // One-way chain still forms one weak component.
        let mut coo = Coo::new(4, 4);
        for v in 0..3 {
            coo.push(v, v + 1, 1.0).unwrap();
        }
        let r = connected_components(&coo.to_csr());
        assert_eq!(r.components, 1);
        assert_eq!(r.labels, vec![0, 0, 0, 0]);
    }

    #[test]
    fn isolated_vertices_self_label() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0).unwrap(); // self-loop only
        let r = connected_components(&coo.to_csr());
        assert_eq!(r.components, 3);
        assert_eq!(r.labels, vec![0, 1, 2]);
    }

    #[test]
    fn label_is_component_minimum() {
        let mut coo = Coo::new(5, 5);
        coo.push(4, 2, 1.0).unwrap();
        coo.push(2, 3, 1.0).unwrap();
        let r = connected_components(&coo.to_csr());
        assert_eq!(r.labels[4], 2);
        assert_eq!(r.labels[3], 2);
        assert_eq!(r.labels[2], 2);
    }

    #[test]
    fn empty_graph() {
        let r = connected_components(&Csr::from_parts(0, 0, vec![0], vec![], vec![]).unwrap());
        assert_eq!(r.components, 0);
        assert!(r.labels.is_empty());
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        use spacea_matrix::gen::{rmat, RmatConfig};
        let g = rmat(&RmatConfig { n: 300, edges: 400, ..Default::default() });
        let r = connected_components(&g);

        // Reference union-find.
        let mut parent: Vec<usize> = (0..300).collect();
        fn find(p: &mut Vec<usize>, v: usize) -> usize {
            if p[v] != v {
                let root = find(p, p[v]);
                p[v] = root;
            }
            p[v]
        }
        for i in 0..g.rows() {
            for (j, _) in g.row(i) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j as usize));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        for v in 0..300 {
            let rep = find(&mut parent, v);
            let rep_label = r.labels[rep];
            assert_eq!(r.labels[v], rep_label, "vertex {v} disagrees with union-find");
        }
    }
}
