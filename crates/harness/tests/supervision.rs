//! Supervised execution end-to-end: injected faults either produce a
//! correct result or a structured failure (never a wrong-but-successful
//! run), a panicking or livelocked job cannot take a sweep down, failures
//! are never cached (healthy jobs re-run from disk, failed ones retry), and
//! wall-clock budgets cut off runaway attempts.

use proptest::prelude::*;
use spacea_harness::exec::execute;
use spacea_harness::{
    input_vector, run_jobs_supervised, CacheOutcome, JobCtx, JobResult, JobSpec, MappingStats,
    MatrixSource, ResultStore, RunManifest, SupervisionPolicy,
};
use spacea_mapping::MapKind;
use spacea_model::EnergyParams;
use std::sync::Arc;
use std::time::Duration;

/// A quick sim job over Table I matrix `id`, with watchdog budgets tight
/// enough that injected hangs resolve in well under a second.
fn watched_sim(id: u8) -> JobSpec {
    let mut hw = spacea_arch::HwConfig::tiny();
    hw.watchdog.stall_window = Some(50_000);
    hw.watchdog.max_cycles = Some(5_000_000);
    JobSpec::Sim {
        source: MatrixSource::Suite { id, scale: 256 },
        kind: MapKind::Proposed,
        hw,
        energy: EnergyParams::default(),
    }
}

fn faults_of(spec: &mut JobSpec) -> &mut spacea_arch::FaultPlan {
    match spec {
        JobSpec::Sim { hw, .. } => &mut hw.faults,
        JobSpec::Gpu { .. } | JobSpec::Scenario { .. } => {
            unreachable!("tests only inject into sim jobs")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The headline robustness property: whatever single fault is injected,
    /// the job either completes with the reference-SpMV output or reports a
    /// structured failure. It must never succeed with wrong numbers.
    #[test]
    fn injected_single_fault_is_never_wrong_but_successful(kind in 0usize..5, n in 0u64..8) {
        let mut spec = watched_sim(1);
        let faults = faults_of(&mut spec);
        match kind {
            1 => faults.drop_noc_packet = Some(n),
            2 => faults.stall_vault = Some(((n % 4) as usize, 100 * n)),
            3 => faults.flip_accum_update = Some(n),
            4 => faults.delay_noc = Some((n, 40)),
            _ => {} // healthy control
        }
        let ctx = JobCtx::new();
        match execute(&spec, &ctx) {
            Ok(JobResult::Sim(report)) => {
                let a = ctx.matrix(&MatrixSource::Suite { id: 1, scale: 256 });
                let want = a.spmv(&input_vector(a.cols()));
                prop_assert_eq!(report.output.len(), want.len());
                for (i, (got, want)) in report.output.iter().zip(&want).enumerate() {
                    prop_assert!(
                        (got - want).abs() <= 1e-9,
                        "wrong-but-successful output at row {} (kind {}, n {}): {} vs {}",
                        i, kind, n, got, want
                    );
                }
            }
            Ok(other) => prop_assert!(false, "sim job returned {:?}", other),
            Err(e) => prop_assert!(
                !e.to_string().is_empty(),
                "failures must carry a diagnosis"
            ),
        }
    }
}

#[test]
fn panicking_job_is_isolated_from_the_rest_of_the_sweep() {
    let mut jobs = vec![watched_sim(1), watched_sim(2), watched_sim(3)];
    faults_of(&mut jobs[0]).panic_on_run = true;
    let store = ResultStore::in_memory();
    let out = run_jobs_supervised(
        &jobs,
        &store,
        &Arc::new(JobCtx::new()),
        2,
        &SupervisionPolicy::default(),
    );
    assert_eq!(out.records.len(), 3);
    assert_eq!(out.records[0].status.tag(), "failed");
    assert!(
        out.records[0].status.failure().unwrap().contains("panic"),
        "{:?}",
        out.records[0].status
    );
    for r in &out.records[1..] {
        assert!(r.status.is_success(), "healthy jobs must complete: {:?}", r.status);
    }
    assert_eq!(store.len(), 2, "only the two healthy results are stored");
    assert!(out.abandoned.is_empty());
}

#[test]
fn stalled_vault_times_out_with_a_diagnosis_naming_the_vault() {
    let mut jobs = vec![watched_sim(1), watched_sim(2)];
    faults_of(&mut jobs[0]).stall_vault = Some((0, 100));
    let store = ResultStore::in_memory();
    let out = run_jobs_supervised(
        &jobs,
        &store,
        &Arc::new(JobCtx::new()),
        2,
        &SupervisionPolicy::default(),
    );
    assert_eq!(out.records[0].status.tag(), "timed-out");
    let diagnosis = out.records[0].status.failure().unwrap();
    assert!(diagnosis.contains("vault 0"), "diagnosis must name the stalled vault: {diagnosis}");
    assert!(out.records[1].status.is_success());

    // The manifest carries the per-job statuses and the diagnosis.
    let manifest = RunManifest {
        workers: 2,
        total_wall_ms: 1.0,
        records: out.records,
        stats: store.stats(),
        mappings: MappingStats::default(),
        corrupt_paths: Vec::new(),
        abandoned: out.abandoned,
    };
    let json = manifest.to_json();
    assert!(json.contains("\"status\":\"timed-out\""), "{json}");
    assert!(json.contains("vault 0"), "{json}");
}

/// The acceptance scenario: after a sweep with one failing job, a re-run
/// over the same disk cache answers the healthy jobs from disk and retries
/// only the failed one — failures are never cached.
#[test]
fn rerun_over_disk_cache_retries_only_the_failed_job() {
    let dir = std::env::temp_dir().join(format!("spacea-supervision-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut jobs = vec![watched_sim(1), watched_sim(2)];
    faults_of(&mut jobs[0]).flip_accum_update = Some(0);

    let run = |store: &ResultStore| {
        run_jobs_supervised(
            &jobs,
            store,
            &Arc::new(JobCtx::new()),
            2,
            &SupervisionPolicy { max_retries: 0, ..SupervisionPolicy::default() },
        )
    };
    let first = ResultStore::with_disk(&dir).unwrap();
    let out = run(&first);
    assert_eq!(out.records[0].status.tag(), "failed", "{:?}", out.records[0].status);
    assert_eq!(out.records[0].outcome, CacheOutcome::Computed);
    assert!(out.records[1].status.is_success());

    // Fresh process (fresh memory) over the same cache directory.
    let second = ResultStore::with_disk(&dir).unwrap();
    let out = run(&second);
    assert_eq!(
        out.records[1].outcome,
        CacheOutcome::DiskHit,
        "the healthy job must be answered from disk"
    );
    assert_eq!(out.records[0].status.tag(), "failed", "the faulted job fails again");
    assert_eq!(
        out.records[0].outcome,
        CacheOutcome::Computed,
        "the failed job must be re-attempted, not served from cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_clock_budget_abandons_a_slow_attempt() {
    // Scale 64 is ~16x more work than the quick configuration — far more
    // than a 1 ms budget allows on any machine.
    let job = JobSpec::Sim {
        source: MatrixSource::Suite { id: 1, scale: 64 },
        kind: MapKind::Proposed,
        hw: spacea_arch::HwConfig::tiny(),
        energy: EnergyParams::default(),
    };
    let store = ResultStore::in_memory();
    let policy = SupervisionPolicy {
        wall_budget: Some(Duration::from_millis(1)),
        ..SupervisionPolicy::default()
    };
    let out = run_jobs_supervised(
        std::slice::from_ref(&job),
        &store,
        &Arc::new(JobCtx::new()),
        1,
        &policy,
    );
    assert_eq!(out.records[0].status.tag(), "timed-out");
    assert!(
        out.records[0].status.failure().unwrap().contains("wall-clock"),
        "{:?}",
        out.records[0].status
    );
    assert!(store.lookup(job.key()).is_none(), "abandoned attempts must not populate the store");
}
