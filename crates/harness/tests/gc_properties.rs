//! Property tests for cache GC: the size pass never evicts below the byte
//! budget, never removes entries touched during the current run, follows
//! the documented LRU order exactly, and is idempotent.

use proptest::prelude::*;
use spacea_gpu::GpuRun;
use spacea_harness::{GcPolicy, JobKey, JobResult, ResultStore};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "spacea-gc-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn gpu(i: u64) -> GpuRun {
    GpuRun {
        time_s: 1.0 + i as f64,
        dram_bytes: 100 + i,
        dram_read_bytes: 90 + i,
        dram_read_throughput: 1e9,
        effective_read_throughput: 0.5e9,
        bw_utilization: 0.5,
        gflops: 1.0,
        alu_utilization: 0.1,
        energy_j: 0.25,
        bw_efficiency: 0.9,
        x_l2_hit_rate: 0.75,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gc_respects_budget_protection_and_lru_order(
        n in 1u64..10,
        touch_mask in 0u64..1024,
        budget_pct in 0u64..101,
    ) {
        let dir = scratch_dir();
        let _ = std::fs::remove_dir_all(&dir);
        // Populate from a first process…
        {
            let store = ResultStore::with_disk(&dir).expect("open store");
            for i in 0..n {
                store.insert(JobKey(i + 1), JobResult::Gpu(gpu(i)));
            }
        }
        // …then gc from a second one that only touched a subset.
        let store = ResultStore::with_disk(&dir).expect("reopen store");
        let touched: HashSet<u64> =
            (0..n).filter(|i| touch_mask & (1 << i) != 0).map(|i| i + 1).collect();
        for &key in &touched {
            prop_assert!(store.lookup(JobKey(key)).is_some());
        }

        // Predict the survivors by replaying the documented policy: walk
        // entries oldest-hit first (key as tie-break), skip touched, stop
        // the moment the running total fits the budget.
        let index = store.index_snapshot();
        prop_assert_eq!(index.len() as u64, n, "index covers every entry");
        let total: u64 = index.iter().map(|(_, e)| e.bytes).sum();
        let budget = total * budget_pct / 100;
        let mut order = index.clone();
        order.sort_by_key(|(k, e)| (e.last_hit, k.0));
        let mut expect_kept = total;
        let mut expect_evicted: HashSet<u64> = HashSet::new();
        for (k, e) in &order {
            if expect_kept <= budget {
                break;
            }
            if touched.contains(&k.0) {
                continue;
            }
            expect_evicted.insert(k.0);
            expect_kept -= e.bytes;
        }

        let policy = GcPolicy { max_bytes: Some(budget), max_age_secs: None };
        let report = store.gc(&policy).expect("gc");
        prop_assert_eq!(report.kept_bytes, expect_kept);
        prop_assert_eq!(report.evicted, expect_evicted.len());
        prop_assert_eq!(report.protected, touched.len());
        for i in 0..n {
            let key = i + 1;
            let on_disk = dir.join(format!("{}.json", JobKey(key))).exists();
            prop_assert_eq!(on_disk, !expect_evicted.contains(&key), "key {}", key);
            if touched.contains(&key) {
                prop_assert!(on_disk, "touched key {} must survive", key);
            }
        }

        // Idempotent: everything over budget that may be evicted already
        // was, so a second pass removes nothing.
        let again = store.gc(&policy).expect("second gc");
        prop_assert_eq!(again.evicted, 0);
        prop_assert_eq!(again.kept_bytes, report.kept_bytes);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
