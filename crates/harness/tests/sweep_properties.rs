//! Property tests for the sweep semantics the sharding recipe relies on:
//! deterministic, dedup-stable grid enumeration and exact shard partitions.

use proptest::prelude::*;
use spacea_harness::{shard_range, SweepBase, SweepSpec};

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    (
        proptest::collection::vec(1u8..16, 0..3),
        proptest::collection::vec(1usize..5, 0..3),
        proptest::collection::vec(0usize..2, 0..3), // 0 => naive, 1 => proposed
        proptest::collection::vec(1usize..4, 0..3),
        proptest::collection::vec(1usize..64, 0..3),
    )
        .prop_map(|(ids, scale_shifts, kind_tags, cubes, l1_sets)| {
            let mut spec = SweepSpec::default();
            if !ids.is_empty() {
                let list = ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
                spec.set("ids", &list).expect("ids in range");
            }
            if !scale_shifts.is_empty() {
                // Scales as powers of two: 256, 512, 1024, 2048.
                let list = scale_shifts
                    .iter()
                    .map(|s| (256usize << s).to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                spec.set("scales", &list).expect("positive scales");
            }
            if !kind_tags.is_empty() {
                let list = kind_tags
                    .iter()
                    .map(|&t| if t == 0 { "naive" } else { "proposed" })
                    .collect::<Vec<_>>()
                    .join(",");
                spec.set("kinds", &list).expect("valid kinds");
            }
            if !cubes.is_empty() {
                let list = cubes.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
                spec.set("cubes", &list).expect("positive cubes");
            }
            if !l1_sets.is_empty() {
                let list = l1_sets.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",");
                spec.set("l1-sets", &list).expect("positive set counts");
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn enumeration_is_deterministic_and_dedup_stable(spec in arb_spec()) {
        let base = SweepBase::default();
        let a = spec.points(&base);
        let b = spec.points(&base);
        prop_assert_eq!(&a, &b, "two enumerations of the same spec must agree");
        // Dedup-stable: every job key appears exactly once.
        let mut keys: Vec<u64> = a.iter().map(|p| p.job().key().0).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n, "enumeration must not repeat a job key");
    }

    #[test]
    fn shards_partition_the_grid(total in 0usize..500, n in 1usize..33) {
        let mut union = Vec::new();
        for k in 0..n {
            let r = shard_range(total, k, n);
            if k > 0 {
                // Contiguous and disjoint: each shard starts where the
                // previous one ended.
                prop_assert_eq!(r.start, shard_range(total, k - 1, n).end);
            }
            union.extend(r);
        }
        let expect: Vec<usize> = (0..total).collect();
        prop_assert_eq!(union, expect, "shard union must be exactly 0..total");
    }

    #[test]
    fn sharded_points_reassemble_the_full_list(spec in arb_spec(), n in 1usize..7) {
        let base = SweepBase::default();
        let points = spec.points(&base);
        let mut reassembled = Vec::new();
        for k in 0..n {
            reassembled.extend_from_slice(&points[shard_range(points.len(), k, n)]);
        }
        prop_assert_eq!(reassembled, points);
    }
}
