//! Experiment orchestration: content-addressed jobs, a worker pool, a
//! persistent result cache, and run telemetry.
//!
//! The evaluation section of the paper is a pile of independent simulation
//! and model runs (one per matrix × mapping × hardware configuration) that
//! the experiment modules then render into tables. This crate factors that
//! pile out into an explicit job model:
//!
//! * [`JobSpec`] names one unit of work — a SpaceA simulation or a GPU
//!   baseline model run — by *content*: the matrix source, mapping kind,
//!   hardware configuration and energy parameters. [`JobSpec::key`] hashes
//!   all of it into a stable 64-bit [`JobKey`], so two jobs with the same
//!   key compute the same result.
//! * [`run_jobs`] shards a job list across `std::thread` workers. Results
//!   land in a shared [`ResultStore`] keyed by [`JobKey`]; because rendering
//!   reads results from the store (serially), table output is bit-for-bit
//!   identical whatever the worker count or completion order.
//! * [`run_jobs_supervised`] adds crash isolation on top: every attempt is
//!   panic-guarded, hung simulations are cut off by the sim watchdog or a
//!   per-attempt wall-clock budget, transient errors retry with backoff, and
//!   each job ends with an explicit [`JobStatus`] so one bad job never takes
//!   a sweep down.
//! * [`ResultStore`] optionally persists every result as one JSON file per
//!   key (default directory `target/spacea-cache/`), so a re-run only
//!   simulates what changed. Floats are stored as IEEE-754 bit patterns and
//!   round-trip exactly.
//! * [`RunManifest`] records per-job telemetry — wall time, simulated
//!   cycles, events processed, cache hit/miss — as JSON plus a
//!   human-readable summary.
//! * [`SweepSpec`] names a grid over the design space (matrices, scales,
//!   mappings, machine variants, cube counts, CAM sizes, energy parameters)
//!   and enumerates it deterministically into deduped job lists;
//!   [`shard_range`] splits the grid across cooperating processes, and
//!   [`ResultStore::gc`] keeps the shared disk cache within size/age
//!   budgets using the persisted per-key index.
//!
//! The crate sits *below* the experiment definitions: it knows how to
//! execute a job, not which jobs a figure needs (that enumeration lives
//! with each experiment in `spacea-core`).

#![warn(missing_docs)]

pub mod exec;
pub mod job;
pub mod json;
pub mod mapstore;
pub mod store;
pub mod sweep;
pub mod telemetry;
pub mod timeline;

pub use exec::{
    dedup_jobs, input_vector, run_jobs, run_jobs_observed, run_jobs_supervised, ExecFailure,
    JobCtx, RunOutput, SupervisionPolicy,
};
pub use job::{GraphOperand, JobKey, JobSpec, MatrixSource};
pub use mapstore::{MappingStats, MappingStore};
pub use store::{
    CacheOutcome, CacheStats, GcPolicy, GcReport, IndexEntry, JobResult, ResultStore, ScenarioRec,
    INDEX_FILE, QUARANTINE_DIR,
};
pub use sweep::{dedup_points, shard_range, PointKind, SweepBase, SweepPoint, SweepSpec};
pub use telemetry::{JobRecord, JobStatus, RunManifest};
pub use timeline::TimelineConfig;

// Fault-injection, watchdog and observation knobs, re-exported so harness
// users (the sweep binary, tests) need not depend on the arch crate directly.
pub use spacea_arch::{FaultPlan, ObserveConfig, StallDiagnosis, WatchdogConfig};

/// The default on-disk cache location, relative to the workspace root.
pub const DEFAULT_CACHE_DIR: &str = "target/spacea-cache";
