//! Persistent mapping cache: Phase I/II paid once per matrix *ever*.
//!
//! Computing a [`Mapping`] (Algorithm 1 row assignment plus the Formula 1
//! placement hierarchy) dominates the cost of small-matrix workloads, yet
//! it depends only on the matrix *content*, the mapping kind and the
//! machine shape — none of which change between processes. A
//! [`MappingStore`] keys mappings by an FNV-1a content hash over the CSR
//! arrays and persists each computed mapping as one JSON file under
//! `<dir>/<key>.json`, so a daemon restart (or a fresh sweep process)
//! warms the in-process memo from disk instead of re-running Phase I/II.
//!
//! Robustness mirrors [`crate::store::ResultStore`]: writes go through a
//! tmp-file + atomic rename so concurrent processes never read a torn
//! file, and a corrupt or stale artifact silently falls back to a fresh
//! compute (which overwrites it).

use crate::job::Fnv;
use crate::json::{parse, Json};
use spacea_mapping::{MachineShape, MapKind, Mapping, Placement, RowAssignment};
use spacea_matrix::Csr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many mappings a store computed versus warmed from disk. Zero
/// `computed` on a restarted daemon is the warm-cache acceptance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MappingStats {
    /// Mappings computed from scratch (Phase I/II actually ran).
    pub computed: u64,
    /// Mappings loaded from a persisted artifact.
    pub disk_hits: u64,
    /// Recomputes that *replaced a present-but-bad artifact* (corrupt,
    /// truncated, or failing its cross-check) — a subset of `computed`.
    /// Nonzero `healed` means the store repaired damage, not that it
    /// merely ran cold.
    pub healed: u64,
}

/// A mapping cache, optionally backed by a directory of JSON artifacts.
#[derive(Debug, Default)]
pub struct MappingStore {
    dir: Option<PathBuf>,
    computed: AtomicU64,
    disk_hits: AtomicU64,
    healed: AtomicU64,
}

/// Content hash of a CSR matrix: dimensions plus every structural array,
/// values as exact IEEE-754 bit patterns. Two matrices with equal content
/// share mappings regardless of how they were constructed.
pub fn matrix_key(a: &Csr) -> u64 {
    let mut h = Fnv::new();
    h.str("spacea-matrix-v1");
    h.usize(a.rows());
    h.usize(a.cols());
    for &p in a.row_ptr() {
        h.usize(p);
    }
    for &c in a.col_idx() {
        h.u64(c as u64);
    }
    for &v in a.vals() {
        h.f64(v);
    }
    h.finish()
}

/// Cache key of one mapping: matrix content × mapping kind × machine shape.
pub fn mapping_key(matrix_key: u64, kind: MapKind, shape: &MachineShape) -> u64 {
    let mut h = Fnv::new();
    h.str("spacea-mapping-v1");
    h.u64(matrix_key);
    h.u8(match kind {
        MapKind::Naive => 0,
        MapKind::Proposed => 1,
    });
    h.usize(shape.cubes);
    h.usize(shape.vaults_per_cube);
    h.usize(shape.product_bgs_per_vault);
    h.usize(shape.banks_per_bg);
    h.finish()
}

impl MappingStore {
    /// A store with no disk backing: every first request computes.
    pub fn in_memory() -> Self {
        MappingStore::default()
    }

    /// A store persisting artifacts under `dir` (created on first write).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        MappingStore { dir: Some(dir.into()), ..MappingStore::default() }
    }

    /// The artifact directory, if disk-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Compute-vs-warm counters so far.
    pub fn stats(&self) -> MappingStats {
        MappingStats {
            computed: self.computed.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            healed: self.healed.load(Ordering::Relaxed),
        }
    }

    /// The artifact path for one mapping key (when disk-backed).
    pub fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.json")))
    }

    /// The mapping of `a` onto `shape` under `kind`: loaded from disk when
    /// a valid artifact exists, computed (and persisted) otherwise.
    pub fn get_or_compute(&self, a: &Csr, kind: MapKind, shape: &MachineShape) -> Mapping {
        let key = mapping_key(matrix_key(a), kind, shape);
        let mut damaged = false;
        if let Some(path) = self.path_for(key) {
            match load_mapping(&path, a, shape) {
                LoadOutcome::Loaded(m) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return m;
                }
                // A present-but-undecodable artifact (torn write from a
                // crashed peer, chaos corruption, hand edit) is healed by
                // the recompute below, which overwrites it atomically.
                LoadOutcome::Corrupt => damaged = true,
                LoadOutcome::Absent => {}
            }
        }
        let m = kind.strategy().map(a, shape);
        self.computed.fetch_add(1, Ordering::Relaxed);
        if damaged {
            self.healed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(path) = self.path_for(key) {
            if let Err(e) = save_mapping(&path, &m) {
                eprintln!("spacea-harness: could not persist mapping {key:016x}: {e}");
            }
        }
        m
    }
}

/// Encodes a mapping as the harness JSON dialect.
fn encode_mapping(m: &Mapping) -> Json {
    let rows_of: Vec<Json> = (0..m.assignment.num_pes())
        .map(|p| Json::Arr(m.assignment.rows_of(p).iter().map(|&r| Json::U64(r as u64)).collect()))
        .collect();
    let table: Vec<Json> =
        (0..m.placement.len()).map(|s| Json::U64(m.placement.logical_at_slot(s) as u64)).collect();
    Json::obj(vec![
        ("version", Json::U64(1)),
        ("total_rows", Json::U64(m.assignment.total_rows() as u64)),
        ("rows_of", Json::Arr(rows_of)),
        ("placement", Json::Arr(table)),
    ])
}

/// Decodes and cross-checks a persisted mapping. `None` on any mismatch —
/// wrong version, malformed JSON, a non-permutation placement table, an
/// assignment that fails its partition invariant, or a shape/matrix
/// disagreement (a hash collision or a hand-edited file).
fn decode_mapping(v: &Json, a: &Csr, shape: &MachineShape) -> Option<Mapping> {
    if v.get("version")?.as_u64()? != 1 {
        return None;
    }
    let total_rows = v.get("total_rows")?.as_u64()? as usize;
    let mut rows_of = Vec::new();
    for pe in v.get("rows_of")?.as_arr()? {
        let mut rows = Vec::new();
        for r in pe.as_arr()? {
            rows.push(u32::try_from(r.as_u64()?).ok()?);
        }
        rows_of.push(rows);
    }
    let mut table = Vec::new();
    for s in v.get("placement")?.as_arr()? {
        table.push(u32::try_from(s.as_u64()?).ok()?);
    }
    // Placement::from_table panics on a non-permutation, so screen first.
    let mut seen = vec![false; table.len()];
    for &l in &table {
        let l = l as usize;
        if l >= seen.len() || seen[l] {
            return None;
        }
        seen[l] = true;
    }
    let assignment = RowAssignment::new(rows_of, total_rows);
    assignment.validate().ok()?;
    if total_rows != a.rows()
        || assignment.num_pes() != shape.product_pes()
        || table.len() != shape.product_pes()
    {
        return None;
    }
    Some(Mapping { assignment, placement: Placement::from_table(table) })
}

/// What loading a persisted artifact found: a valid mapping, no file at
/// all, or a file that exists but cannot be trusted.
enum LoadOutcome {
    Loaded(Mapping),
    Absent,
    Corrupt,
}

fn load_mapping(path: &Path, a: &Csr, shape: &MachineShape) -> LoadOutcome {
    let Ok(text) = std::fs::read_to_string(path) else { return LoadOutcome::Absent };
    parse(&text)
        .ok()
        .and_then(|v| decode_mapping(&v, a, shape))
        .map_or(LoadOutcome::Corrupt, LoadOutcome::Loaded)
}

fn save_mapping(path: &Path, m: &Mapping) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    // Tmp-file + rename: a concurrent reader (another shard, a restarted
    // daemon) never observes a torn artifact.
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("mapping.json");
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, encode_mapping(m).to_text())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_matrix::gen::{banded, rmat, BandedConfig, RmatConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-mapstore-{tag}-{}", std::process::id()))
    }

    #[test]
    fn matrix_key_tracks_content_not_identity() {
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let b = banded(&BandedConfig { n: 64, ..Default::default() });
        assert_eq!(matrix_key(&a), matrix_key(&b));
        let c = banded(&BandedConfig { n: 65, ..Default::default() });
        assert_ne!(matrix_key(&a), matrix_key(&c));
    }

    #[test]
    fn mapping_key_depends_on_kind_and_shape() {
        let k = 7u64;
        let shape = MachineShape::tiny();
        let base = mapping_key(k, MapKind::Proposed, &shape);
        assert_ne!(base, mapping_key(k, MapKind::Naive, &shape));
        let mut other = shape;
        other.banks_per_bg += 1;
        assert_ne!(base, mapping_key(k, MapKind::Proposed, &other));
    }

    #[test]
    fn in_memory_store_always_computes() {
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let store = MappingStore::in_memory();
        let shape = MachineShape::tiny();
        let m1 = store.get_or_compute(&a, MapKind::Proposed, &shape);
        let m2 = store.get_or_compute(&a, MapKind::Proposed, &shape);
        assert_eq!(m1, m2);
        assert_eq!(store.stats(), MappingStats { computed: 2, disk_hits: 0, healed: 0 });
    }

    #[test]
    fn disk_store_warms_across_instances() {
        let dir = tmp_dir("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let a = rmat(&RmatConfig { n: 128, edges: 600, ..Default::default() });
        let shape = MachineShape::tiny();

        let first = MappingStore::with_dir(&dir);
        let m1 = first.get_or_compute(&a, MapKind::Proposed, &shape);
        assert_eq!(first.stats(), MappingStats { computed: 1, disk_hits: 0, healed: 0 });

        // A "restarted process": a fresh store over the same directory must
        // perform zero Phase I/II computations.
        let second = MappingStore::with_dir(&dir);
        let m2 = second.get_or_compute(&a, MapKind::Proposed, &shape);
        assert_eq!(second.stats(), MappingStats { computed: 0, disk_hits: 1, healed: 0 });
        assert_eq!(m1, m2, "warmed mapping must equal the computed one exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_falls_back_to_compute_and_heals() {
        let dir = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let a = banded(&BandedConfig { n: 96, ..Default::default() });
        let shape = MachineShape::tiny();
        let store = MappingStore::with_dir(&dir);
        let key = mapping_key(matrix_key(&a), MapKind::Proposed, &shape);
        let path = store.path_for(key).unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        let m = store.get_or_compute(&a, MapKind::Proposed, &shape);
        assert_eq!(store.stats(), MappingStats { computed: 1, disk_hits: 0, healed: 1 });
        // The recompute overwrote the corrupt artifact; a fresh store hits.
        let again = MappingStore::with_dir(&dir);
        let m2 = again.get_or_compute(&a, MapKind::Proposed, &shape);
        assert_eq!(again.stats(), MappingStats { computed: 0, disk_hits: 1, healed: 0 });
        assert_eq!(m, m2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_artifact_for_different_shape_is_rejected() {
        let dir = tmp_dir("stale");
        let _ = std::fs::remove_dir_all(&dir);
        let a = banded(&BandedConfig { n: 64, ..Default::default() });
        let shape = MachineShape::tiny();
        let store = MappingStore::with_dir(&dir);
        let m = store.get_or_compute(&a, MapKind::Proposed, &shape);
        // Copy the artifact onto the key of a *different* shape (simulating
        // a collision / stale file); the cross-check must reject it.
        let key = mapping_key(matrix_key(&a), MapKind::Proposed, &shape);
        let mut other = shape;
        other.vaults_per_cube *= 2;
        let other_key = mapping_key(matrix_key(&a), MapKind::Proposed, &other);
        std::fs::copy(store.path_for(key).unwrap(), store.path_for(other_key).unwrap()).unwrap();
        let m2 = store.get_or_compute(&a, MapKind::Proposed, &other);
        assert_eq!(store.stats().computed, 2, "mismatched artifact must recompute");
        assert_ne!(m.assignment.num_pes(), 0);
        assert_eq!(m2.assignment.num_pes(), other.product_pes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encode_decode_round_trips() {
        let a = rmat(&RmatConfig { n: 100, edges: 400, ..Default::default() });
        let shape = MachineShape::tiny();
        let m = MapKind::Proposed.strategy().map(&a, &shape);
        let back = decode_mapping(&encode_mapping(&m), &a, &shape).unwrap();
        assert_eq!(m, back);
    }
}
