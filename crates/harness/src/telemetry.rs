//! Run telemetry: per-job records, the JSON run manifest, and the
//! human-readable summary.

use crate::job::JobKey;
use crate::json::Json;
use crate::mapstore::MappingStats;
use crate::store::{CacheOutcome, CacheStats};

/// How one supervised job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job produced a result on its first attempt (or from cache).
    Ok,
    /// The job produced a result after one or more failed attempts.
    Retried {
        /// Total attempts, including the final successful one.
        attempts: u32,
    },
    /// Every attempt failed; no result exists for this job.
    Failed {
        /// The last attempt's error message.
        error: String,
    },
    /// The job hung (sim watchdog or wall-clock budget); hangs are
    /// deterministic for a fixed job, so it was not retried.
    TimedOut {
        /// The watchdog's stall diagnosis, or the wall-budget message.
        diagnosis: String,
    },
}

impl JobStatus {
    /// Short JSON/display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Retried { .. } => "retried",
            JobStatus::Failed { .. } => "failed",
            JobStatus::TimedOut { .. } => "timed-out",
        }
    }

    /// Whether a result exists for this job.
    pub fn is_success(&self) -> bool {
        matches!(self, JobStatus::Ok | JobStatus::Retried { .. })
    }

    /// The failure message, if the job did not produce a result.
    pub fn failure(&self) -> Option<&str> {
        match self {
            JobStatus::Failed { error } => Some(error),
            JobStatus::TimedOut { diagnosis } => Some(diagnosis),
            _ => None,
        }
    }
}

/// Telemetry for one job in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Position in the submitted job list.
    pub index: usize,
    /// Display label (`"sim:m3/8:proposed"`).
    pub label: String,
    /// The job's content hash.
    pub key: JobKey,
    /// Where the result came from.
    pub outcome: CacheOutcome,
    /// How the job ended (a failed job's `outcome` is `Computed`: the cache
    /// had nothing and the worker attempted the computation).
    pub status: JobStatus,
    /// Wall time spent obtaining the result (lookup or compute), ms.
    pub wall_ms: f64,
    /// Simulated cycles (simulation jobs only).
    pub cycles: Option<u64>,
    /// Discrete events processed (simulation jobs only).
    pub events: Option<u64>,
}

/// Everything recorded about one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the job phase, ms.
    pub total_wall_ms: f64,
    /// Per-job records, in submission order.
    pub records: Vec<JobRecord>,
    /// The store's aggregate counters at the end of the run.
    pub stats: CacheStats,
    /// On-disk cache entries that failed to decode (treated as misses); the
    /// run summary surfaces them so silent cache damage is visible.
    pub corrupt_paths: Vec<String>,
    /// Labels of jobs whose worker could not report back (the result channel
    /// closed under it). Their records are synthesized as failures; this list
    /// makes the abandonment itself visible.
    pub abandoned: Vec<String>,
    /// Phase I/II mapping work this run: computed-from-scratch versus warmed
    /// from persisted artifacts. Zero `computed` after a restart is the
    /// warm-mapping-cache guarantee.
    pub mappings: MappingStats,
}

impl RunManifest {
    /// Fraction of jobs answered from cache (memory or disk).
    pub fn hit_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self.records.iter().filter(|r| r.outcome != CacheOutcome::Computed).count();
        hits as f64 / self.records.len() as f64
    }

    /// The manifest as a JSON document.
    ///
    /// Times are reported in integer microseconds (this dialect has no
    /// floats, and sub-microsecond precision is noise here anyway).
    pub fn to_json(&self) -> String {
        let jobs: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                let mut pairs = vec![
                    ("label", Json::Str(r.label.clone())),
                    ("key", Json::Str(r.key.to_string())),
                    ("outcome", Json::Str(r.outcome.tag().into())),
                    ("status", Json::Str(r.status.tag().into())),
                    ("wall_us", Json::U64((r.wall_ms * 1e3) as u64)),
                ];
                if let JobStatus::Retried { attempts } = r.status {
                    pairs.push(("attempts", Json::U64(attempts as u64)));
                }
                if let Some(f) = r.status.failure() {
                    pairs.push(("failure", Json::Str(f.to_string())));
                }
                if let Some(c) = r.cycles {
                    pairs.push(("cycles", Json::U64(c)));
                }
                if let Some(e) = r.events {
                    pairs.push(("events_processed", Json::U64(e)));
                }
                Json::obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str("spacea-run-manifest-v1".into())),
            ("workers", Json::U64(self.workers as u64)),
            ("total_wall_us", Json::U64((self.total_wall_ms * 1e3) as u64)),
            (
                "cache",
                Json::obj(vec![
                    ("mem_hits", Json::U64(self.stats.mem_hits)),
                    ("disk_hits", Json::U64(self.stats.disk_hits)),
                    ("misses", Json::U64(self.stats.misses)),
                    ("corrupt", Json::U64(self.stats.corrupt)),
                ]),
            ),
            (
                "mappings",
                Json::obj(vec![
                    ("computed", Json::U64(self.mappings.computed)),
                    ("disk_hits", Json::U64(self.mappings.disk_hits)),
                    ("healed", Json::U64(self.mappings.healed)),
                ]),
            ),
            (
                "corrupt_paths",
                Json::Arr(self.corrupt_paths.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            ("abandoned", Json::Arr(self.abandoned.iter().map(|l| Json::Str(l.clone())).collect())),
            ("jobs", Json::Arr(jobs)),
        ])
        .to_text()
    }

    /// A short human-readable run summary.
    pub fn summary(&self) -> String {
        let computed = self.records.iter().filter(|r| r.outcome == CacheOutcome::Computed).count();
        let disk = self.records.iter().filter(|r| r.outcome == CacheOutcome::DiskHit).count();
        let mem = self.records.len() - computed - disk;
        let sim_cycles: u64 = self.records.iter().filter_map(|r| r.cycles).sum();
        let events: u64 = self.records.iter().filter_map(|r| r.events).sum();
        let mut out = format!(
            "harness: {} jobs on {} workers in {:.1}s — {} computed, {} disk hits, {} memory hits ({:.0}% cached)\n",
            self.records.len(),
            self.workers,
            self.total_wall_ms / 1e3,
            computed,
            disk,
            mem,
            self.hit_fraction() * 100.0,
        );
        out.push_str(&format!(
            "harness: {sim_cycles} simulated cycles, {events} events processed\n"
        ));
        let failed = self.records.iter().filter(|r| r.status.tag() == "failed").count();
        let timed_out = self.records.iter().filter(|r| r.status.tag() == "timed-out").count();
        let retried = self.records.iter().filter(|r| r.status.tag() == "retried").count();
        if failed + timed_out + retried > 0 {
            out.push_str(&format!(
                "harness: {failed} failed, {timed_out} timed out, {retried} retried\n"
            ));
            for r in &self.records {
                if let Some(f) = r.status.failure() {
                    out.push_str(&format!("harness:   {}: {} — {f}\n", r.status.tag(), r.label));
                }
            }
        }
        if !self.abandoned.is_empty() {
            out.push_str(&format!(
                "harness: {} job(s) abandoned by their worker: {}\n",
                self.abandoned.len(),
                self.abandoned.join(", ")
            ));
        }
        let mut slowest: Vec<&JobRecord> =
            self.records.iter().filter(|r| r.outcome == CacheOutcome::Computed).collect();
        slowest.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for r in slowest.iter().take(3) {
            out.push_str(&format!("harness:   slowest: {} ({:.0} ms)\n", r.label, r.wall_ms));
        }
        if self.stats.corrupt > 0 {
            out.push_str(&format!(
                "harness: {} corrupt cache entr{} recomputed:\n",
                self.stats.corrupt,
                if self.stats.corrupt == 1 {
                    "y treated as a miss and"
                } else {
                    "ies treated as misses and"
                },
            ));
            for p in &self.corrupt_paths {
                out.push_str(&format!("harness:   corrupt: {p}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn manifest() -> RunManifest {
        RunManifest {
            workers: 4,
            total_wall_ms: 1234.5,
            records: vec![
                JobRecord {
                    index: 0,
                    label: "sim:m1/256:proposed".into(),
                    key: JobKey(1),
                    outcome: CacheOutcome::Computed,
                    status: JobStatus::Ok,
                    wall_ms: 900.0,
                    cycles: Some(1000),
                    events: Some(5000),
                },
                JobRecord {
                    index: 1,
                    label: "gpu:m1/256".into(),
                    key: JobKey(2),
                    outcome: CacheOutcome::DiskHit,
                    status: JobStatus::Ok,
                    wall_ms: 1.5,
                    cycles: None,
                    events: None,
                },
            ],
            stats: CacheStats { mem_hits: 0, disk_hits: 1, misses: 1, corrupt: 0 },
            corrupt_paths: Vec::new(),
            abandoned: Vec::new(),
            mappings: MappingStats { computed: 1, disk_hits: 0, healed: 0 },
        }
    }

    #[test]
    fn manifest_json_parses_and_carries_fields() {
        let m = manifest();
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        let jobs = v.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("outcome").unwrap().as_str(), Some("computed"));
        assert_eq!(jobs[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(jobs[0].get("failure").is_none());
        assert_eq!(jobs[0].get("cycles").unwrap().as_u64(), Some(1000));
        assert_eq!(jobs[1].get("outcome").unwrap().as_str(), Some("disk-hit"));
        assert!(jobs[1].get("cycles").is_none());
        assert_eq!(v.get("cache").unwrap().get("disk_hits").unwrap().as_u64(), Some(1));
        let maps = v.get("mappings").unwrap();
        assert_eq!(maps.get("computed").unwrap().as_u64(), Some(1));
        assert_eq!(maps.get("disk_hits").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn hit_fraction_counts_both_hit_kinds() {
        assert!((manifest().hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = manifest().summary();
        assert!(s.contains("2 jobs on 4 workers"), "{s}");
        assert!(s.contains("1 computed, 1 disk hits"), "{s}");
        assert!(s.contains("slowest: sim:m1/256:proposed"), "{s}");
        assert!(!s.contains("corrupt"), "clean runs must not mention corruption: {s}");
    }

    #[test]
    fn failures_surface_in_json_and_summary() {
        let mut m = manifest();
        m.records[0].status =
            JobStatus::TimedOut { diagnosis: "no retirement in 1000 cycles; vault 2".into() };
        m.records[1].status = JobStatus::Failed { error: "job panicked: boom".into() };
        m.abandoned = vec!["sim:m9/8:proposed".into()];
        let v = json::parse(&m.to_json()).unwrap();
        let jobs = v.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(jobs[0].get("status").unwrap().as_str(), Some("timed-out"));
        assert!(jobs[0].get("failure").unwrap().as_str().unwrap().contains("vault 2"));
        assert_eq!(jobs[1].get("status").unwrap().as_str(), Some("failed"));
        let abandoned = v.get("abandoned").unwrap().as_arr().unwrap();
        assert_eq!(abandoned[0].as_str(), Some("sim:m9/8:proposed"));
        let s = m.summary();
        assert!(s.contains("1 failed, 1 timed out, 0 retried"), "{s}");
        assert!(s.contains("vault 2"), "{s}");
        assert!(s.contains("abandoned by their worker"), "{s}");
    }

    #[test]
    fn retried_status_reports_attempts() {
        let mut m = manifest();
        m.records[0].status = JobStatus::Retried { attempts: 3 };
        assert!(m.records[0].status.is_success());
        let v = json::parse(&m.to_json()).unwrap();
        let job = &v.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(job.get("status").unwrap().as_str(), Some("retried"));
        assert_eq!(job.get("attempts").unwrap().as_u64(), Some(3));
        assert!(job.get("failure").is_none());
    }

    #[test]
    fn summary_and_json_report_corrupt_entries() {
        let mut m = manifest();
        m.stats.corrupt = 1;
        m.corrupt_paths = vec!["target/spacea-cache/dead.json".into()];
        let s = m.summary();
        assert!(s.contains("1 corrupt cache entry"), "{s}");
        assert!(s.contains("target/spacea-cache/dead.json"), "{s}");
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("cache").unwrap().get("corrupt").unwrap().as_u64(), Some(1));
        let paths = v.get("corrupt_paths").unwrap().as_arr().unwrap();
        assert_eq!(paths[0].as_str(), Some("target/spacea-cache/dead.json"));
    }
}
