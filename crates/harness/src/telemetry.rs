//! Run telemetry: per-job records, the JSON run manifest, and the
//! human-readable summary.

use crate::job::JobKey;
use crate::json::Json;
use crate::store::{CacheOutcome, CacheStats};

/// Telemetry for one job in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Position in the submitted job list.
    pub index: usize,
    /// Display label (`"sim:m3/8:proposed"`).
    pub label: String,
    /// The job's content hash.
    pub key: JobKey,
    /// Where the result came from.
    pub outcome: CacheOutcome,
    /// Wall time spent obtaining the result (lookup or compute), ms.
    pub wall_ms: f64,
    /// Simulated cycles (simulation jobs only).
    pub cycles: Option<u64>,
    /// Discrete events processed (simulation jobs only).
    pub events: Option<u64>,
}

/// Everything recorded about one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the job phase, ms.
    pub total_wall_ms: f64,
    /// Per-job records, in submission order.
    pub records: Vec<JobRecord>,
    /// The store's aggregate counters at the end of the run.
    pub stats: CacheStats,
    /// On-disk cache entries that failed to decode (treated as misses); the
    /// run summary surfaces them so silent cache damage is visible.
    pub corrupt_paths: Vec<String>,
}

impl RunManifest {
    /// Fraction of jobs answered from cache (memory or disk).
    pub fn hit_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self.records.iter().filter(|r| r.outcome != CacheOutcome::Computed).count();
        hits as f64 / self.records.len() as f64
    }

    /// The manifest as a JSON document.
    ///
    /// Times are reported in integer microseconds (this dialect has no
    /// floats, and sub-microsecond precision is noise here anyway).
    pub fn to_json(&self) -> String {
        let jobs: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                let mut pairs = vec![
                    ("label", Json::Str(r.label.clone())),
                    ("key", Json::Str(r.key.to_string())),
                    ("outcome", Json::Str(r.outcome.tag().into())),
                    ("wall_us", Json::U64((r.wall_ms * 1e3) as u64)),
                ];
                if let Some(c) = r.cycles {
                    pairs.push(("cycles", Json::U64(c)));
                }
                if let Some(e) = r.events {
                    pairs.push(("events_processed", Json::U64(e)));
                }
                Json::obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str("spacea-run-manifest-v1".into())),
            ("workers", Json::U64(self.workers as u64)),
            ("total_wall_us", Json::U64((self.total_wall_ms * 1e3) as u64)),
            (
                "cache",
                Json::obj(vec![
                    ("mem_hits", Json::U64(self.stats.mem_hits)),
                    ("disk_hits", Json::U64(self.stats.disk_hits)),
                    ("misses", Json::U64(self.stats.misses)),
                    ("corrupt", Json::U64(self.stats.corrupt)),
                ]),
            ),
            (
                "corrupt_paths",
                Json::Arr(self.corrupt_paths.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            ("jobs", Json::Arr(jobs)),
        ])
        .to_text()
    }

    /// A short human-readable run summary.
    pub fn summary(&self) -> String {
        let computed = self.records.iter().filter(|r| r.outcome == CacheOutcome::Computed).count();
        let disk = self.records.iter().filter(|r| r.outcome == CacheOutcome::DiskHit).count();
        let mem = self.records.len() - computed - disk;
        let sim_cycles: u64 = self.records.iter().filter_map(|r| r.cycles).sum();
        let events: u64 = self.records.iter().filter_map(|r| r.events).sum();
        let mut out = format!(
            "harness: {} jobs on {} workers in {:.1}s — {} computed, {} disk hits, {} memory hits ({:.0}% cached)\n",
            self.records.len(),
            self.workers,
            self.total_wall_ms / 1e3,
            computed,
            disk,
            mem,
            self.hit_fraction() * 100.0,
        );
        out.push_str(&format!(
            "harness: {sim_cycles} simulated cycles, {events} events processed\n"
        ));
        let mut slowest: Vec<&JobRecord> =
            self.records.iter().filter(|r| r.outcome == CacheOutcome::Computed).collect();
        slowest.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for r in slowest.iter().take(3) {
            out.push_str(&format!("harness:   slowest: {} ({:.0} ms)\n", r.label, r.wall_ms));
        }
        if self.stats.corrupt > 0 {
            out.push_str(&format!(
                "harness: {} corrupt cache entr{} recomputed:\n",
                self.stats.corrupt,
                if self.stats.corrupt == 1 {
                    "y treated as a miss and"
                } else {
                    "ies treated as misses and"
                },
            ));
            for p in &self.corrupt_paths {
                out.push_str(&format!("harness:   corrupt: {p}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn manifest() -> RunManifest {
        RunManifest {
            workers: 4,
            total_wall_ms: 1234.5,
            records: vec![
                JobRecord {
                    index: 0,
                    label: "sim:m1/256:proposed".into(),
                    key: JobKey(1),
                    outcome: CacheOutcome::Computed,
                    wall_ms: 900.0,
                    cycles: Some(1000),
                    events: Some(5000),
                },
                JobRecord {
                    index: 1,
                    label: "gpu:m1/256".into(),
                    key: JobKey(2),
                    outcome: CacheOutcome::DiskHit,
                    wall_ms: 1.5,
                    cycles: None,
                    events: None,
                },
            ],
            stats: CacheStats { mem_hits: 0, disk_hits: 1, misses: 1, corrupt: 0 },
            corrupt_paths: Vec::new(),
        }
    }

    #[test]
    fn manifest_json_parses_and_carries_fields() {
        let m = manifest();
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        let jobs = v.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("outcome").unwrap().as_str(), Some("computed"));
        assert_eq!(jobs[0].get("cycles").unwrap().as_u64(), Some(1000));
        assert_eq!(jobs[1].get("outcome").unwrap().as_str(), Some("disk-hit"));
        assert!(jobs[1].get("cycles").is_none());
        assert_eq!(v.get("cache").unwrap().get("disk_hits").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn hit_fraction_counts_both_hit_kinds() {
        assert!((manifest().hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = manifest().summary();
        assert!(s.contains("2 jobs on 4 workers"), "{s}");
        assert!(s.contains("1 computed, 1 disk hits"), "{s}");
        assert!(s.contains("slowest: sim:m1/256:proposed"), "{s}");
        assert!(!s.contains("corrupt"), "clean runs must not mention corruption: {s}");
    }

    #[test]
    fn summary_and_json_report_corrupt_entries() {
        let mut m = manifest();
        m.stats.corrupt = 1;
        m.corrupt_paths = vec!["target/spacea-cache/dead.json".into()];
        let s = m.summary();
        assert!(s.contains("1 corrupt cache entry"), "{s}");
        assert!(s.contains("target/spacea-cache/dead.json"), "{s}");
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(v.get("cache").unwrap().get("corrupt").unwrap().as_u64(), Some(1));
        let paths = v.get("corrupt_paths").unwrap().as_arr().unwrap();
        assert_eq!(paths[0].as_str(), Some("target/spacea-cache/dead.json"));
    }
}
