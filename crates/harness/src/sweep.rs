//! Grid-spec parameter sweeps: a [`SweepSpec`] names axes over the design
//! space the paper evaluates pointwise — matrix, scale, mapping, machine
//! variant, cube count, CAM capacity, energy parameters — and deterministically
//! enumerates their cartesian product into deduplicated, content-addressed
//! [`JobSpec`] lists.
//!
//! Sharding ([`shard_range`]) partitions the enumerated points into N
//! disjoint, union-complete contiguous slices, so N processes sharing the
//! disk cache can split a grid (`--shard K/N`) and together reproduce the
//! unsharded run byte-for-byte: every point is computed by exactly one
//! shard, results meet in `target/spacea-cache/`, and rendering is pure
//! cache lookup.

use crate::job::{JobSpec, MatrixSource};
use spacea_arch::HwConfig;
use spacea_backend::{BackendKind, HbmSpec, Partition};
use spacea_gpu::spec::TitanXpSpec;
use spacea_mapping::MapKind;
use spacea_matrix::formats::FormatKind;
use spacea_matrix::suite;
use spacea_model::EnergyParams;

/// The baseline values a sweep falls back to for axes the spec leaves
/// empty: the session's machine, energy parameters, matrix scale, and GPU
/// baseline spec (normally derived from `ExpConfig` by the sweep binary).
#[derive(Debug, Clone)]
pub struct SweepBase {
    /// Display name of the base machine (`"default"` unless overridden).
    pub hw_name: String,
    /// The base machine configuration.
    pub hw: HwConfig,
    /// The base energy parameters.
    pub energy: EnergyParams,
    /// The base Table I matrix scale.
    pub scale: usize,
    /// The GPU baseline spec used for `gpu = true` grids.
    pub gpu_spec: TitanXpSpec,
    /// The HBM accelerator spec used for scenario cells on the `hbm` backend.
    pub hbm_spec: HbmSpec,
}

impl Default for SweepBase {
    fn default() -> Self {
        SweepBase {
            hw_name: "default".into(),
            hw: HwConfig::default(),
            energy: EnergyParams::default(),
            scale: suite::DEFAULT_SCALE,
            gpu_spec: TitanXpSpec::default(),
            hbm_spec: HbmSpec::default(),
        }
    }
}

/// A sweep grid: one `Vec` per axis. An empty axis means "the base value
/// only", so a spec with every axis empty is the empty grid (nothing to do)
/// — callers should reject it with a usage hint.
///
/// Axes are set either programmatically or by feeding `key = value` pairs
/// (CLI flags and spec files share [`SweepSpec::set`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSpec {
    /// Table I matrix ids (axis key `ids`; `all` expands to the whole suite).
    pub ids: Vec<u8>,
    /// Matrix down-scale factors (axis key `scales`).
    pub scales: Vec<usize>,
    /// Mapping algorithms (axis key `kinds`: `naive`, `proposed`).
    pub kinds: Vec<MapKind>,
    /// Named machine variants (axis key `hw`: see [`HwConfig::variant_names`]).
    pub hw: Vec<(String, HwConfig)>,
    /// Cube-count overrides applied to each machine variant (axis key `cubes`).
    pub cubes: Vec<usize>,
    /// L1 CAM set-count overrides (axis key `l1-sets`).
    pub l1_sets: Vec<usize>,
    /// L2 CAM set-count overrides (axis key `l2-sets`).
    pub l2_sets: Vec<usize>,
    /// Energy-parameter scale factors (axis key `energy-scale`).
    pub energy_scale: Vec<f64>,
    /// Also enumerate the GPU baseline per (matrix, scale) point (key `gpu`).
    pub gpu: bool,
    /// Scenario-matrix backends (axis key `backends`; `all` expands to every
    /// backend). Setting any scenario axis appends one [`PointKind::Scenario`]
    /// cell per (matrix, scale, backend, format, partition); leaving all
    /// three empty keeps the legacy sim/GPU enumeration byte-identical.
    pub backends: Vec<BackendKind>,
    /// Scenario-matrix storage formats (axis key `formats`; `all` expands
    /// to every format). Defaults to CSR when another scenario axis is set.
    pub formats: Vec<FormatKind>,
    /// Scenario-matrix stream partitionings (axis key `partitions`).
    /// Defaults to row-split when another scenario axis is set.
    pub partitions: Vec<Partition>,
}

impl SweepSpec {
    /// Whether no axis has been set (the empty grid).
    pub fn is_empty(&self) -> bool {
        self == &SweepSpec::default()
    }

    /// Sets one axis from its `key = value` form. Shared by the CLI flags
    /// and the spec-file parser, so both accept exactly the same grammar.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "ids" => {
                self.ids = if value.trim() == "all" {
                    suite::entries().iter().map(|e| e.id).collect()
                } else {
                    let ids = parse_list::<u8>(key, value)?;
                    for &id in &ids {
                        if suite::entry_by_id(id).is_none() {
                            return Err(format!("ids: {id} is not a Table I matrix id"));
                        }
                    }
                    ids
                }
            }
            "scales" => self.scales = parse_positive_list(key, value)?,
            "kinds" => {
                self.kinds = split(value)
                    .map(|k| match k {
                        "naive" => Ok(MapKind::Naive),
                        "proposed" => Ok(MapKind::Proposed),
                        other => Err(format!("kinds: unknown mapping '{other}'")),
                    })
                    .collect::<Result<_, _>>()?
            }
            "hw" => {
                self.hw = split(value)
                    .map(|name| {
                        HwConfig::by_name(name).map(|c| (name.to_string(), c)).ok_or_else(|| {
                            format!(
                                "hw: unknown variant '{name}' (expected one of {})",
                                HwConfig::variant_names().join(", ")
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?
            }
            "cubes" => self.cubes = parse_positive_list(key, value)?,
            "l1-sets" => self.l1_sets = parse_positive_list(key, value)?,
            "l2-sets" => self.l2_sets = parse_positive_list(key, value)?,
            "energy-scale" => {
                self.energy_scale = split(value)
                    .map(|v| {
                        v.parse::<f64>()
                            .ok()
                            .filter(|f| f.is_finite() && *f > 0.0)
                            .ok_or_else(|| format!("energy-scale: '{v}' is not a positive number"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "gpu" => {
                self.gpu = match value.trim() {
                    "true" | "1" | "yes" => true,
                    "false" | "0" | "no" => false,
                    other => return Err(format!("gpu: expected true/false, got '{other}'")),
                }
            }
            "backends" => {
                self.backends = if value.trim() == "all" {
                    BackendKind::ALL.to_vec()
                } else {
                    split(value)
                        .map(|v| {
                            BackendKind::parse(v)
                                .ok_or_else(|| format!("backends: unknown backend '{v}'"))
                        })
                        .collect::<Result<_, _>>()?
                }
            }
            "formats" => {
                self.formats = if value.trim() == "all" {
                    FormatKind::ALL.to_vec()
                } else {
                    split(value)
                        .map(|v| {
                            FormatKind::parse(v)
                                .ok_or_else(|| format!("formats: unknown format '{v}'"))
                        })
                        .collect::<Result<_, _>>()?
                }
            }
            "partitions" => {
                self.partitions = if value.trim() == "all" {
                    Partition::ALL.to_vec()
                } else {
                    split(value)
                        .map(|v| {
                            Partition::parse(v)
                                .ok_or_else(|| format!("partitions: unknown partitioning '{v}'"))
                        })
                        .collect::<Result<_, _>>()?
                }
            }
            other => {
                return Err(format!(
                    "unknown sweep key '{other}' (expected ids, scales, kinds, hw, cubes, \
                     l1-sets, l2-sets, energy-scale, gpu, backends, formats, partitions)"
                ))
            }
        }
        Ok(())
    }

    /// Parses a spec file: one `key = value` per line, `#` comments, blank
    /// lines ignored. Errors carry the line number.
    pub fn from_spec_text(text: &str) -> Result<Self, String> {
        let mut spec = SweepSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected 'key = value', got '{line}'", lineno + 1));
            };
            spec.set(key.trim(), value.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(spec)
    }

    /// Enumerates the grid into concrete points, in a fixed nesting order
    /// (ids outermost, energy innermost, GPU baselines last), with
    /// duplicate job keys removed (first occurrence wins). Deterministic:
    /// the same spec and base always yield the same list, which is what
    /// makes sharded execution reproducible.
    pub fn points(&self, base: &SweepBase) -> Vec<SweepPoint> {
        fn axis<T: Clone>(values: &[T], default: T) -> Vec<T> {
            if values.is_empty() {
                vec![default]
            } else {
                values.to_vec()
            }
        }
        let ids = axis(&self.ids, 1);
        let scales = axis(&self.scales, base.scale);
        let kinds = axis(&self.kinds, MapKind::Proposed);
        let hw = axis(&self.hw, (base.hw_name.clone(), base.hw.clone()));
        let cubes: Vec<Option<usize>> = if self.cubes.is_empty() {
            vec![None]
        } else {
            self.cubes.iter().map(|&c| Some(c)).collect()
        };
        let l1: Vec<Option<usize>> = if self.l1_sets.is_empty() {
            vec![None]
        } else {
            self.l1_sets.iter().map(|&s| Some(s)).collect()
        };
        let l2: Vec<Option<usize>> = if self.l2_sets.is_empty() {
            vec![None]
        } else {
            self.l2_sets.iter().map(|&s| Some(s)).collect()
        };
        let energy = axis(&self.energy_scale, 1.0);

        let mut points = Vec::new();
        for &id in &ids {
            for &scale in &scales {
                for &kind in &kinds {
                    for (hw_name, hw_base) in &hw {
                        for &cube in &cubes {
                            for &l1_sets in &l1 {
                                for &l2_sets in &l2 {
                                    for &es in &energy {
                                        let mut machine = hw_base.clone();
                                        if let Some(c) = cube {
                                            machine = machine.with_cubes(c);
                                        }
                                        if let Some(s) = l1_sets {
                                            machine = machine.with_l1_cam_sets(s);
                                        }
                                        if let Some(s) = l2_sets {
                                            machine = machine.with_l2_cam_sets(s);
                                        }
                                        points.push(SweepPoint {
                                            id,
                                            scale,
                                            kind: PointKind::Sim {
                                                kind,
                                                hw_name: hw_name.clone(),
                                                hw: Box::new(machine),
                                                energy: if es == 1.0 {
                                                    base.energy
                                                } else {
                                                    base.energy.scaled(es)
                                                },
                                                energy_scale: es,
                                            },
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if self.gpu {
            for &id in &ids {
                for &scale in &scales {
                    points.push(SweepPoint {
                        id,
                        scale,
                        kind: PointKind::Gpu { spec: base.gpu_spec },
                    });
                }
            }
        }
        // Scenario cells enumerate only when at least one scenario axis is
        // set, so legacy grids stay byte-identical. The mapping algorithm
        // and machine variant are pinned to the first value of their axes
        // (they only matter to the SpaceA backend); unset scenario axes
        // default to the canonical cell (spacea, csr, row).
        if !(self.backends.is_empty() && self.formats.is_empty() && self.partitions.is_empty()) {
            let backends = axis(&self.backends, BackendKind::Spacea);
            let formats = axis(&self.formats, FormatKind::Csr);
            let partitions = axis(&self.partitions, Partition::RowSplit);
            let kind = kinds[0];
            let (hw_name, hw_base) = &hw[0];
            for &id in &ids {
                for &scale in &scales {
                    for &backend in &backends {
                        for &format in &formats {
                            for &partition in &partitions {
                                points.push(SweepPoint {
                                    id,
                                    scale,
                                    kind: PointKind::Scenario {
                                        backend,
                                        format,
                                        partition,
                                        kind,
                                        hw_name: hw_name.clone(),
                                        hw: Box::new(hw_base.clone()),
                                        gpu: base.gpu_spec,
                                        hbm: base.hbm_spec,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        dedup_points(points)
    }
}

fn split(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn parse_list<T: std::str::FromStr>(key: &str, value: &str) -> Result<Vec<T>, String> {
    split(value).map(|v| v.parse::<T>().map_err(|_| format!("{key}: cannot parse '{v}'"))).collect()
}

fn parse_positive_list(key: &str, value: &str) -> Result<Vec<usize>, String> {
    let list = parse_list::<usize>(key, value)?;
    if list.contains(&0) {
        return Err(format!("{key}: values must be positive"));
    }
    Ok(list)
}

/// What one grid point runs: a SpaceA simulation at a resolved machine and
/// energy configuration, or the GPU baseline model.
#[derive(Debug, Clone, PartialEq)]
pub enum PointKind {
    /// A cycle-level SpaceA simulation.
    Sim {
        /// The mapping algorithm.
        kind: MapKind,
        /// Name of the machine variant this point was derived from.
        hw_name: String,
        /// The fully resolved machine (variant + cube/CAM overrides).
        /// Boxed: `HwConfig` dwarfs the GPU variant's payload.
        hw: Box<HwConfig>,
        /// The resolved energy parameters.
        energy: EnergyParams,
        /// The energy scale factor that produced them (for display).
        energy_scale: f64,
    },
    /// The GPU baseline model run.
    Gpu {
        /// The baseline's (iso-area scaled) parameters.
        spec: TitanXpSpec,
    },
    /// One backend × format × partitioning scenario cell.
    Scenario {
        /// Which execution model runs the cell.
        backend: BackendKind,
        /// The storage format streamed by the backend.
        format: FormatKind,
        /// How the stream is split across parallel resources.
        partition: Partition,
        /// The mapping algorithm (SpaceA backend only).
        kind: MapKind,
        /// Name of the machine variant behind the SpaceA backend.
        hw_name: String,
        /// The machine behind the SpaceA backend (boxed like Sim's).
        hw: Box<HwConfig>,
        /// The GPU baseline parameters behind the GPU backend.
        gpu: TitanXpSpec,
        /// The HBM accelerator parameters behind the HBM backend.
        hbm: HbmSpec,
    },
}

/// One concrete grid point: a Table I matrix at a scale, plus what to run
/// on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Table I matrix id.
    pub id: u8,
    /// Matrix down-scale factor.
    pub scale: usize,
    /// What this point runs.
    pub kind: PointKind,
}

impl SweepPoint {
    /// The content-addressed job computing this point.
    pub fn job(&self) -> JobSpec {
        let source = MatrixSource::Suite { id: self.id, scale: self.scale };
        match &self.kind {
            PointKind::Sim { kind, hw, energy, .. } => {
                JobSpec::Sim { source, kind: *kind, hw: hw.as_ref().clone(), energy: *energy }
            }
            PointKind::Gpu { spec } => JobSpec::Gpu { source, spec: *spec },
            PointKind::Scenario { backend, format, partition, kind, hw, gpu, hbm, .. } => {
                JobSpec::Scenario {
                    source,
                    backend: *backend,
                    format: *format,
                    partition: *partition,
                    kind: *kind,
                    hw: hw.as_ref().clone(),
                    gpu: *gpu,
                    hbm: *hbm,
                }
            }
        }
    }

    /// The Table I matrix name.
    pub fn matrix_name(&self) -> &'static str {
        suite::entry_by_id(self.id).map(|e| e.name).unwrap_or("?")
    }
}

/// Removes points whose job key already appeared earlier, preserving order
/// — duplicate axis values (`--scales 8,8`) or overrides that resolve to
/// the same machine must not run (or render) twice.
pub fn dedup_points(points: Vec<SweepPoint>) -> Vec<SweepPoint> {
    let mut seen = std::collections::HashSet::new();
    points.into_iter().filter(|p| seen.insert(p.job().key())).collect()
}

/// The contiguous slice of `total` grid points that shard `k` of `n` owns:
/// `total*k/n .. total*(k+1)/n`. For every `n ≥ 1` the shards are disjoint,
/// their union is `0..total`, sizes differ by at most one, and slices are
/// contiguous — so concatenating the shard outputs in shard order
/// reproduces the unsharded row order exactly.
///
/// # Panics
/// If `k >= n` or `n == 0`.
pub fn shard_range(total: usize, k: usize, n: usize) -> std::ops::Range<usize> {
    assert!(n > 0, "shard count must be positive");
    assert!(k < n, "shard index {k} out of range for {n} shards");
    (total * k / n)..(total * (k + 1) / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> SweepBase {
        SweepBase {
            hw_name: "tiny".into(),
            hw: HwConfig::tiny(),
            scale: 256,
            ..SweepBase::default()
        }
    }

    #[test]
    fn empty_spec_is_empty_and_one_axis_is_not() {
        assert!(SweepSpec::default().is_empty());
        let mut s = SweepSpec::default();
        s.set("ids", "1").unwrap();
        assert!(!s.is_empty());
    }

    #[test]
    fn set_parses_every_axis() {
        let mut s = SweepSpec::default();
        s.set("ids", "1, 2,3").unwrap();
        s.set("scales", "8,16").unwrap();
        s.set("kinds", "naive,proposed").unwrap();
        s.set("hw", "scaled,hbm").unwrap();
        s.set("cubes", "1,2,4").unwrap();
        s.set("l1-sets", "16,32").unwrap();
        s.set("l2-sets", "1024").unwrap();
        s.set("energy-scale", "0.5,1.0").unwrap();
        s.set("gpu", "true").unwrap();
        assert_eq!(s.ids, vec![1, 2, 3]);
        assert_eq!(s.scales, vec![8, 16]);
        assert_eq!(s.kinds, vec![MapKind::Naive, MapKind::Proposed]);
        assert_eq!(s.hw.len(), 2);
        assert_eq!(s.hw[1].1, HwConfig::hbm_like());
        assert_eq!(s.cubes, vec![1, 2, 4]);
        assert!(s.gpu);
    }

    #[test]
    fn set_rejects_bad_values() {
        let mut s = SweepSpec::default();
        assert!(s.set("ids", "99").is_err(), "id 99 is not in Table I");
        assert!(s.set("scales", "0").is_err(), "scale must be positive");
        assert!(s.set("kinds", "quantum").is_err());
        assert!(s.set("hw", "warp-drive").is_err());
        assert!(s.set("energy-scale", "-1").is_err());
        assert!(s.set("warp", "9").is_err(), "unknown keys are errors");
    }

    #[test]
    fn ids_all_expands_to_the_suite() {
        let mut s = SweepSpec::default();
        s.set("ids", "all").unwrap();
        assert_eq!(s.ids.len(), suite::entries().len());
    }

    #[test]
    fn spec_text_round_trips_and_reports_line_numbers() {
        let text = "# a 2x2 grid\nids = 1,2\n\nscales = 8, 16  # inline comment\n";
        let s = SweepSpec::from_spec_text(text).unwrap();
        assert_eq!(s.ids, vec![1, 2]);
        assert_eq!(s.scales, vec![8, 16]);
        let err = SweepSpec::from_spec_text("ids = 1\nbogus line\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = SweepSpec::from_spec_text("\n\nids = zebra\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn enumeration_is_deterministic() {
        let mut s = SweepSpec::default();
        s.set("ids", "1,2").unwrap();
        s.set("kinds", "naive,proposed").unwrap();
        s.set("cubes", "1,2").unwrap();
        let base = quick_base();
        let a = s.points(&base);
        let b = s.points(&base);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let keys: Vec<_> = a.iter().map(|p| p.job().key()).collect();
        let keys2: Vec<_> = b.iter().map(|p| p.job().key()).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn enumeration_dedups_duplicate_axis_values() {
        let mut s = SweepSpec::default();
        s.set("ids", "1,1").unwrap();
        s.set("scales", "256,256").unwrap();
        let base = quick_base();
        assert_eq!(s.points(&base).len(), 1);
        // A cube override equal to the variant's own cube count collapses too.
        let mut s = SweepSpec::default();
        s.set("ids", "1").unwrap();
        s.set("hw", "tiny").unwrap();
        s.set("cubes", &format!("{}", HwConfig::tiny().shape.cubes)).unwrap();
        let with_override = s.points(&base);
        s.cubes.clear();
        assert_eq!(with_override, s.points(&base));
    }

    #[test]
    fn empty_axes_fall_back_to_the_base() {
        let mut s = SweepSpec::default();
        s.set("ids", "3").unwrap();
        let base = quick_base();
        let points = s.points(&base);
        assert_eq!(points.len(), 1);
        let SweepPoint { id, scale, kind: PointKind::Sim { kind, hw_name, hw, .. } } = &points[0]
        else {
            panic!("expected a sim point")
        };
        assert_eq!((*id, *scale), (3, 256));
        assert_eq!(*kind, MapKind::Proposed);
        assert_eq!(hw_name, "tiny");
        assert_eq!(**hw, HwConfig::tiny());
    }

    #[test]
    fn gpu_axis_appends_one_baseline_per_matrix_scale() {
        let mut s = SweepSpec::default();
        s.set("ids", "1,2").unwrap();
        s.set("kinds", "naive,proposed").unwrap();
        s.set("gpu", "true").unwrap();
        let points = s.points(&quick_base());
        assert_eq!(points.len(), 2 * 2 + 2);
        let gpus: Vec<_> =
            points.iter().filter(|p| matches!(p.kind, PointKind::Gpu { .. })).collect();
        assert_eq!(gpus.len(), 2);
        assert!(
            points[points.len() - 2..].iter().all(|p| matches!(p.kind, PointKind::Gpu { .. })),
            "GPU baselines enumerate last"
        );
    }

    #[test]
    fn energy_scale_axis_changes_job_keys_but_identity_does_not() {
        let mut s = SweepSpec::default();
        s.set("ids", "1").unwrap();
        s.set("energy-scale", "1.0,0.5").unwrap();
        let points = s.points(&quick_base());
        assert_eq!(points.len(), 2);
        assert_ne!(points[0].job().key(), points[1].job().key());
        // The 1.0 point must key identically to not sweeping energy at all.
        let mut plain = SweepSpec::default();
        plain.set("ids", "1").unwrap();
        assert_eq!(points[0].job().key(), plain.points(&quick_base())[0].job().key());
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for total in 0..64 {
            for n in 1..10 {
                let mut covered = Vec::new();
                let mut sizes = Vec::new();
                for k in 0..n {
                    let r = shard_range(total, k, n);
                    sizes.push(r.len());
                    covered.extend(r);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>(), "total={total} n={n}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: total={total} n={n} sizes={sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        shard_range(10, 3, 3);
    }

    #[test]
    fn scenario_axes_parse_and_reject_bad_values() {
        let mut s = SweepSpec::default();
        s.set("backends", "spacea, gpu,hbm").unwrap();
        s.set("formats", "csr,sell").unwrap();
        s.set("partitions", "row,nnz").unwrap();
        assert_eq!(s.backends, vec![BackendKind::Spacea, BackendKind::Gpu, BackendKind::Hbm]);
        assert_eq!(s.formats, vec![FormatKind::Csr, FormatKind::Sell]);
        assert_eq!(s.partitions, vec![Partition::RowSplit, Partition::NnzSplit]);
        s.set("backends", "all").unwrap();
        assert_eq!(s.backends, BackendKind::ALL.to_vec());
        s.set("formats", "all").unwrap();
        assert_eq!(s.formats, FormatKind::ALL.to_vec());
        assert!(s.set("backends", "fpga").is_err());
        assert!(s.set("formats", "ellpack").is_err());
        assert!(s.set("partitions", "diagonal").is_err());
    }

    #[test]
    fn scenario_axes_append_the_full_grid() {
        let mut s = SweepSpec::default();
        s.set("ids", "1,2").unwrap();
        s.set("backends", "spacea,hbm").unwrap();
        s.set("formats", "csr,sell").unwrap();
        s.set("partitions", "row,nnz").unwrap();
        let points = s.points(&quick_base());
        // 2 legacy sim points (one per id) + 2*2*2*2 scenario cells.
        let cells: Vec<_> =
            points.iter().filter(|p| matches!(p.kind, PointKind::Scenario { .. })).collect();
        assert_eq!(cells.len(), 16);
        assert_eq!(points.len(), 2 + 16);
        let keys: std::collections::HashSet<_> = points.iter().map(|p| p.job().key()).collect();
        assert_eq!(keys.len(), points.len(), "every cell keys distinctly");
    }

    #[test]
    fn partial_scenario_axes_default_to_the_canonical_cell() {
        let mut s = SweepSpec::default();
        s.set("ids", "1").unwrap();
        s.set("backends", "hbm").unwrap();
        let points = s.points(&quick_base());
        let cell = points
            .iter()
            .find_map(|p| match &p.kind {
                PointKind::Scenario { backend, format, partition, .. } => {
                    Some((*backend, *format, *partition))
                }
                _ => None,
            })
            .expect("a scenario cell must enumerate");
        assert_eq!(cell, (BackendKind::Hbm, FormatKind::Csr, Partition::RowSplit));
    }

    #[test]
    fn no_scenario_axes_means_no_scenario_points() {
        let mut s = SweepSpec::default();
        s.set("ids", "1,2").unwrap();
        s.set("kinds", "naive,proposed").unwrap();
        s.set("gpu", "true").unwrap();
        let points = s.points(&quick_base());
        assert!(
            points.iter().all(|p| !matches!(p.kind, PointKind::Scenario { .. })),
            "legacy grids must enumerate byte-identically to before the scenario axes"
        );
    }

    #[test]
    fn point_labels_and_names() {
        let mut s = SweepSpec::default();
        s.set("ids", "13").unwrap();
        let points = s.points(&quick_base());
        assert_eq!(points[0].matrix_name(), "Stanford");
    }
}
