//! Job descriptions and their content-hash keys.

use spacea_arch::HwConfig;
use spacea_backend::{BackendKind, HbmSpec, Partition};
use spacea_gpu::spec::TitanXpSpec;
use spacea_graph::workloads::CaseStudyGraph;
use spacea_mapping::MapKind;
use spacea_matrix::formats::FormatKind;
use spacea_matrix::suite;
use spacea_matrix::Csr;
use spacea_model::EnergyParams;

/// Which SpMV operand a case-study graph is turned into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphOperand {
    /// The raw adjacency matrix (iteration-count and CPU-baseline input).
    Adjacency,
    /// Column-normalized transpose — the PageRank iteration operand.
    PageRank,
    /// Plain transpose — the SSSP (Bellman-Ford sweep) operand.
    Transpose,
}

impl GraphOperand {
    fn tag(&self) -> u8 {
        match self {
            GraphOperand::Adjacency => 2,
            GraphOperand::PageRank => 0,
            GraphOperand::Transpose => 1,
        }
    }
}

/// Where a job's matrix comes from. Sources are cheap identifiers; the
/// matrix itself is generated (and memoized in-process) by [`crate::JobCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixSource {
    /// A Table I suite matrix at a down-scale factor.
    Suite {
        /// Table I id (1–15).
        id: u8,
        /// Down-scale factor (rows and nnz divided by this).
        scale: usize,
    },
    /// A Table III case-study graph, reduced to an SpMV operand.
    Graph {
        /// Which graph.
        graph: CaseStudyGraph,
        /// Graph down-scale factor.
        scale: usize,
        /// Which operand matrix to derive from it.
        operand: GraphOperand,
    },
}

impl MatrixSource {
    /// Checks that this source names a generatable matrix, without
    /// generating it. [`MatrixSource::generate`] panics on an unknown
    /// Table I id (a programming error in the hard-coded experiment
    /// enumerations), so user-supplied sources — sweep flags, spec files —
    /// go through here first and fail as a structured job error instead.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MatrixSource::Suite { id, scale } => {
                if suite::entry_by_id(*id).is_none() {
                    return Err(format!("unknown Table I matrix id {id}"));
                }
                if *scale == 0 {
                    return Err("matrix scale must be positive".into());
                }
            }
            MatrixSource::Graph { scale, .. } => {
                if *scale == 0 {
                    return Err("graph scale must be positive".into());
                }
            }
        }
        Ok(())
    }

    /// Generates the matrix this source names (deterministic).
    ///
    /// # Panics
    ///
    /// Panics on a source that fails [`MatrixSource::validate`]; callers
    /// handling untrusted input validate first.
    pub fn generate(&self) -> Csr {
        match self {
            MatrixSource::Suite { id, scale } => {
                // lint:allow(R1) documented panic; validate() screens untrusted ids
                suite::entry_by_id(*id).expect("valid Table I id").generate(*scale)
            }
            MatrixSource::Graph { graph, scale, operand } => {
                let a = graph.generate(*scale);
                match operand {
                    GraphOperand::Adjacency => a,
                    GraphOperand::PageRank => spacea_graph::pr_operand(&a),
                    GraphOperand::Transpose => a.transpose(),
                }
            }
        }
    }

    /// Short display label (`"m3/8"`, `"WK/256:pr"`).
    pub fn label(&self) -> String {
        match self {
            MatrixSource::Suite { id, scale } => format!("m{id}/{scale}"),
            MatrixSource::Graph { graph, scale, operand } => {
                let op = match operand {
                    GraphOperand::Adjacency => "adj",
                    GraphOperand::PageRank => "pr",
                    GraphOperand::Transpose => "t",
                };
                format!("{}/{scale}:{op}", graph.label())
            }
        }
    }

    fn feed(&self, h: &mut Fnv) {
        match self {
            MatrixSource::Suite { id, scale } => {
                h.u8(0);
                h.u8(*id);
                h.usize(*scale);
            }
            MatrixSource::Graph { graph, scale, operand } => {
                h.u8(1);
                h.u8(match graph {
                    CaseStudyGraph::Wiki => 0,
                    CaseStudyGraph::LiveJournal => 1,
                });
                h.usize(*scale);
                h.u8(operand.tag());
            }
        }
    }
}

/// One unit of work the harness can execute and cache.
// Sim carries a full HwConfig inline; job lists are enumerated in the
// hundreds and short-lived, so the size asymmetry is not worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A GPU baseline model run (`simulate_csrmv`) on a matrix.
    Gpu {
        /// The operand matrix.
        source: MatrixSource,
        /// The (iso-area scaled) GPU model parameters.
        spec: TitanXpSpec,
    },
    /// A cycle-level SpaceA simulation of one SpMV.
    Sim {
        /// The operand matrix.
        source: MatrixSource,
        /// Which mapping to use.
        kind: MapKind,
        /// The machine under test.
        hw: HwConfig,
        /// Energy-model parameters. Not read during simulation, but part of
        /// the job identity: the tables derived from this job's activity
        /// counters depend on them, so changing them must invalidate the
        /// cached result's key.
        energy: EnergyParams,
    },
    /// One cell of the backend × format × partitioning scenario matrix,
    /// executed through the `spacea-backend` trait and bitwise-verified
    /// against the CSR reference.
    Scenario {
        /// The operand matrix.
        source: MatrixSource,
        /// Which execution model runs the cell.
        backend: BackendKind,
        /// Which storage layout the backend executes.
        format: FormatKind,
        /// How the backend shards the matrix.
        partition: Partition,
        /// Which mapping the SpaceA backend uses (part of every scenario
        /// key for axis symmetry; ignored by mapping-free backends).
        kind: MapKind,
        /// The SpaceA machine under test.
        hw: HwConfig,
        /// The GPU model parameters.
        gpu: TitanXpSpec,
        /// The HBM accelerator model parameters.
        hbm: HbmSpec,
    },
}

impl JobSpec {
    /// The matrix source this job operates on.
    pub fn source(&self) -> &MatrixSource {
        match self {
            JobSpec::Gpu { source, .. }
            | JobSpec::Sim { source, .. }
            | JobSpec::Scenario { source, .. } => source,
        }
    }

    /// Short display label for telemetry (`"sim:m3/8:proposed"`).
    pub fn label(&self) -> String {
        match self {
            JobSpec::Gpu { source, .. } => format!("gpu:{}", source.label()),
            JobSpec::Sim { source, kind, .. } => {
                format!("sim:{}:{}", source.label(), kind.label())
            }
            JobSpec::Scenario { source, backend, format, partition, .. } => {
                format!(
                    "scn:{}:{}:{}:{}",
                    source.label(),
                    backend.label(),
                    format.label(),
                    partition.label()
                )
            }
        }
    }

    /// The content hash identifying this job.
    ///
    /// Every field that can influence the result (or its downstream tables)
    /// is folded into an FNV-1a hash; floats contribute their exact IEEE-754
    /// bit patterns. The encoding starts with a format-version tag — bump it
    /// to invalidate all previously persisted results.
    pub fn key(&self) -> JobKey {
        let mut h = Fnv::new();
        h.str("spacea-job-v1");
        match self {
            JobSpec::Gpu { source, spec } => {
                h.u8(1);
                source.feed(&mut h);
                feed_gpu_spec(&mut h, spec);
            }
            JobSpec::Sim { source, kind, hw, energy } => {
                h.u8(2);
                source.feed(&mut h);
                h.u8(match kind {
                    MapKind::Naive => 0,
                    MapKind::Proposed => 1,
                });
                feed_hw(&mut h, hw);
                feed_energy(&mut h, energy);
            }
            JobSpec::Scenario { source, backend, format, partition, kind, hw, gpu, hbm } => {
                h.u8(3);
                source.feed(&mut h);
                h.u8(match backend {
                    BackendKind::Spacea => 0,
                    BackendKind::Gpu => 1,
                    BackendKind::Cpu => 2,
                    BackendKind::Hbm => 3,
                });
                h.u8(match format {
                    FormatKind::Csr => 0,
                    FormatKind::Coo => 1,
                    FormatKind::Bcsr => 2,
                    FormatKind::Sell => 3,
                });
                h.u8(match partition {
                    Partition::RowSplit => 0,
                    Partition::NnzSplit => 1,
                });
                h.u8(match kind {
                    MapKind::Naive => 0,
                    MapKind::Proposed => 1,
                });
                feed_hw(&mut h, hw);
                feed_gpu_spec(&mut h, gpu);
                feed_hbm(&mut h, hbm);
            }
        }
        JobKey(h.finish())
    }
}

/// A job's 64-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u64);

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a, 64-bit: stable across runs and platforms (unlike `std::hash`,
/// whose default hasher is seeded per-process).
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a string (length-prefixed so concatenations can't collide).
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Folds one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    /// Folds a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` (as 64 bits, for cross-platform stability).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Folds an `f64` by exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

// The feed_* functions below enumerate every public field of the hashed
// configuration structs. If a field is added there without being folded in
// here, stale cache entries would be served for configurations that differ
// in the new field; the field-count assertions in the tests guard this.

fn feed_hw(h: &mut Fnv, hw: &HwConfig) {
    let s = &hw.shape;
    h.usize(s.cubes);
    h.usize(s.vaults_per_cube);
    h.usize(s.product_bgs_per_vault);
    h.usize(s.banks_per_bg);
    let t = &hw.timing;
    h.u64(t.t_ras);
    h.u64(t.t_ccd);
    h.u64(t.t_rp);
    h.usize(t.beat_bytes);
    h.usize(t.row_bytes);
    for cam in [&hw.l1_cam, &hw.l2_cam] {
        h.usize(cam.sets);
        h.usize(cam.ways);
        h.usize(cam.way_bytes);
    }
    h.usize(hw.l1_ldq_entries);
    h.usize(hw.l2_ldq_entries);
    h.usize(hw.pe_queue_rows);
    h.usize(hw.update_buffer_rows);
    h.u64(hw.tsv_latency);
    h.usize(hw.tsv_bytes_per_cycle);
    h.u64(hw.noc_hop_latency);
    h.usize(hw.noc_bytes_per_cycle);
    h.u64(hw.serdes_hop_latency);
    h.usize(hw.serdes_bytes_per_cycle);
    h.u64(hw.l_p);
    h.u64(hw.l1_cam_latency);
    h.u64(hw.l2_cam_latency);
    h.u64(hw.fpu_latency);
    h.bool(hw.ldq_dedup);
    // An injected fault changes what the run produces, so it is part of the
    // job identity — but only when one is set, so every fault-free key (the
    // entire pre-existing cache population) is preserved. The watchdog
    // budgets are deliberately NOT hashed: they cannot change a successful
    // result (failures are never cached), so hashing them would only split
    // the cache.
    if !hw.faults.is_empty() {
        h.str("faults");
        feed_opt_u64(h, hw.faults.drop_noc_packet);
        feed_opt_pair(h, hw.faults.delay_noc);
        feed_opt_pair(h, hw.faults.stall_vault.map(|(v, t)| (v as u64, t)));
        feed_opt_u64(h, hw.faults.flip_accum_update);
        h.bool(hw.faults.panic_on_run);
    }
}

fn feed_opt_u64(h: &mut Fnv, v: Option<u64>) {
    match v {
        None => h.u8(0),
        Some(x) => {
            h.u8(1);
            h.u64(x);
        }
    }
}

fn feed_opt_pair(h: &mut Fnv, v: Option<(u64, u64)>) {
    match v {
        None => h.u8(0),
        Some((a, b)) => {
            h.u8(1);
            h.u64(a);
            h.u64(b);
        }
    }
}

fn feed_gpu_spec(h: &mut Fnv, s: &TitanXpSpec) {
    h.f64(s.dram_bw);
    h.f64(s.peak_flops);
    h.usize(s.l2_bytes);
    h.usize(s.l2_ways);
    h.usize(s.line_bytes);
    h.f64(s.idle_power_w);
    h.f64(s.dram_power_w);
    h.f64(s.alu_power_w);
    h.f64(s.die_mm2);
}

fn feed_hbm(h: &mut Fnv, s: &HbmSpec) {
    h.usize(s.channels);
    h.f64(s.channel_bytes_per_cycle);
    h.f64(s.freq_hz);
    h.usize(s.reorder_window);
    h.u64(s.stall_cycles);
}

fn feed_energy(h: &mut Fnv, e: &EnergyParams) {
    h.f64(e.dram_activate_pj);
    h.f64(e.dram_beat_pj);
    h.f64(e.pe_queue_pj);
    h.f64(e.register_file_pj);
    h.f64(e.l1_cam_search_pj);
    h.f64(e.l1_cam_fill_pj);
    h.f64(e.l2_cam_search_pj);
    h.f64(e.l2_cam_fill_pj);
    h.f64(e.l1_ldq_pj);
    h.f64(e.l2_ldq_pj);
    h.f64(e.fpu_op_pj);
    h.f64(e.tsv_pj_per_byte);
    h.f64(e.noc_pj_per_byte_hop);
    h.f64(e.static_mw_per_bank);
    h.f64(e.static_mw_per_bank_group);
    h.f64(e.static_mw_per_vault);
    h.f64(e.static_mw_per_cube);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_job() -> JobSpec {
        JobSpec::Sim {
            source: MatrixSource::Suite { id: 3, scale: 256 },
            kind: MapKind::Proposed,
            hw: HwConfig::tiny(),
            energy: EnergyParams::default(),
        }
    }

    #[test]
    fn key_is_stable() {
        assert_eq!(sim_job().key(), sim_job().key());
    }

    #[test]
    fn key_depends_on_every_identity_field() {
        let base = sim_job().key();
        let mut j = sim_job();
        if let JobSpec::Sim { source, .. } = &mut j {
            *source = MatrixSource::Suite { id: 4, scale: 256 };
        }
        assert_ne!(j.key(), base, "matrix id must change the key");

        let mut j = sim_job();
        if let JobSpec::Sim { source, .. } = &mut j {
            *source = MatrixSource::Suite { id: 3, scale: 128 };
        }
        assert_ne!(j.key(), base, "scale must change the key");

        let mut j = sim_job();
        if let JobSpec::Sim { kind, .. } = &mut j {
            *kind = MapKind::Naive;
        }
        assert_ne!(j.key(), base, "mapping kind must change the key");

        let mut j = sim_job();
        if let JobSpec::Sim { hw, .. } = &mut j {
            hw.tsv_latency += 1;
        }
        assert_ne!(j.key(), base, "hardware config must change the key");

        let mut j = sim_job();
        if let JobSpec::Sim { energy, .. } = &mut j {
            energy.fpu_op_pj += 1.0;
        }
        assert_ne!(j.key(), base, "energy params must change the key");
    }

    #[test]
    fn fault_plan_changes_key_but_watchdog_does_not() {
        let base = sim_job().key();
        let mut j = sim_job();
        if let JobSpec::Sim { hw, .. } = &mut j {
            hw.watchdog.stall_window = Some(123);
            hw.watchdog.max_cycles = Some(9);
        }
        assert_eq!(j.key(), base, "watchdog budgets must not split the cache");
        let mut j = sim_job();
        if let JobSpec::Sim { hw, .. } = &mut j {
            hw.faults.stall_vault = Some((0, 100));
        }
        assert_ne!(j.key(), base, "an injected fault must change the job identity");
    }

    #[test]
    fn sources_validate_untrusted_fields() {
        assert!(MatrixSource::Suite { id: 3, scale: 256 }.validate().is_ok());
        assert!(MatrixSource::Suite { id: 99, scale: 256 }.validate().is_err());
        assert!(MatrixSource::Suite { id: 3, scale: 0 }.validate().is_err());
        let g = MatrixSource::Graph {
            graph: CaseStudyGraph::Wiki,
            scale: 0,
            operand: GraphOperand::PageRank,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn gpu_and_sim_keys_disjoint() {
        let gpu = JobSpec::Gpu {
            source: MatrixSource::Suite { id: 3, scale: 256 },
            spec: TitanXpSpec::default(),
        };
        assert_ne!(gpu.key(), sim_job().key());
    }

    fn scenario_job() -> JobSpec {
        JobSpec::Scenario {
            source: MatrixSource::Suite { id: 3, scale: 256 },
            backend: BackendKind::Hbm,
            format: FormatKind::Sell,
            partition: Partition::RowSplit,
            kind: MapKind::Proposed,
            hw: HwConfig::tiny(),
            gpu: TitanXpSpec::default(),
            hbm: HbmSpec::default(),
        }
    }

    #[test]
    fn scenario_keys_depend_on_every_axis() {
        let base = scenario_job().key();
        assert_eq!(scenario_job().key(), base, "scenario keys are stable");
        assert_ne!(base, sim_job().key(), "scenario and sim keys are disjoint");

        let mut j = scenario_job();
        if let JobSpec::Scenario { backend, .. } = &mut j {
            *backend = BackendKind::Gpu;
        }
        assert_ne!(j.key(), base, "backend must change the key");

        let mut j = scenario_job();
        if let JobSpec::Scenario { format, .. } = &mut j {
            *format = FormatKind::Bcsr;
        }
        assert_ne!(j.key(), base, "format must change the key");

        let mut j = scenario_job();
        if let JobSpec::Scenario { partition, .. } = &mut j {
            *partition = Partition::NnzSplit;
        }
        assert_ne!(j.key(), base, "partition must change the key");

        let mut j = scenario_job();
        if let JobSpec::Scenario { hbm, .. } = &mut j {
            hbm.reorder_window += 1;
        }
        assert_ne!(j.key(), base, "HBM parameters must change the key");
    }

    #[test]
    fn graph_sources_distinguished() {
        let a = MatrixSource::Graph {
            graph: CaseStudyGraph::Wiki,
            scale: 64,
            operand: GraphOperand::PageRank,
        };
        let b = MatrixSource::Graph {
            graph: CaseStudyGraph::Wiki,
            scale: 64,
            operand: GraphOperand::Transpose,
        };
        let mut ha = Fnv::new();
        a.feed(&mut ha);
        let mut hb = Fnv::new();
        b.feed(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }

    #[test]
    fn key_formats_as_hex() {
        let k = JobKey(0xdead_beef);
        assert_eq!(k.to_string(), "00000000deadbeef");
    }
}
