//! A minimal JSON value tree with a writer and parser.
//!
//! The build environment is offline, so there is no serde; the disk cache
//! and run manifest need only a tiny dialect: objects, arrays, strings,
//! booleans, and *unsigned decimal integers*. Floats never appear as JSON
//! numbers — callers store them as IEEE-754 bit patterns (`f64::to_bits`),
//! which round-trip exactly and keep the parser trivial.

use std::fmt::Write as _;

/// A JSON value (the dialect used by the harness).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// An unsigned integer (the only number form this dialect emits).
    U64(u64),
    /// A boolean.
    Bool(bool),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Stores an `f64` as its exact bit pattern.
    pub fn f64_bits(v: f64) -> Json {
        Json::U64(v.to_bits())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, decoding the bit-pattern convention.
    pub fn as_f64_bits(&self) -> Option<f64> {
        self.as_u64().map(f64::from_bits)
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_str(out, s),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text (the harness dialect; rejects floats and negatives).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected '{}' at byte {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("bad number bytes: {e}"))?;
        text.parse::<u64>().map(Json::U64).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the raw input; the
                    // slice holds at least the byte just consumed.
                    let s = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("kind", Json::Str("sim".into())),
            ("bits", Json::f64_bits(-1.5)),
            ("work", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 2.5e-300] {
            let v = Json::f64_bits(x);
            let back = parse(&v.to_text()).unwrap().as_f64_bits().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let v = Json::Str("a\"b\\c\nd\u{1}é".into());
        assert_eq!(parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , true ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("-3").is_err());
    }
}
