//! Per-job timeline artifacts next to the result cache.
//!
//! A sweep run with observation enabled writes one Chrome-trace JSON file
//! per successful sim job under `<cache-dir>/timelines/<job-key>.json`,
//! keyed like the result store so a timeline is found from the same
//! [`JobKey`] that finds the cached result. The files live in their own
//! subdirectory: the result-store GC only considers key-named files in the
//! cache root, so timelines survive cache eviction and can be pruned by
//! hand (`rm -r <cache-dir>/timelines`).
//!
//! # Incremental chunks
//!
//! While a run is in flight, a [`ChunkSink`] appends each completed sampler
//! window to `<cache-dir>/timelines/<job-key>.d/chunk-N.json` — one small
//! file per window, O(gauges) each, instead of rewriting the whole snapshot
//! per window. The `index.json` in the same directory is the commit point:
//! it is replaced by tmp-file + atomic rename after the chunk lands, so it
//! only ever counts fully written chunks. A run killed mid-flight leaves a
//! chunk set that [`TimelineConfig::load_chunks`] replays back into the
//! exact [`Timeline`] the live sampler held (every window records exactly
//! one value per gauge, and [`spacea_obs::Series`] downsampling is a
//! deterministic function of the record stream). The final artifact write
//! removes the chunk directory.

use crate::job::JobKey;
use spacea_arch::{ObserveConfig, SampleFlush};
use spacea_obs::{json, Cycle, MetricKey, Series, Timeline};
use std::path::{Path, PathBuf};

/// Where timeline artifacts go and what an observed run records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineConfig {
    dir: PathBuf,
    /// Sampling cadence and bounds passed to the machine's observed run.
    pub observe: ObserveConfig,
}

impl TimelineConfig {
    /// Artifacts under `<cache_dir>/timelines`, default observation config.
    pub fn new(cache_dir: &Path) -> Self {
        TimelineConfig { dir: cache_dir.join("timelines"), observe: ObserveConfig::default() }
    }

    /// Overrides the sampling cadence; `0` keeps the default.
    pub fn with_every(mut self, every: Cycle) -> Self {
        if every > 0 {
            self.observe.every = every;
        }
        self
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for one job.
    pub fn path_for(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// The incremental chunk directory for one job (`<key>.d`).
    pub fn chunk_dir(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{key}.d"))
    }

    /// Writes one job's timeline as Chrome trace JSON, creating the
    /// directory on first use. The finished artifact supersedes any
    /// incremental chunk set, which is removed on success.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write(&self, key: JobKey, timeline: &Timeline) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(key);
        // Write-then-rename so a concurrent shard never reads a torn file.
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, timeline.to_chrome_trace())?;
        std::fs::rename(&tmp, &path)?;
        let _ = std::fs::remove_dir_all(self.chunk_dir(key));
        Ok(path)
    }

    /// Replays a job's incremental chunk set back into a [`Timeline`]
    /// (series only — duration slices are derived from the event trace at
    /// run end, which a killed run never reached).
    ///
    /// # Errors
    ///
    /// Reports a missing or unparsable index, a chunk the index promises
    /// but that cannot be read, or malformed chunk contents.
    pub fn load_chunks(&self, key: JobKey) -> Result<Timeline, String> {
        let dir = self.chunk_dir(key);
        let text = std::fs::read_to_string(dir.join("index.json"))
            .map_err(|e| format!("no chunk index under {}: {e}", dir.display()))?;
        let index = json::parse(&text)?;
        let field = |name: &str| {
            index.get(name).and_then(|v| v.as_num()).ok_or(format!("index missing {name}"))
        };
        let every = field("every")? as Cycle;
        let capacity = field("capacity")? as usize;
        let chunks = field("chunks")? as usize;
        let mut series: Vec<(MetricKey, Series)> = Vec::new();
        for i in 0..chunks {
            let text = std::fs::read_to_string(dir.join(format!("chunk-{i}.json")))
                .map_err(|e| format!("chunk {i}: {e}"))?;
            let chunk = json::parse(&text)?;
            let cycle = chunk
                .get("cycle")
                .and_then(|v| v.as_num())
                .ok_or(format!("chunk {i} missing cycle"))? as Cycle;
            let samples = chunk
                .get("samples")
                .and_then(|v| v.as_arr())
                .ok_or(format!("chunk {i} missing samples"))?;
            for s in samples {
                let text_field = |name: &str| {
                    s.get(name)
                        .and_then(|v| v.as_str())
                        .ok_or(format!("chunk {i} sample missing {name}"))
                };
                let metric = MetricKey {
                    component: text_field("component")?.into(),
                    vault: s.get("vault").and_then(|v| v.as_num()).map(|v| v as u32),
                    name: text_field("name")?.into(),
                };
                let value = s
                    .get("value")
                    .and_then(|v| v.as_num())
                    .ok_or(format!("chunk {i} sample missing value"))?;
                let ix = match series.iter().position(|(k, _)| *k == metric) {
                    Some(ix) => ix,
                    None => {
                        series.push((metric, Series::new(capacity, every)));
                        series.len() - 1
                    }
                };
                series[ix].1.record(cycle, value);
            }
        }
        Ok(Timeline { series, slices: Vec::new() })
    }
}

/// Streams completed sampler windows to disk as they happen.
///
/// Each [`ChunkSink::append`] writes one `chunk-N.json` and then commits it
/// by atomically replacing `index.json` — a crash between the two leaves
/// the index at the old count and the orphan chunk is simply overwritten by
/// the next run. I/O failures are swallowed: an unwritable snapshot must
/// never fail the job it observes (the final artifact write still reports
/// its own errors).
pub struct ChunkSink {
    dir: PathBuf,
    every: Cycle,
    capacity: usize,
    chunks: usize,
}

impl ChunkSink {
    /// A sink writing under `cfg`'s chunk directory for `key`.
    pub fn new(cfg: &TimelineConfig, key: JobKey) -> Self {
        ChunkSink {
            dir: cfg.chunk_dir(key),
            every: cfg.observe.every,
            capacity: cfg.observe.capacity,
            chunks: 0,
        }
    }

    /// Appends one completed sampler window.
    pub fn append(&mut self, flush: &SampleFlush<'_>) {
        let _ = self.try_append(flush);
    }

    /// How many windows have been committed to the index.
    pub fn chunks_written(&self) -> usize {
        self.chunks
    }

    fn try_append(&mut self, flush: &SampleFlush<'_>) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut body = format!("{{\"cycle\":{},\"samples\":[", flush.cycle);
        for (i, (key, value)) in flush.samples.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("{{\"component\":\"{}\",", json::escape(&key.component)));
            if let Some(v) = key.vault {
                body.push_str(&format!("\"vault\":{v},"));
            }
            body.push_str(&format!(
                "\"name\":\"{}\",\"value\":{}}}",
                json::escape(&key.name),
                json::fmt_num(*value)
            ));
        }
        body.push_str("]}");
        std::fs::write(self.dir.join(format!("chunk-{}.json", self.chunks)), body)?;
        // The index rename is the commit point: it only ever counts chunks
        // that are fully on disk.
        let tmp = self.dir.join(format!(".index.{}.tmp", std::process::id()));
        let index = format!(
            "{{\"every\":{},\"capacity\":{},\"chunks\":{}}}",
            self.every,
            self.capacity,
            self.chunks + 1
        );
        std::fs::write(&tmp, index)?;
        std::fs::rename(&tmp, self.dir.join("index.json"))?;
        self.chunks += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_obs::{MetricKey, Series};

    #[test]
    fn artifacts_are_keyed_like_the_store() {
        let cfg = TimelineConfig::new(Path::new("cache"));
        let key = JobKey(0xabcd);
        assert_eq!(cfg.path_for(key), Path::new("cache/timelines/000000000000abcd.json"));
        assert_eq!(cfg.observe, ObserveConfig::default());
        assert_eq!(cfg.clone().with_every(0).observe.every, ObserveConfig::default().every);
        assert_eq!(cfg.with_every(512).observe.every, 512);
    }

    #[test]
    fn write_round_trips_through_the_validator() {
        let dir = std::env::temp_dir().join(format!("spacea-timeline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TimelineConfig::new(&dir);
        let mut series = Series::new(8, 10);
        series.record(0, 1.0);
        let timeline = Timeline {
            series: vec![(MetricKey::vault("ldq", 0, "l1-occupancy"), series)],
            slices: vec![],
        };
        let path = cfg.write(JobKey(7), &timeline).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = spacea_obs::json::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.counter_events, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_sink_replays_exactly_and_final_write_clears_chunks() {
        let dir = std::env::temp_dir().join(format!("spacea-chunks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TimelineConfig::new(&dir).with_every(64);
        let key = JobKey(0x55);
        let mut sink = ChunkSink::new(&cfg, key);
        let k1 = MetricKey::vault("ldq", 0, "occupancy");
        let k2 = MetricKey::global("noc", "utilization");
        let mut live1 = Series::new(cfg.observe.capacity, cfg.observe.every);
        let mut live2 = live1.clone();
        for w in 0..5u64 {
            let cycle = w * cfg.observe.every;
            let (v1, v2) = (w as f64 * 1.5, 100.25 - w as f64);
            live1.record(cycle, v1);
            live2.record(cycle, v2);
            let samples = vec![(&k1, v1), (&k2, v2)];
            sink.append(&SampleFlush { cycle, samples: &samples });
        }
        assert_eq!(sink.chunks_written(), 5);
        let replayed = cfg.load_chunks(key).unwrap();
        assert_eq!(replayed.series, vec![(k1, live1), (k2, live2)]);
        // A torn chunk past the committed index count is simply ignored.
        std::fs::write(cfg.chunk_dir(key).join("chunk-5.json"), "{torn").unwrap();
        assert_eq!(cfg.load_chunks(key).unwrap().series.len(), 2);
        // The final artifact write supersedes the chunk set.
        cfg.write(key, &replayed).unwrap();
        assert!(!cfg.chunk_dir(key).exists());
        assert!(cfg.load_chunks(key).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
