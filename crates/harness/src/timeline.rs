//! Per-job timeline artifacts next to the result cache.
//!
//! A sweep run with observation enabled writes one Chrome-trace JSON file
//! per successful sim job under `<cache-dir>/timelines/<job-key>.json`,
//! keyed like the result store so a timeline is found from the same
//! [`JobKey`] that finds the cached result. The files live in their own
//! subdirectory: the result-store GC only considers key-named files in the
//! cache root, so timelines survive cache eviction and can be pruned by
//! hand (`rm -r <cache-dir>/timelines`).

use crate::job::JobKey;
use spacea_arch::ObserveConfig;
use spacea_obs::{Cycle, Timeline};
use std::path::{Path, PathBuf};

/// Where timeline artifacts go and what an observed run records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineConfig {
    dir: PathBuf,
    /// Sampling cadence and bounds passed to the machine's observed run.
    pub observe: ObserveConfig,
}

impl TimelineConfig {
    /// Artifacts under `<cache_dir>/timelines`, default observation config.
    pub fn new(cache_dir: &Path) -> Self {
        TimelineConfig { dir: cache_dir.join("timelines"), observe: ObserveConfig::default() }
    }

    /// Overrides the sampling cadence; `0` keeps the default.
    pub fn with_every(mut self, every: Cycle) -> Self {
        if every > 0 {
            self.observe.every = every;
        }
        self
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for one job.
    pub fn path_for(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Writes one job's timeline as Chrome trace JSON, creating the
    /// directory on first use.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write(&self, key: JobKey, timeline: &Timeline) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(key);
        // Write-then-rename so a concurrent shard never reads a torn file.
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, timeline.to_chrome_trace())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacea_obs::{MetricKey, Series};

    #[test]
    fn artifacts_are_keyed_like_the_store() {
        let cfg = TimelineConfig::new(Path::new("cache"));
        let key = JobKey(0xabcd);
        assert_eq!(cfg.path_for(key), Path::new("cache/timelines/000000000000abcd.json"));
        assert_eq!(cfg.observe, ObserveConfig::default());
        assert_eq!(cfg.clone().with_every(0).observe.every, ObserveConfig::default().every);
        assert_eq!(cfg.with_every(512).observe.every, 512);
    }

    #[test]
    fn write_round_trips_through_the_validator() {
        let dir = std::env::temp_dir().join(format!("spacea-timeline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TimelineConfig::new(&dir);
        let mut series = Series::new(8, 10);
        series.record(0, 1.0);
        let timeline = Timeline {
            series: vec![(MetricKey::vault("ldq", 0, "l1-occupancy"), series)],
            slices: vec![],
        };
        let path = cfg.write(JobKey(7), &timeline).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = spacea_obs::json::validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.counter_events, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
