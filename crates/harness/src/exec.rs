//! Job execution: shared in-process caches and the supervised worker pool.
//!
//! Workers never let one bad job take down a sweep: every attempt runs under
//! [`std::panic::catch_unwind`], hangs are cut off by the sim watchdog or an
//! optional per-attempt wall-clock budget, and transient errors are retried
//! with exponential backoff. [`run_jobs_supervised`] always returns one
//! [`JobRecord`] per submitted job — failed jobs carry a
//! [`JobStatus`] explaining what happened instead of a result.

use crate::job::{Fnv, JobSpec, MatrixSource};
use crate::mapstore::{MappingStats, MappingStore};
use crate::store::{CacheOutcome, JobResult, ResultStore, ScenarioRec};
use crate::telemetry::{JobRecord, JobStatus};
use crate::timeline::{ChunkSink, TimelineConfig};
use spacea_arch::{Machine, ObserveConfig, RunSpec, SampleFlush, SimError};
use spacea_backend::hbm::hbm_timeline;
use spacea_backend::{BackendKind, HbmBackend, ScenarioSpec};
use spacea_gpu::simulate_csrmv;
use spacea_mapping::{MachineShape, MapKind, Mapping};
use spacea_matrix::formats::FormatKind;
use spacea_matrix::Csr;
use spacea_obs::Timeline;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Locks a memo mutex, recovering from poisoning: the maps only hold
/// [`OnceLock`] cells (an interrupted init leaves the cell empty and
/// retryable), so a worker that panicked cannot leave torn state behind.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The deterministic input vector used by every SpMV experiment.
///
/// Lives here (not in the experiment config) because it is part of a sim
/// job's semantics: a cached [`crate::JobResult`] is only valid if every
/// run uses the same input.
pub fn input_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
}

type Memo<K, V> = Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>;

/// Shared in-process memoization of the *inputs* to jobs: generated
/// matrices and computed mappings.
///
/// These are not part of the [`ResultStore`] because they are intermediate
/// artifacts, re-derivable and often large; but they must be shared across
/// workers so that two jobs on the same matrix don't generate it twice.
/// Each entry is a [`OnceLock`]: the first worker to need an artifact
/// computes it while later workers block on that entry only (not on the
/// whole map).
///
/// Mapping computation goes through a [`MappingStore`]: with
/// [`JobCtx::with_mapping_dir`], the in-process memo warms from persisted
/// artifacts, so Phase I/II runs once per matrix content *ever*, not once
/// per process.
#[derive(Default)]
pub struct JobCtx {
    matrices: Memo<MatrixSource, Csr>,
    mappings: Memo<(MatrixSource, MapKind, MachineShape), Mapping>,
    format_mappings: Memo<(MatrixSource, FormatKind, MapKind, MachineShape), Mapping>,
    mapstore: MappingStore,
}

impl JobCtx {
    /// An empty context with no mapping persistence.
    pub fn new() -> Self {
        JobCtx::default()
    }

    /// A context whose mappings persist under `dir` (one JSON artifact per
    /// matrix-content × kind × shape key).
    pub fn with_mapping_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        JobCtx { mapstore: MappingStore::with_dir(dir), ..JobCtx::default() }
    }

    /// The mapping cache (serve registers content-addressed matrices
    /// directly against it, bypassing [`MatrixSource`]).
    pub fn mapstore(&self) -> &MappingStore {
        &self.mapstore
    }

    /// How many mappings this context computed versus warmed from disk.
    pub fn mapping_stats(&self) -> MappingStats {
        self.mapstore.stats()
    }

    /// The (memoized) matrix for a source.
    ///
    /// Graph operands are derived from the memoized adjacency matrix, so one
    /// generated graph serves its PageRank operand, its transpose, and the
    /// iteration-count analysis.
    pub fn matrix(&self, source: &MatrixSource) -> Arc<Csr> {
        use crate::job::GraphOperand;
        let cell = Arc::clone(lock(&self.matrices).entry(*source).or_default());
        Arc::clone(cell.get_or_init(|| match source {
            // Adjacency falls through to plain generation below; the two
            // derived operands reuse the memoized adjacency matrix.
            MatrixSource::Graph { graph, scale, operand: GraphOperand::PageRank } => {
                let adjacency = self.matrix(&MatrixSource::Graph {
                    graph: *graph,
                    scale: *scale,
                    operand: GraphOperand::Adjacency,
                });
                Arc::new(spacea_graph::pr_operand(&adjacency))
            }
            MatrixSource::Graph { graph, scale, operand: GraphOperand::Transpose } => {
                let adjacency = self.matrix(&MatrixSource::Graph {
                    graph: *graph,
                    scale: *scale,
                    operand: GraphOperand::Adjacency,
                });
                Arc::new(adjacency.transpose())
            }
            _ => Arc::new(source.generate()),
        }))
    }

    /// The (memoized) mapping of a source's matrix onto a machine shape.
    pub fn mapping(
        &self,
        source: &MatrixSource,
        kind: MapKind,
        shape: MachineShape,
    ) -> Arc<Mapping> {
        let cell = Arc::clone(lock(&self.mappings).entry((*source, kind, shape)).or_default());
        Arc::clone(cell.get_or_init(|| {
            let a = self.matrix(source);
            Arc::new(self.mapstore.get_or_compute(&a, kind, &shape))
        }))
    }

    /// The (memoized) *format-aware* mapping: Phase I/II runs over the
    /// format's stored footprint ([`spacea_matrix::SparseFormat::storage_pattern`])
    /// rather than the logical pattern, so padding-heavy layouts (BCSR
    /// block fill) place the traffic they actually generate. Persists
    /// through the same [`MappingStore`] as plain mappings — the pattern
    /// matrix is content-addressed like any other operand.
    pub fn format_mapping(
        &self,
        source: &MatrixSource,
        format: FormatKind,
        kind: MapKind,
        shape: MachineShape,
    ) -> Arc<Mapping> {
        let cell = Arc::clone(
            lock(&self.format_mappings).entry((*source, format, kind, shape)).or_default(),
        );
        Arc::clone(cell.get_or_init(|| {
            let a = self.matrix(source);
            let pattern = format.build(&a).storage_pattern();
            Arc::new(self.mapstore.get_or_compute(&pattern, kind, &shape))
        }))
    }
}

/// Why one execution attempt produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFailure {
    /// The attempt hung — the sim watchdog tripped (deadlock, livelock, or
    /// cycle budget) or the wall-clock budget expired. Hangs are
    /// deterministic for a fixed job, so the supervisor never retries them.
    Hang {
        /// The watchdog's diagnosis, or the wall-budget message.
        diagnosis: String,
    },
    /// The attempt failed with an error or a panic; possibly transient.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl ExecFailure {
    fn from_sim(e: SimError) -> Self {
        if e.is_hang() {
            ExecFailure::Hang { diagnosis: e.to_string() }
        } else {
            ExecFailure::Error { message: e.to_string() }
        }
    }
}

impl std::fmt::Display for ExecFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecFailure::Hang { diagnosis } => write!(f, "hang: {diagnosis}"),
            ExecFailure::Error { message } => write!(f, "{message}"),
        }
    }
}

/// Executes one job (no cache involvement, no panic guard).
///
/// Untrusted inputs — the matrix source and the hardware config (validated
/// inside [`Machine::run`]) — are checked up front and reported as
/// [`ExecFailure::Error`] rather than panicking the worker.
pub fn execute(spec: &JobSpec, ctx: &JobCtx) -> Result<JobResult, ExecFailure> {
    execute_observed(spec, ctx, None).map(|(result, _)| result)
}

/// [`execute`] with optional gauge observation: with an [`ObserveConfig`],
/// sim jobs run under [`RunSpec::observed`] and return the
/// collected [`Timeline`] alongside the result. GPU model jobs have no
/// event loop to sample and always return `None`. Observation is
/// timing-neutral, so the [`JobResult`] is identical either way — cached
/// results stay valid whether or not the run was observed.
pub fn execute_observed(
    spec: &JobSpec,
    ctx: &JobCtx,
    observe: Option<ObserveConfig>,
) -> Result<(JobResult, Option<Timeline>), ExecFailure> {
    execute_observed_flushed(spec, ctx, observe, None)
}

/// [`execute_observed`] with incremental artifact flushing: when `flush`
/// names a [`TimelineConfig`] and job key, every completed sampler window
/// appends one chunk to `timelines/<key>.d/` through a [`ChunkSink`]
/// (O(gauges) per window; the chunk index commits by atomic rename), so a
/// run killed mid-flight leaves a replayable truncated timeline instead of
/// nothing. The final artifact — with duration slices attached — is still
/// written by the caller from the returned [`Timeline`], which also clears
/// the chunk set.
pub fn execute_observed_flushed(
    spec: &JobSpec,
    ctx: &JobCtx,
    observe: Option<ObserveConfig>,
    flush: Option<(TimelineConfig, crate::job::JobKey)>,
) -> Result<(JobResult, Option<Timeline>), ExecFailure> {
    let source = spec.source();
    source.validate().map_err(|message| ExecFailure::Error { message })?;
    match spec {
        JobSpec::Gpu { source, spec } => {
            let a = ctx.matrix(source);
            Ok((JobResult::Gpu(simulate_csrmv(spec, &a)), None))
        }
        JobSpec::Sim { source, kind, hw, .. } => {
            let a = ctx.matrix(source);
            let mapping = ctx.mapping(source, *kind, hw.shape);
            let x = input_vector(a.cols());
            let machine = Machine::new(hw.clone());
            match observe {
                Some(obs) => {
                    let mut sink = flush.map(|(cfg, key)| ChunkSink::new(&cfg, key));
                    let mut cb = sink.as_mut().map(|s| move |f: &SampleFlush<'_>| s.append(f));
                    let mut spec_run = RunSpec::spmv(&a, &x, &mapping).observed(obs);
                    if let Some(cb) = cb.as_mut() {
                        spec_run = spec_run.flushing(cb);
                    }
                    let out = machine.run(spec_run).map_err(ExecFailure::from_sim)?;
                    Ok((JobResult::Sim(Arc::new(out.report)), out.timeline))
                }
                None => {
                    let out = machine
                        .run(RunSpec::spmv(&a, &x, &mapping))
                        .map_err(ExecFailure::from_sim)?;
                    Ok((JobResult::Sim(Arc::new(out.report)), None))
                }
            }
        }
        JobSpec::Scenario { source, backend, format, partition, kind, hw, gpu, hbm } => {
            let a = ctx.matrix(source);
            let built = format.build(&a);
            let mapping = backend
                .needs_mapping()
                .then(|| ctx.format_mapping(source, *format, *kind, hw.shape));
            let x = input_vector(a.cols());
            let scenario = ScenarioSpec {
                a: &a,
                format: built.as_ref(),
                partition: *partition,
                x: &x,
                mapping: mapping.as_deref(),
            };
            // The HBM backend is run through its detailed entrypoint so an
            // observed job can hand back the per-channel timeline; the other
            // backends have no event stream to sample.
            let (run, tl) = match backend {
                BackendKind::Hbm => {
                    let (run, detail) = HbmBackend { spec: *hbm }
                        .run_detailed(&scenario)
                        .map_err(|message| ExecFailure::Error { message })?;
                    (run, observe.map(|_| hbm_timeline(&detail)))
                }
                _ => {
                    let run = backend
                        .build(hw, gpu, hbm)
                        .run(&scenario)
                        .map_err(|message| ExecFailure::Error { message })?;
                    (run, None)
                }
            };
            // Every cell must reproduce the CSR reference bit for bit; a
            // divergent cell is a failed job (never cached), so any cached
            // ScenarioRec proves its backend × format pair was verified.
            let reference = a.spmv(&x);
            let bitwise_ok = run.y.len() == reference.len()
                && run.y.iter().zip(&reference).all(|(l, r)| l.to_bits() == r.to_bits());
            if !bitwise_ok {
                return Err(ExecFailure::Error {
                    message: format!(
                        "scenario {}: output diverges bitwise from the CSR reference",
                        spec.label()
                    ),
                });
            }
            let mut h = Fnv::new();
            for v in &run.y {
                h.f64(*v);
            }
            Ok((
                JobResult::Scenario(ScenarioRec {
                    cycles: run.cycles,
                    time_s: run.time_s,
                    stream_bytes: run.stream_bytes,
                    effective_bw: run.effective_bw,
                    bytes_per_nnz: run.bytes_per_nnz,
                    reorder_stalls: run.reorder_stalls,
                    y_hash: h.finish(),
                    bitwise_ok: true,
                }),
                tl,
            ))
        }
    }
}

/// [`execute_observed`] behind a panic guard: a panicking job becomes an
/// [`ExecFailure::Error`] instead of unwinding through the worker pool.
fn guarded_execute(
    spec: &JobSpec,
    ctx: &JobCtx,
    observe: Option<ObserveConfig>,
    flush: Option<(TimelineConfig, crate::job::JobKey)>,
) -> Result<(JobResult, Option<Timeline>), ExecFailure> {
    // AssertUnwindSafe: the only state shared across the boundary is the
    // JobCtx memo (poison-tolerant locks over OnceLock cells; an interrupted
    // init leaves the cell empty and retryable) and the panic payload itself.
    match catch_unwind(AssertUnwindSafe(|| execute_observed_flushed(spec, ctx, observe, flush))) {
        Ok(r) => r,
        Err(payload) => Err(ExecFailure::Error {
            message: format!("job panicked: {}", panic_message(payload.as_ref())),
        }),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One execution attempt, optionally bounded by a wall-clock budget.
///
/// With a budget, the job runs on its own (named) thread and the worker
/// waits at most `limit`; on expiry the attempt is reported as a
/// [`ExecFailure::Hang`] and the thread is abandoned (detached) — it keeps
/// the CPU it already holds but can no longer block the sweep.
fn attempt(
    spec: &JobSpec,
    ctx: &Arc<JobCtx>,
    wall_budget: Option<Duration>,
    observe: Option<ObserveConfig>,
    flush: Option<(TimelineConfig, crate::job::JobKey)>,
) -> Result<(JobResult, Option<Timeline>), ExecFailure> {
    let Some(limit) = wall_budget else { return guarded_execute(spec, ctx, observe, flush) };
    let (tx, rx) = mpsc::channel();
    let thread_spec = spec.clone();
    let thread_ctx = Arc::clone(ctx);
    let handle =
        std::thread::Builder::new().name(format!("spacea-job:{}", spec.label())).spawn(move || {
            let _ = tx.send(guarded_execute(&thread_spec, &thread_ctx, observe, flush));
        });
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            return Err(ExecFailure::Error { message: format!("failed to spawn job thread: {e}") })
        }
    };
    match rx.recv_timeout(limit) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(_) => Err(ExecFailure::Hang {
            diagnosis: format!(
                "wall-clock budget of {:.3}s exceeded; attempt abandoned on its detached thread",
                limit.as_secs_f64()
            ),
        }),
    }
}

/// Retry and budget policy for supervised job execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Wall-clock budget per attempt; `None` runs attempts inline on the
    /// worker with no budget (the sim watchdog still bounds simulations).
    pub wall_budget: Option<Duration>,
    /// How many times a failed (not hung) attempt is retried.
    pub max_retries: u32,
    /// Backoff slept before the first retry; doubled for each further one.
    pub backoff: Duration,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy { wall_budget: None, max_retries: 1, backoff: Duration::from_millis(20) }
    }
}

/// Deterministic backoff jitter in `[0.5, 1.5)`, derived from the job key
/// and the attempt number (splitmix64-style bit mixing — no wall-clock
/// randomness, so a given job retries on the same schedule in every
/// process). Cooperating shards sweep disjoint grid ranges, so their
/// concurrently-retrying jobs have different keys and therefore different
/// backoff phases instead of racing in lockstep.
fn jitter_factor(key: u64, attempt: u32) -> f64 {
    let mut z = key ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Top 53 bits give a uniform f64 in [0, 1).
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs attempts under `policy` until one succeeds, the retry budget is
/// spent, or the job hangs (hangs are deterministic: never retried).
fn supervise(
    spec: &JobSpec,
    ctx: &Arc<JobCtx>,
    policy: &SupervisionPolicy,
    observe: Option<ObserveConfig>,
    flush: Option<&TimelineConfig>,
) -> (Option<(JobResult, Option<Timeline>)>, JobStatus) {
    let key = spec.key();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attempt(spec, ctx, policy.wall_budget, observe, flush.map(|c| (c.clone(), key))) {
            Ok(result) => {
                let status =
                    if attempts == 1 { JobStatus::Ok } else { JobStatus::Retried { attempts } };
                return (Some(result), status);
            }
            Err(ExecFailure::Hang { diagnosis }) => {
                return (None, JobStatus::TimedOut { diagnosis });
            }
            Err(ExecFailure::Error { message }) => {
                if attempts > policy.max_retries {
                    return (None, JobStatus::Failed { error: message });
                }
                let base = policy.backoff.saturating_mul(1u32 << (attempts - 1).min(16));
                std::thread::sleep(base.mul_f64(jitter_factor(key.0, attempts)));
            }
        }
    }
}

/// Removes jobs whose key already appeared earlier in the list, preserving
/// order. Experiments share work (fig5 and fig6 need the same sims), so the
/// concatenated job list routinely contains duplicates; deduplicating up
/// front keeps workers from computing the same result twice concurrently.
pub fn dedup_jobs(jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    let mut seen = HashSet::new();
    jobs.into_iter().filter(|j| seen.insert(j.key())).collect()
}

/// What [`run_jobs_supervised`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// One record per submitted job, in input order. Failed jobs are
    /// present with a failure [`JobStatus`], not dropped.
    pub records: Vec<JobRecord>,
    /// Labels of jobs whose worker could not deliver its record (the result
    /// channel closed under it) — the record is still in `records`, this
    /// list flags that the delivery path broke.
    pub abandoned: Vec<String>,
}

/// Runs a job list on `workers` threads with the default
/// [`SupervisionPolicy`], filling `store`.
///
/// Returns one [`JobRecord`] per job **in input order**, regardless of which
/// worker ran what when — combined with results living in the content-keyed
/// store, parallel runs are observationally identical to serial ones.
pub fn run_jobs(
    jobs: &[JobSpec],
    store: &ResultStore,
    ctx: &Arc<JobCtx>,
    workers: usize,
) -> Vec<JobRecord> {
    run_jobs_supervised(jobs, store, ctx, workers, &SupervisionPolicy::default()).records
}

/// [`run_jobs`] with an explicit [`SupervisionPolicy`].
///
/// A panicking, erroring, or hung job never takes the sweep down: its record
/// carries a failure [`JobStatus`] and every other job still runs. Workers
/// that cannot deliver a record (channel closed) park it in a side buffer
/// instead of dropping it; any job that still ends up without a record gets
/// a synthesized failure record so the accounting is always complete.
pub fn run_jobs_supervised(
    jobs: &[JobSpec],
    store: &ResultStore,
    ctx: &Arc<JobCtx>,
    workers: usize,
    policy: &SupervisionPolicy,
) -> RunOutput {
    run_jobs_observed(jobs, store, ctx, workers, policy, None)
}

/// [`run_jobs_supervised`] with per-job timeline artifacts: sim jobs run
/// observed (gauge sampling + trace slices) and each success writes a
/// Chrome-trace JSON next to the cached result (see [`TimelineConfig`]).
/// A cache hit whose artifact is missing re-runs the job observed to
/// regenerate it — observation is timing-neutral and sims deterministic,
/// so the regenerated timeline matches what the original run would have
/// produced, and the cached result is returned untouched.
pub fn run_jobs_observed(
    jobs: &[JobSpec],
    store: &ResultStore,
    ctx: &Arc<JobCtx>,
    workers: usize,
    policy: &SupervisionPolicy,
    timeline: Option<&TimelineConfig>,
) -> RunOutput {
    let workers = workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobRecord)>();
    let stranded: Mutex<Vec<(usize, JobRecord)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let stranded = &stranded;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let record = run_one(i, &jobs[i], store, ctx, policy, timeline);
                if let Err(e) = tx.send((i, record)) {
                    // The receiver is gone. Keep the record instead of
                    // dropping the evidence; the merge below logs it.
                    lock(stranded).push(e.0);
                    break;
                }
            });
        }
        drop(tx);
    });

    let mut ordered: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
    for (i, record) in rx {
        ordered[i] = Some(record);
    }
    let mut abandoned = Vec::new();
    for (i, record) in lock(&stranded).drain(..) {
        abandoned.push(record.label.clone());
        ordered[i] = Some(record);
    }
    let mut records = Vec::with_capacity(jobs.len());
    for (i, slot) in ordered.into_iter().enumerate() {
        records.push(match slot {
            Some(r) => r,
            None => {
                // A worker died without reporting at all (should be
                // impossible — attempts are panic-guarded). Synthesize a
                // failure so the sweep's accounting stays complete.
                let label = jobs[i].label();
                eprintln!("spacea-harness: job {label} abandoned by its worker");
                abandoned.push(label.clone());
                JobRecord {
                    index: i,
                    label,
                    key: jobs[i].key(),
                    outcome: CacheOutcome::Computed,
                    status: JobStatus::Failed {
                        error: "worker abandoned the job without reporting".into(),
                    },
                    wall_ms: 0.0,
                    cycles: None,
                    events: None,
                }
            }
        });
    }
    RunOutput { records, abandoned }
}

/// Writes a collected timeline artifact, logging (not failing) on I/O
/// errors: a missing timeline never costs a sweep its results.
fn write_timeline(cfg: &TimelineConfig, key: crate::job::JobKey, spec: &JobSpec, tl: &Timeline) {
    if let Err(e) = cfg.write(key, tl) {
        eprintln!("spacea-harness: job {}: could not write timeline: {e}", spec.label());
    }
}

fn run_one(
    index: usize,
    spec: &JobSpec,
    store: &ResultStore,
    ctx: &Arc<JobCtx>,
    policy: &SupervisionPolicy,
    timeline: Option<&TimelineConfig>,
) -> JobRecord {
    let key = spec.key();
    let started = Instant::now();
    let observe = timeline.map(|t| t.observe);
    let (result, outcome, status) = match store.lookup(key) {
        Some((result, outcome)) => {
            // A hit with its timeline artifact missing (older sweep, pruned
            // directory): re-run observed purely for the artifact, keeping
            // the cached result authoritative.
            if let Some(cfg) = timeline {
                if matches!(spec, JobSpec::Sim { .. }) && !cfg.path_for(key).exists() {
                    if let (Some((_, Some(tl))), _) =
                        supervise(spec, ctx, policy, observe, timeline)
                    {
                        write_timeline(cfg, key, spec, &tl);
                    }
                }
            }
            (Some(result), outcome, JobStatus::Ok)
        }
        None => {
            let (outcome, status) = supervise(spec, ctx, policy, observe, timeline);
            let result = match outcome {
                Some((r, tl)) => {
                    // Only successes are cached: a failure must be
                    // re-attempted (and its cause visible) on every run
                    // that needs it.
                    store.insert(key, r.clone());
                    if let (Some(cfg), Some(tl)) = (timeline, &tl) {
                        write_timeline(cfg, key, spec, tl);
                    }
                    Some(r)
                }
                None => {
                    let reason = status.failure().unwrap_or("unknown");
                    eprintln!("spacea-harness: job {} {}: {reason}", spec.label(), status.tag());
                    None
                }
            };
            (result, CacheOutcome::Computed, status)
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (cycles, events) = match &result {
        Some(JobResult::Sim(report)) => (Some(report.cycles), Some(report.events_processed)),
        Some(JobResult::Scenario(rec)) => (Some(rec.cycles), None),
        _ => (None, None),
    };
    JobRecord { index, label: spec.label(), key, outcome, status, wall_ms, cycles, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::GraphOperand;
    use spacea_arch::HwConfig;
    use spacea_graph::workloads::CaseStudyGraph;
    use spacea_model::EnergyParams;

    fn quick_sim(id: u8) -> JobSpec {
        JobSpec::Sim {
            source: MatrixSource::Suite { id, scale: 256 },
            kind: MapKind::Proposed,
            hw: HwConfig::tiny(),
            energy: EnergyParams::default(),
        }
    }

    fn quick_scenario(backend: BackendKind, format: FormatKind) -> JobSpec {
        JobSpec::Scenario {
            source: MatrixSource::Suite { id: 1, scale: 256 },
            backend,
            format,
            partition: spacea_backend::Partition::NnzSplit,
            kind: MapKind::Proposed,
            hw: HwConfig::tiny(),
            gpu: spacea_gpu::TitanXpSpec::default(),
            hbm: spacea_backend::HbmSpec::default(),
        }
    }

    #[test]
    fn scenario_cells_execute_verified_and_cache() {
        let ctx = Arc::new(JobCtx::new());
        let store = ResultStore::in_memory();
        let jobs: Vec<JobSpec> = BackendKind::ALL
            .iter()
            .flat_map(|b| FormatKind::ALL.iter().map(|f| quick_scenario(*b, *f)))
            .collect();
        let records = run_jobs(&jobs, &store, &ctx, 4);
        for r in &records {
            assert_eq!(r.status, JobStatus::Ok, "{} failed", r.label);
            assert!(r.cycles.unwrap() > 0, "{}: no cycle count", r.label);
        }
        // Every cell's output hashed identically: all backends reproduce the
        // same bitwise CSR reference on the same operand.
        let mut hashes = HashSet::new();
        for job in &jobs {
            let (result, _) = store.lookup(job.key()).unwrap();
            let JobResult::Scenario(rec) = result else { panic!("wrong result kind") };
            assert!(rec.bitwise_ok);
            assert!(rec.time_s > 0.0);
            hashes.insert(rec.y_hash);
        }
        assert_eq!(hashes.len(), 1, "backends disagree on the output vector");
        // Second pass hits the cache for every cell.
        let records = run_jobs(&jobs, &store, &ctx, 2);
        assert!(records.iter().all(|r| r.outcome == CacheOutcome::MemoryHit));
    }

    #[test]
    fn observed_hbm_scenario_returns_a_registered_timeline() {
        let ctx = JobCtx::new();
        let spec = quick_scenario(BackendKind::Hbm, FormatKind::Sell);
        let (result, tl) = execute_observed(&spec, &ctx, Some(ObserveConfig::default())).unwrap();
        assert!(matches!(result, JobResult::Scenario(_)));
        let tl = tl.expect("observed HBM scenario collects a timeline");
        assert!(!tl.series.is_empty());
        for (key, _) in &tl.series {
            assert!(
                spacea_obs::registry::is_known(&key.component, &key.name),
                "{key:?} not in the metric registry"
            );
        }
    }

    #[test]
    fn format_mapping_is_memoized_per_format() {
        let ctx = JobCtx::new();
        let src = MatrixSource::Suite { id: 1, scale: 256 };
        let a = ctx.format_mapping(&src, FormatKind::Bcsr, MapKind::Proposed, MachineShape::tiny());
        let b = ctx.format_mapping(&src, FormatKind::Bcsr, MapKind::Proposed, MachineShape::tiny());
        assert!(Arc::ptr_eq(&a, &b));
        // BCSR's padded footprint may map differently from CSR's — the memo
        // must keep them distinct either way.
        let c = ctx.format_mapping(&src, FormatKind::Csr, MapKind::Proposed, MachineShape::tiny());
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn ctx_memoizes_matrices_and_mappings() {
        let ctx = JobCtx::new();
        let src = MatrixSource::Suite { id: 1, scale: 256 };
        let a = ctx.matrix(&src);
        let b = ctx.matrix(&src);
        assert!(Arc::ptr_eq(&a, &b));
        let m1 = ctx.mapping(&src, MapKind::Proposed, MachineShape::tiny());
        let m2 = ctx.mapping(&src, MapKind::Proposed, MachineShape::tiny());
        assert!(Arc::ptr_eq(&m1, &m2));
    }

    #[test]
    fn graph_source_executes() {
        let ctx = JobCtx::new();
        let src = MatrixSource::Graph {
            graph: CaseStudyGraph::Wiki,
            scale: 4096,
            operand: GraphOperand::PageRank,
        };
        let a = ctx.matrix(&src);
        assert!(a.rows() > 0);
        assert_eq!(a.rows(), a.cols());
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let jobs = vec![quick_sim(1), quick_sim(2), quick_sim(1), quick_sim(3), quick_sim(2)];
        let deduped = dedup_jobs(jobs);
        let labels: Vec<String> = deduped.iter().map(|j| j.label()).collect();
        assert_eq!(
            labels,
            vec!["sim:m1/256:proposed", "sim:m2/256:proposed", "sim:m3/256:proposed"]
        );
    }

    #[test]
    fn parallel_records_in_input_order_and_store_filled() {
        let jobs: Vec<JobSpec> = (1..=4).map(quick_sim).collect();
        let store = ResultStore::in_memory();
        let ctx = Arc::new(JobCtx::new());
        let records = run_jobs(&jobs, &store, &ctx, 4);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.key, jobs[i].key());
            assert_eq!(r.outcome, CacheOutcome::Computed);
            assert_eq!(r.status, JobStatus::Ok);
            assert!(r.cycles.unwrap() > 0);
        }
        assert_eq!(store.len(), 4);
        // Second pass: everything hits.
        let records = run_jobs(&jobs, &store, &ctx, 2);
        assert!(records.iter().all(|r| r.outcome == CacheOutcome::MemoryHit));
    }

    #[test]
    fn invalid_source_is_a_failed_record_not_a_crash() {
        let mut jobs = vec![quick_sim(1)];
        if let JobSpec::Sim { source, .. } = &mut jobs[0] {
            *source = MatrixSource::Suite { id: 99, scale: 256 };
        }
        let store = ResultStore::in_memory();
        let records = run_jobs(&jobs, &store, &Arc::new(JobCtx::new()), 1);
        assert_eq!(records[0].status.tag(), "failed");
        assert!(records[0].status.failure().unwrap().contains("99"), "{:?}", records[0].status);
        assert!(store.is_empty(), "failures must never be cached");
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let jobs: Vec<JobSpec> = (1..=6).map(quick_sim).collect();
        let serial_store = ResultStore::in_memory();
        run_jobs(&jobs, &serial_store, &Arc::new(JobCtx::new()), 1);
        let parallel_store = ResultStore::in_memory();
        run_jobs(&jobs, &parallel_store, &Arc::new(JobCtx::new()), 4);
        for job in &jobs {
            let (a, _) = serial_store.lookup(job.key()).unwrap();
            let (b, _) = parallel_store.lookup(job.key()).unwrap();
            assert_eq!(a, b, "parallel result differs for {}", job.label());
        }
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            for attempt in 1..=5u32 {
                let a = jitter_factor(key, attempt);
                let b = jitter_factor(key, attempt);
                assert_eq!(a, b, "same (key, attempt) must jitter identically");
                assert!((0.5..1.5).contains(&a), "factor {a} out of range");
            }
        }
        // Distinct keys and distinct attempts should not all collapse onto
        // one factor — that would defeat the point of jitter.
        let across_keys: Vec<f64> = (0..8).map(|k| jitter_factor(k, 1)).collect();
        assert!(across_keys.windows(2).any(|w| w[0] != w[1]));
        let across_attempts: Vec<f64> = (1..=8).map(|a| jitter_factor(42, a)).collect();
        assert!(across_attempts.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn observed_runs_write_artifacts_and_backfill_cache_hits() {
        let dir = std::env::temp_dir().join(format!("spacea-exec-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TimelineConfig::new(&dir);
        let jobs = vec![quick_sim(1), quick_sim(2)];
        let store = ResultStore::in_memory();
        let ctx = Arc::new(JobCtx::new());
        let policy = SupervisionPolicy::default();
        let out = run_jobs_observed(&jobs, &store, &ctx, 2, &policy, Some(&cfg));
        assert!(out.records.iter().all(|r| r.status == JobStatus::Ok));
        for job in &jobs {
            let path = cfg.path_for(job.key());
            let text = std::fs::read_to_string(&path).unwrap();
            let summary = spacea_obs::json::validate_chrome_trace(&text).unwrap();
            assert!(summary.counter_events > 0, "{}: no counter events", job.label());
        }
        // A cache hit with its artifact missing regenerates it without
        // disturbing the cached result.
        let key = jobs[0].key();
        let (cached, _) = store.lookup(key).unwrap();
        std::fs::remove_file(cfg.path_for(key)).unwrap();
        let out = run_jobs_observed(&jobs, &store, &ctx, 1, &policy, Some(&cfg));
        assert!(out.records.iter().all(|r| r.outcome == CacheOutcome::MemoryHit));
        assert!(cfg.path_for(key).exists(), "missing artifact not regenerated");
        let (after, _) = store.lookup(key).unwrap();
        assert_eq!(cached, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_flush_leaves_a_valid_artifact_without_the_final_write() {
        let dir = std::env::temp_dir().join(format!("spacea-exec-flush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A small sampling window so several flush boundaries fire during
        // even the tiny smoke simulation.
        let cfg = TimelineConfig::new(&dir).with_every(64);
        let spec = quick_sim(1);
        let key = spec.key();
        let ctx = JobCtx::new();
        let (result, timeline) =
            execute_observed_flushed(&spec, &ctx, Some(cfg.observe), Some((cfg.clone(), key)))
                .unwrap();
        assert!(matches!(result, JobResult::Sim(_)));
        let live = timeline.expect("observed run collects a timeline");
        // The crash-safety contract: this caller never wrote the final
        // artifact, yet the chunk set on disk replays into exactly the
        // series the live sampler held — minus only the end-of-run
        // snapshot, which no window boundary ever flushed.
        let replayed = cfg.load_chunks(key).expect("chunk set must replay");
        assert!(!replayed.series.is_empty(), "no windows were flushed");
        assert_eq!(replayed.series.len(), live.series.len());
        for (metric, series) in &replayed.series {
            let live_s = live.series(metric).expect("replayed gauge must exist live");
            assert_eq!(
                series.total_count() + 1,
                live_s.total_count(),
                "{metric}: replay must hold every window except the final snapshot"
            );
        }
        // The replay exports like any finished timeline.
        let summary = spacea_obs::json::validate_chrome_trace(&replayed.to_chrome_trace()).unwrap();
        assert!(summary.counter_events > 0, "flushed chunks have no samples");
        // The final artifact write supersedes and clears the chunks.
        cfg.write(key, &live).unwrap();
        assert!(!cfg.chunk_dir(key).exists(), "final write must clear the chunk set");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
