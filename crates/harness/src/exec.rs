//! Job execution: shared in-process caches and the worker pool.

use crate::job::{JobSpec, MatrixSource};
use crate::store::{CacheOutcome, JobResult, ResultStore};
use crate::telemetry::JobRecord;
use spacea_arch::Machine;
use spacea_gpu::simulate_csrmv;
use spacea_mapping::{MachineShape, MapKind, Mapping};
use spacea_matrix::Csr;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The deterministic input vector used by every SpMV experiment.
///
/// Lives here (not in the experiment config) because it is part of a sim
/// job's semantics: a cached [`crate::JobResult`] is only valid if every
/// run uses the same input.
pub fn input_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
}

type Memo<K, V> = Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>;

/// Shared in-process memoization of the *inputs* to jobs: generated
/// matrices and computed mappings.
///
/// These are not part of the [`ResultStore`] because they are intermediate
/// artifacts, re-derivable and often large; but they must be shared across
/// workers so that two jobs on the same matrix don't generate it twice.
/// Each entry is a [`OnceLock`]: the first worker to need an artifact
/// computes it while later workers block on that entry only (not on the
/// whole map).
#[derive(Default)]
pub struct JobCtx {
    matrices: Memo<MatrixSource, Csr>,
    mappings: Memo<(MatrixSource, MapKind, MachineShape), Mapping>,
}

impl JobCtx {
    /// An empty context.
    pub fn new() -> Self {
        JobCtx::default()
    }

    /// The (memoized) matrix for a source.
    ///
    /// Graph operands are derived from the memoized adjacency matrix, so one
    /// generated graph serves its PageRank operand, its transpose, and the
    /// iteration-count analysis.
    pub fn matrix(&self, source: &MatrixSource) -> Arc<Csr> {
        use crate::job::GraphOperand;
        let cell = Arc::clone(self.matrices.lock().expect("ctx lock").entry(*source).or_default());
        Arc::clone(cell.get_or_init(|| match source {
            MatrixSource::Graph { graph, scale, operand }
                if *operand != GraphOperand::Adjacency =>
            {
                let adjacency = self.matrix(&MatrixSource::Graph {
                    graph: *graph,
                    scale: *scale,
                    operand: GraphOperand::Adjacency,
                });
                match operand {
                    GraphOperand::PageRank => Arc::new(spacea_graph::pr_operand(&adjacency)),
                    GraphOperand::Transpose => Arc::new(adjacency.transpose()),
                    GraphOperand::Adjacency => unreachable!("guarded above"),
                }
            }
            _ => Arc::new(source.generate()),
        }))
    }

    /// The (memoized) mapping of a source's matrix onto a machine shape.
    pub fn mapping(
        &self,
        source: &MatrixSource,
        kind: MapKind,
        shape: MachineShape,
    ) -> Arc<Mapping> {
        let cell = Arc::clone(
            self.mappings.lock().expect("ctx lock").entry((*source, kind, shape)).or_default(),
        );
        Arc::clone(cell.get_or_init(|| {
            let a = self.matrix(source);
            Arc::new(kind.strategy().map(&a, &shape))
        }))
    }
}

/// Executes one job (no cache involvement).
pub fn execute(spec: &JobSpec, ctx: &JobCtx) -> JobResult {
    match spec {
        JobSpec::Gpu { source, spec } => {
            let a = ctx.matrix(source);
            JobResult::Gpu(simulate_csrmv(spec, &a))
        }
        JobSpec::Sim { source, kind, hw, .. } => {
            let a = ctx.matrix(source);
            let mapping = ctx.mapping(source, *kind, hw.shape);
            let x = input_vector(a.cols());
            let report = Machine::new(hw.clone())
                .run_spmv(&a, &x, &mapping)
                .expect("harness simulation must validate");
            JobResult::Sim(Arc::new(report))
        }
    }
}

/// Removes jobs whose key already appeared earlier in the list, preserving
/// order. Experiments share work (fig5 and fig6 need the same sims), so the
/// concatenated job list routinely contains duplicates; deduplicating up
/// front keeps workers from computing the same result twice concurrently.
pub fn dedup_jobs(jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    let mut seen = HashSet::new();
    jobs.into_iter().filter(|j| seen.insert(j.key())).collect()
}

/// Runs a job list on `workers` threads, filling `store`.
///
/// Returns one [`JobRecord`] per job **in input order**, regardless of which
/// worker ran what when — combined with results living in the content-keyed
/// store, parallel runs are observationally identical to serial ones.
pub fn run_jobs(
    jobs: &[JobSpec],
    store: &ResultStore,
    ctx: &JobCtx,
    workers: usize,
) -> Vec<JobRecord> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobRecord)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let record = run_one(i, &jobs[i], store, ctx);
                if tx.send((i, record)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });

    let mut ordered: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
    for (i, record) in rx {
        ordered[i] = Some(record);
    }
    ordered.into_iter().map(|r| r.expect("every job reports exactly once")).collect()
}

fn run_one(index: usize, spec: &JobSpec, store: &ResultStore, ctx: &JobCtx) -> JobRecord {
    let key = spec.key();
    let started = Instant::now();
    let (result, outcome) = match store.lookup(key) {
        Some((result, outcome)) => (result, outcome),
        None => {
            let result = execute(spec, ctx);
            store.insert(key, result.clone());
            (result, CacheOutcome::Computed)
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (cycles, events) = match &result {
        JobResult::Sim(report) => (Some(report.cycles), Some(report.events_processed)),
        JobResult::Gpu(_) => (None, None),
    };
    JobRecord { index, label: spec.label(), key, outcome, wall_ms, cycles, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::GraphOperand;
    use spacea_arch::HwConfig;
    use spacea_graph::workloads::CaseStudyGraph;
    use spacea_model::EnergyParams;

    fn quick_sim(id: u8) -> JobSpec {
        JobSpec::Sim {
            source: MatrixSource::Suite { id, scale: 256 },
            kind: MapKind::Proposed,
            hw: HwConfig::tiny(),
            energy: EnergyParams::default(),
        }
    }

    #[test]
    fn ctx_memoizes_matrices_and_mappings() {
        let ctx = JobCtx::new();
        let src = MatrixSource::Suite { id: 1, scale: 256 };
        let a = ctx.matrix(&src);
        let b = ctx.matrix(&src);
        assert!(Arc::ptr_eq(&a, &b));
        let m1 = ctx.mapping(&src, MapKind::Proposed, MachineShape::tiny());
        let m2 = ctx.mapping(&src, MapKind::Proposed, MachineShape::tiny());
        assert!(Arc::ptr_eq(&m1, &m2));
    }

    #[test]
    fn graph_source_executes() {
        let ctx = JobCtx::new();
        let src = MatrixSource::Graph {
            graph: CaseStudyGraph::Wiki,
            scale: 4096,
            operand: GraphOperand::PageRank,
        };
        let a = ctx.matrix(&src);
        assert!(a.rows() > 0);
        assert_eq!(a.rows(), a.cols());
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let jobs = vec![quick_sim(1), quick_sim(2), quick_sim(1), quick_sim(3), quick_sim(2)];
        let deduped = dedup_jobs(jobs);
        let labels: Vec<String> = deduped.iter().map(|j| j.label()).collect();
        assert_eq!(
            labels,
            vec!["sim:m1/256:proposed", "sim:m2/256:proposed", "sim:m3/256:proposed"]
        );
    }

    #[test]
    fn parallel_records_in_input_order_and_store_filled() {
        let jobs: Vec<JobSpec> = (1..=4).map(quick_sim).collect();
        let store = ResultStore::in_memory();
        let ctx = JobCtx::new();
        let records = run_jobs(&jobs, &store, &ctx, 4);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.key, jobs[i].key());
            assert_eq!(r.outcome, CacheOutcome::Computed);
            assert!(r.cycles.unwrap() > 0);
        }
        assert_eq!(store.len(), 4);
        // Second pass: everything hits.
        let records = run_jobs(&jobs, &store, &ctx, 2);
        assert!(records.iter().all(|r| r.outcome == CacheOutcome::MemoryHit));
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let jobs: Vec<JobSpec> = (1..=6).map(quick_sim).collect();
        let serial_store = ResultStore::in_memory();
        run_jobs(&jobs, &serial_store, &JobCtx::new(), 1);
        let parallel_store = ResultStore::in_memory();
        run_jobs(&jobs, &parallel_store, &JobCtx::new(), 4);
        for job in &jobs {
            let (a, _) = serial_store.lookup(job.key()).unwrap();
            let (b, _) = parallel_store.lookup(job.key()).unwrap();
            assert_eq!(a, b, "parallel result differs for {}", job.label());
        }
    }
}
