//! The shared result store: in-memory map plus optional on-disk JSON cache,
//! with a persisted per-key index (`index.json`) driving cache GC.

use crate::job::JobKey;
use crate::json::{self, Json};
use spacea_arch::SimReport;
use spacea_gpu::GpuRun;
use spacea_model::ActivitySummary;
use spacea_sim::stats::{CamCounters, LdqCounters, SramCounters};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Locks a mutex, recovering the data from a poisoned lock. Every mutation
/// under these locks is a single map/vec operation, so a worker that panicked
/// mid-update can at worst leave a stale counter — never a torn result. The
/// store must keep serving the surviving workers of a supervised sweep.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A finished job's result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// A SpaceA simulation report.
    Sim(Arc<SimReport>),
    /// A GPU baseline model run.
    Gpu(GpuRun),
    /// A scenario-matrix cell run through a `spacea-backend` backend.
    Scenario(ScenarioRec),
}

/// The cached record of one scenario-matrix cell. The backend / format /
/// partition axes live in the job spec (and its key); the record carries
/// only what the backend measured, plus the bitwise verdict against the
/// CSR reference SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRec {
    /// Modelled execution time in cycles of the backend's own clock.
    pub cycles: u64,
    /// Modelled execution time in seconds.
    pub time_s: f64,
    /// Bytes of matrix storage streamed (the format's footprint).
    pub stream_bytes: u64,
    /// Useful-payload throughput, bytes/s.
    pub effective_bw: f64,
    /// The format's storage bytes per logical non-zero.
    pub bytes_per_nnz: f64,
    /// Accumulator reorder-window stalls (HBM backend; 0 elsewhere).
    pub reorder_stalls: u64,
    /// FNV-1a over the output vector's IEEE-754 bits.
    pub y_hash: u64,
    /// Whether the output was bit-identical to `Csr::spmv`. Always true
    /// for cached records — a mismatch fails the job and is never cached —
    /// but persisted so tables can prove the check ran.
    pub bitwise_ok: bool,
}

/// Where a job's result came from when it was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Already in the in-memory map (computed or loaded earlier this run).
    MemoryHit,
    /// Loaded from the on-disk cache.
    DiskHit,
    /// Not cached anywhere; the caller computed it.
    Computed,
}

impl CacheOutcome {
    /// Short JSON/display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::MemoryHit => "hit",
            CacheOutcome::DiskHit => "disk-hit",
            CacheOutcome::Computed => "computed",
        }
    }
}

/// Aggregate cache counters for one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub mem_hits: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that found nothing (the caller computed the result).
    pub misses: u64,
    /// On-disk entries that existed but could not be decoded. Every corrupt
    /// entry is also counted as a miss (the caller recomputes); this counter
    /// makes the damage visible instead of silently swallowed. The offending
    /// paths are in [`ResultStore::corrupt_paths`].
    pub corrupt: u64,
}

impl CacheStats {
    /// Hits (memory + disk) as a fraction of all lookups.
    pub fn hit_fraction(&self) -> f64 {
        let total = self.mem_hits + self.disk_hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        (self.mem_hits + self.disk_hits) as f64 / total as f64
    }
}

/// Per-key bookkeeping persisted as `index.json` next to the cached
/// results: entry size plus creation and last-hit times (unix seconds).
/// [`ResultStore::gc`] reads it to order evictions by recency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Size of the persisted entry in bytes.
    pub bytes: u64,
    /// When the entry was first persisted (unix seconds).
    pub created: u64,
    /// When the entry was last served from disk or (re)written.
    pub last_hit: u64,
}

/// Eviction budgets for [`ResultStore::gc`]. `None` disables that budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Keep the cache directory at or below this many bytes of entries.
    pub max_bytes: Option<u64>,
    /// Evict entries whose last hit is older than this many seconds.
    pub max_age_secs: Option<u64>,
}

/// What one [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Cache entries found on disk.
    pub scanned: usize,
    /// Their total size in bytes.
    pub scanned_bytes: u64,
    /// Entries removed.
    pub evicted: usize,
    /// Bytes removed.
    pub evicted_bytes: u64,
    /// Entries kept.
    pub kept: usize,
    /// Bytes kept.
    pub kept_bytes: u64,
    /// Entries exempt from eviction because this process hit or wrote them.
    pub protected: usize,
    /// Quarantined (corrupt) files removed by this pass. Also counted in
    /// `evicted`/`evicted_bytes`; this breaks out how many were quarantine
    /// sweepings rather than live cache entries.
    pub quarantined: usize,
}

impl GcReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "gc: scanned {} entries ({} B), evicted {} ({} B, {} from quarantine), \
             kept {} ({} B), {} protected",
            self.scanned,
            self.scanned_bytes,
            self.evicted,
            self.evicted_bytes,
            self.quarantined,
            self.kept,
            self.kept_bytes,
            self.protected
        )
    }
}

/// Job results keyed by content hash, shared by every worker and every
/// experiment in a process; optionally persisted to a directory with one
/// JSON file per key plus an `index.json` recording per-entry size and
/// recency for [`ResultStore::gc`].
pub struct ResultStore {
    mem: Mutex<HashMap<u64, JobResult>>,
    disk: Option<PathBuf>,
    index: Mutex<HashMap<u64, IndexEntry>>,
    /// Keys this process hit or wrote — never evicted by `gc` in this run.
    touched: Mutex<HashSet<u64>>,
    corrupt_paths: Mutex<Vec<PathBuf>>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

fn now_secs() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

impl ResultStore {
    /// A store with no disk persistence (`--no-cache`).
    pub fn in_memory() -> Self {
        ResultStore {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            index: Mutex::new(HashMap::new()),
            touched: Mutex::new(HashSet::new()),
            corrupt_paths: Mutex::new(Vec::new()),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// A store persisting results under `dir` (created if missing). A
    /// pre-existing `index.json` is loaded; a missing or unreadable one is
    /// rebuilt over time from file metadata.
    pub fn with_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut store = ResultStore::in_memory();
        store.index = Mutex::new(load_index(&dir));
        store.disk = Some(dir);
        Ok(store)
    }

    /// The persistence directory, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks up a result, recording a hit or miss in the stats.
    ///
    /// A disk hit is promoted into the in-memory map so later lookups are
    /// memory hits. A corrupt on-disk entry counts as a miss *and* bumps
    /// [`CacheStats::corrupt`], recording the offending path.
    pub fn lookup(&self, key: JobKey) -> Option<(JobResult, CacheOutcome)> {
        if let Some(r) = lock(&self.mem).get(&key.0) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            lock(&self.touched).insert(key.0);
            return Some((r.clone(), CacheOutcome::MemoryHit));
        }
        if let Some(dir) = &self.disk {
            match load_from_disk(dir, key) {
                DiskRead::Hit(r) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    lock(&self.touched).insert(key.0);
                    lock(&self.mem).insert(key.0, r.clone());
                    self.note_hit(key);
                    return Some((r, CacheOutcome::DiskHit));
                }
                DiskRead::Corrupt(reason) => {
                    let path = cache_path(dir, key);
                    match quarantine_entry(dir, key) {
                        Ok(dest) => eprintln!(
                            "spacea-harness: corrupt cache entry {} ({reason}); \
                             quarantined to {} and recomputing",
                            path.display(),
                            dest.display()
                        ),
                        Err(e) => eprintln!(
                            "spacea-harness: corrupt cache entry {} ({reason}); \
                             quarantine failed ({e}); recomputing",
                            path.display()
                        ),
                    }
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    lock(&self.corrupt_paths).push(path);
                    lock(&self.index).remove(&key.0);
                }
                DiskRead::Missing => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a computed result, persisting it if a disk cache is enabled.
    ///
    /// Disk write failures are reported on stderr and otherwise ignored: the
    /// cache is an accelerator, not a correctness dependency.
    pub fn insert(&self, key: JobKey, result: JobResult) {
        lock(&self.touched).insert(key.0);
        if let Some(dir) = &self.disk {
            match save_to_disk(dir, key, &result) {
                Ok(bytes) => {
                    let now = now_secs();
                    let mut index = lock(&self.index);
                    let created = index.get(&key.0).map(|e| e.created).unwrap_or(now);
                    index.insert(key.0, IndexEntry { bytes, created, last_hit: now });
                    drop(index);
                    let _ = self.persist_index();
                }
                Err(e) => eprintln!("spacea-harness: failed to persist job {key}: {e}"),
            }
        }
        lock(&self.mem).insert(key.0, result);
    }

    fn note_hit(&self, key: JobKey) {
        let now = now_secs();
        let mut index = lock(&self.index);
        let entry = index.entry(key.0).or_insert(IndexEntry {
            bytes: self
                .disk
                .as_ref()
                .and_then(|d| std::fs::metadata(cache_path(d, key)).ok())
                .map(|m| m.len())
                .unwrap_or(0),
            created: now,
            last_hit: now,
        });
        entry.last_hit = now;
        drop(index);
        let _ = self.persist_index();
    }

    /// Writes `index.json` (sorted by key, write-then-rename). No-op for
    /// in-memory stores.
    pub fn persist_index(&self) -> std::io::Result<()> {
        let Some(dir) = &self.disk else { return Ok(()) };
        let entries = {
            let index = lock(&self.index);
            let mut entries: Vec<(u64, IndexEntry)> = index.iter().map(|(&k, &e)| (k, e)).collect();
            entries.sort_unstable_by_key(|(k, _)| *k);
            entries
        };
        let rows: Vec<Json> = entries
            .iter()
            .map(|(k, e)| {
                Json::obj(vec![
                    ("key", Json::Str(JobKey(*k).to_string())),
                    ("bytes", Json::U64(e.bytes)),
                    ("created", Json::U64(e.created)),
                    ("last_hit", Json::U64(e.last_hit)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("schema", Json::Str("spacea-cache-index-v1".into())),
            ("entries", Json::Arr(rows)),
        ]);
        let tmp = dir.join(format!(".index.{}.tmp", std::process::id()));
        std::fs::write(&tmp, doc.to_text())?;
        std::fs::rename(&tmp, dir.join(INDEX_FILE))
    }

    /// The current index, sorted by key (tests and doctors).
    pub fn index_snapshot(&self) -> Vec<(JobKey, IndexEntry)> {
        let index = lock(&self.index);
        let mut entries: Vec<(JobKey, IndexEntry)> =
            index.iter().map(|(&k, &e)| (JobKey(k), e)).collect();
        entries.sort_unstable_by_key(|(k, _)| k.0);
        entries
    }

    /// Paths of on-disk entries that failed to decode this run.
    pub fn corrupt_paths(&self) -> Vec<PathBuf> {
        lock(&self.corrupt_paths).clone()
    }

    /// Enforces `policy` on the disk cache: evicts entries past the age
    /// budget, then least-recently-hit entries until the directory fits the
    /// size budget. Eviction stops as soon as the budget is met (never
    /// over-evicts), and entries this process hit or wrote are never removed
    /// — a running sweep cannot lose its own results. In-memory copies are
    /// untouched (they stay valid; gc manages the disk footprint only).
    ///
    /// The index is rewritten to exactly the surviving files, so a gc pass
    /// also repairs a stale or missing `index.json`.
    ///
    /// Files under [`QUARANTINE_DIR`] (corrupt entries moved aside by
    /// [`ResultStore::lookup`]) count against the same budgets: the age pass
    /// removes old ones by file mtime, and the size pass evicts them before
    /// any live entry — corrupt bytes never outcompete real results.
    pub fn gc(&self, policy: &GcPolicy) -> std::io::Result<GcReport> {
        let Some(dir) = self.disk.clone() else { return Ok(GcReport::default()) };
        let now = now_secs();
        // Snapshot the disk contents: (key, bytes, last_hit), recency from
        // the index with file mtime as the fallback for unindexed entries.
        let mut on_disk: Vec<(u64, u64, u64)> = Vec::new();
        {
            let index = lock(&self.index);
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(stem) = name.strip_suffix(".json") else { continue };
                if stem.len() != 16 {
                    continue; // index.json, last-run.json, foreign files
                }
                let Ok(key) = u64::from_str_radix(stem, 16) else { continue };
                let meta = entry.metadata()?;
                let last_hit = index.get(&key).map(|e| e.last_hit).unwrap_or_else(|| {
                    meta.modified()
                        .ok()
                        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                        .map(|d| d.as_secs())
                        .unwrap_or(now)
                });
                on_disk.push((key, meta.len(), last_hit));
            }
        }
        // Deterministic LRU order: oldest hit first, key as the tie-break.
        on_disk.sort_unstable_by_key(|&(key, _, last_hit)| (last_hit, key));
        let touched = lock(&self.touched).clone();

        // Quarantined (corrupt) files live under the same budgets: recency is
        // their file mtime, they are never protected, and the size pass
        // removes them before any live entry.
        let mut quarantined: Vec<(PathBuf, u64, u64)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir.join(QUARANTINE_DIR)) {
            for entry in entries.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let mtime = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                    .map(|d| d.as_secs())
                    .unwrap_or(now);
                quarantined.push((entry.path(), meta.len(), mtime));
            }
        }
        quarantined.sort_unstable_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));

        let mut report = GcReport {
            scanned: on_disk.len() + quarantined.len(),
            scanned_bytes: on_disk.iter().map(|&(_, b, _)| b).sum::<u64>()
                + quarantined.iter().map(|&(_, b, _)| b).sum::<u64>(),
            protected: on_disk.iter().filter(|&&(k, _, _)| touched.contains(&k)).count(),
            ..GcReport::default()
        };
        let mut total = report.scanned_bytes;
        let mut evict: HashSet<u64> = HashSet::new();
        let mut q_evict: HashSet<usize> = HashSet::new();
        if let Some(max_age) = policy.max_age_secs {
            for (i, &(_, bytes, mtime)) in quarantined.iter().enumerate() {
                if now.saturating_sub(mtime) > max_age {
                    q_evict.insert(i);
                    total -= bytes;
                }
            }
            for &(key, bytes, last_hit) in &on_disk {
                if now.saturating_sub(last_hit) > max_age && !touched.contains(&key) {
                    evict.insert(key);
                    total -= bytes;
                }
            }
        }
        if let Some(max_bytes) = policy.max_bytes {
            for (i, &(_, bytes, _)) in quarantined.iter().enumerate() {
                if total <= max_bytes {
                    break;
                }
                if q_evict.contains(&i) {
                    continue;
                }
                q_evict.insert(i);
                total -= bytes;
            }
            for &(key, bytes, _) in &on_disk {
                if total <= max_bytes {
                    break; // budget met: never evict more than needed
                }
                if touched.contains(&key) || evict.contains(&key) {
                    continue;
                }
                evict.insert(key);
                total -= bytes;
            }
        }

        for (i, (path, bytes, _)) in quarantined.iter().enumerate() {
            if q_evict.contains(&i) {
                std::fs::remove_file(path)?;
                report.evicted += 1;
                report.evicted_bytes += bytes;
                report.quarantined += 1;
            } else {
                report.kept += 1;
                report.kept_bytes += bytes;
            }
        }
        for &(key, bytes, _) in &on_disk {
            if evict.contains(&key) {
                std::fs::remove_file(cache_path(&dir, JobKey(key)))?;
                report.evicted += 1;
                report.evicted_bytes += bytes;
            } else {
                report.kept += 1;
                report.kept_bytes += bytes;
            }
        }

        // Rewrite the index to exactly the surviving files.
        {
            let mut index = lock(&self.index);
            let survivors: HashMap<u64, (u64, u64)> = on_disk
                .iter()
                .filter(|(k, _, _)| !evict.contains(k))
                .map(|&(k, b, lh)| (k, (b, lh)))
                .collect();
            index.retain(|k, _| survivors.contains_key(k));
            for (&key, &(bytes, last_hit)) in &survivors {
                let entry =
                    index.entry(key).or_insert(IndexEntry { bytes, created: last_hit, last_hit });
                entry.bytes = bytes;
            }
        }
        self.persist_index()?;
        Ok(report)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Number of results currently held in memory.
    pub fn len(&self) -> usize {
        lock(&self.mem).len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The index file name inside a cache directory.
pub const INDEX_FILE: &str = "index.json";

/// Subdirectory of a cache directory holding corrupt entries moved aside by
/// [`ResultStore::lookup`]. Swept by [`ResultStore::gc`] under the same
/// budgets as live entries (quarantined files are evicted first and are
/// never protected).
pub const QUARANTINE_DIR: &str = "quarantine";

fn cache_path(dir: &Path, key: JobKey) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Moves a corrupt cache entry into `<dir>/quarantine/` so later runs do not
/// keep re-parsing (and re-reporting) the same damaged file, while keeping
/// the bytes around for a post-mortem.
fn quarantine_entry(dir: &Path, key: JobKey) -> std::io::Result<PathBuf> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    let dest = qdir.join(format!("{key}.json"));
    std::fs::rename(cache_path(dir, key), &dest)?;
    Ok(dest)
}

enum DiskRead {
    /// No file for this key.
    Missing,
    /// The file decoded cleanly.
    Hit(JobResult),
    /// The file exists but cannot be decoded.
    Corrupt(String),
}

fn load_from_disk(dir: &Path, key: JobKey) -> DiskRead {
    let Ok(text) = std::fs::read_to_string(cache_path(dir, key)) else {
        return DiskRead::Missing;
    };
    match json::parse(&text).and_then(|v| decode_result(&v)) {
        Ok(r) => DiskRead::Hit(r),
        Err(e) => DiskRead::Corrupt(e),
    }
}

fn save_to_disk(dir: &Path, key: JobKey, result: &JobResult) -> std::io::Result<u64> {
    let path = cache_path(dir, key);
    // Write-then-rename so concurrent readers never see a torn file.
    let tmp = dir.join(format!(".{key}.{}.tmp", std::process::id()));
    let text = encode_result(result).to_text();
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(text.len() as u64)
}

fn load_index(dir: &Path) -> HashMap<u64, IndexEntry> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(dir.join(INDEX_FILE)) else { return out };
    let Ok(doc) = json::parse(&text) else { return out };
    let Some(rows) = doc.get("entries").and_then(Json::as_arr) else { return out };
    for row in rows {
        let Some(key) =
            row.get("key").and_then(Json::as_str).and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            continue;
        };
        let field = |name: &str| row.get(name).and_then(Json::as_u64).unwrap_or(0);
        out.insert(
            key,
            IndexEntry {
                bytes: field("bytes"),
                created: field("created"),
                last_hit: field("last_hit"),
            },
        );
    }
    out
}

// --- serialization -------------------------------------------------------
//
// One JSON object per result. Floats are stored as IEEE-754 bit patterns
// (see `crate::json`), so a rehydrated result is bit-identical to the
// computed one — with one deliberate exception: `SimReport::output` (the
// simulated result vector, ~rows × 8 bytes) is elided, because nothing
// downstream of validation reads it and it dominates the file size. The
// per-PE work vector, which tables do read, is kept.

fn encode_result(r: &JobResult) -> Json {
    match r {
        JobResult::Sim(report) => {
            Json::obj(vec![("kind", Json::Str("sim".into())), ("report", encode_sim(report))])
        }
        JobResult::Gpu(run) => {
            Json::obj(vec![("kind", Json::Str("gpu".into())), ("run", encode_gpu(run))])
        }
        JobResult::Scenario(rec) => {
            Json::obj(vec![("kind", Json::Str("scenario".into())), ("rec", encode_scenario(rec))])
        }
    }
}

fn decode_result(v: &Json) -> Result<JobResult, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("sim") => {
            let report = v.get("report").ok_or("missing 'report'")?;
            Ok(JobResult::Sim(Arc::new(decode_sim(report)?)))
        }
        Some("gpu") => {
            let run = v.get("run").ok_or("missing 'run'")?;
            Ok(JobResult::Gpu(decode_gpu(run)?))
        }
        Some("scenario") => {
            let rec = v.get("rec").ok_or("missing 'rec'")?;
            Ok(JobResult::Scenario(decode_scenario(rec)?))
        }
        other => Err(format!("unknown result kind {other:?}")),
    }
}

fn encode_scenario(r: &ScenarioRec) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(r.cycles)),
        ("time_s", Json::f64_bits(r.time_s)),
        ("stream_bytes", Json::U64(r.stream_bytes)),
        ("effective_bw", Json::f64_bits(r.effective_bw)),
        ("bytes_per_nnz", Json::f64_bits(r.bytes_per_nnz)),
        ("reorder_stalls", Json::U64(r.reorder_stalls)),
        ("y_hash", Json::U64(r.y_hash)),
        ("bitwise_ok", Json::Bool(r.bitwise_ok)),
    ])
}

fn decode_scenario(v: &Json) -> Result<ScenarioRec, String> {
    Ok(ScenarioRec {
        cycles: u64_field(v, "cycles")?,
        time_s: f64_field(v, "time_s")?,
        stream_bytes: u64_field(v, "stream_bytes")?,
        effective_bw: f64_field(v, "effective_bw")?,
        bytes_per_nnz: f64_field(v, "bytes_per_nnz")?,
        reorder_stalls: u64_field(v, "reorder_stalls")?,
        y_hash: u64_field(v, "y_hash")?,
        bitwise_ok: v.get("bitwise_ok").and_then(Json::as_bool).ok_or("missing 'bitwise_ok'")?,
    })
}

fn encode_gpu(r: &GpuRun) -> Json {
    Json::obj(vec![
        ("time_s", Json::f64_bits(r.time_s)),
        ("dram_bytes", Json::U64(r.dram_bytes)),
        ("dram_read_bytes", Json::U64(r.dram_read_bytes)),
        ("dram_read_throughput", Json::f64_bits(r.dram_read_throughput)),
        ("effective_read_throughput", Json::f64_bits(r.effective_read_throughput)),
        ("bw_utilization", Json::f64_bits(r.bw_utilization)),
        ("gflops", Json::f64_bits(r.gflops)),
        ("alu_utilization", Json::f64_bits(r.alu_utilization)),
        ("energy_j", Json::f64_bits(r.energy_j)),
        ("bw_efficiency", Json::f64_bits(r.bw_efficiency)),
        ("x_l2_hit_rate", Json::f64_bits(r.x_l2_hit_rate)),
    ])
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing u64 '{key}'"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64_bits).ok_or_else(|| format!("missing f64 '{key}'"))
}

fn decode_gpu(v: &Json) -> Result<GpuRun, String> {
    Ok(GpuRun {
        time_s: f64_field(v, "time_s")?,
        dram_bytes: u64_field(v, "dram_bytes")?,
        dram_read_bytes: u64_field(v, "dram_read_bytes")?,
        dram_read_throughput: f64_field(v, "dram_read_throughput")?,
        effective_read_throughput: f64_field(v, "effective_read_throughput")?,
        bw_utilization: f64_field(v, "bw_utilization")?,
        gflops: f64_field(v, "gflops")?,
        alu_utilization: f64_field(v, "alu_utilization")?,
        energy_j: f64_field(v, "energy_j")?,
        bw_efficiency: f64_field(v, "bw_efficiency")?,
        x_l2_hit_rate: f64_field(v, "x_l2_hit_rate")?,
    })
}

fn encode_sim(r: &SimReport) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(r.cycles)),
        ("seconds", Json::f64_bits(r.seconds)),
        ("activity", encode_activity(&r.activity)),
        ("l1_hit_rate", Json::f64_bits(r.l1_hit_rate)),
        ("l2_hit_rate", Json::f64_bits(r.l2_hit_rate)),
        ("tsv_bytes", Json::U64(r.tsv_bytes)),
        ("noc_byte_hops", Json::U64(r.noc_byte_hops)),
        ("pe_work", Json::Arr(r.pe_work.iter().map(|&w| Json::U64(w)).collect())),
        ("normalized_workload", Json::f64_bits(r.normalized_workload)),
        ("update_buffer_hit_rate", Json::f64_bits(r.update_buffer_hit_rate)),
        ("pe_busy_fraction", Json::f64_bits(r.pe_busy_fraction)),
        ("matrix_bank_busy_fraction", Json::f64_bits(r.matrix_bank_busy_fraction)),
        ("vector_bank_busy_fraction", Json::f64_bits(r.vector_bank_busy_fraction)),
        ("validated", Json::Bool(r.validated)),
        ("events_scheduled", Json::U64(r.events_scheduled)),
        ("events_processed", Json::U64(r.events_processed)),
    ])
}

fn decode_sim(v: &Json) -> Result<SimReport, String> {
    let pe_work = v
        .get("pe_work")
        .and_then(Json::as_arr)
        .ok_or("missing 'pe_work'")?
        .iter()
        .map(|w| w.as_u64().ok_or_else(|| "bad pe_work entry".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(SimReport {
        cycles: u64_field(v, "cycles")?,
        seconds: f64_field(v, "seconds")?,
        activity: decode_activity(v.get("activity").ok_or("missing 'activity'")?)?,
        l1_hit_rate: f64_field(v, "l1_hit_rate")?,
        l2_hit_rate: f64_field(v, "l2_hit_rate")?,
        tsv_bytes: u64_field(v, "tsv_bytes")?,
        noc_byte_hops: u64_field(v, "noc_byte_hops")?,
        pe_work,
        normalized_workload: f64_field(v, "normalized_workload")?,
        update_buffer_hit_rate: f64_field(v, "update_buffer_hit_rate")?,
        pe_busy_fraction: f64_field(v, "pe_busy_fraction")?,
        matrix_bank_busy_fraction: f64_field(v, "matrix_bank_busy_fraction")?,
        vector_bank_busy_fraction: f64_field(v, "vector_bank_busy_fraction")?,
        output: Vec::new(), // elided on disk; see module comment
        validated: v.get("validated").and_then(Json::as_bool).ok_or("missing 'validated'")?,
        events_scheduled: u64_field(v, "events_scheduled")?,
        events_processed: u64_field(v, "events_processed")?,
    })
}

fn encode_activity(a: &ActivitySummary) -> Json {
    let sram = |c: &SramCounters| {
        Json::obj(vec![("reads", Json::U64(c.reads)), ("writes", Json::U64(c.writes))])
    };
    let cam = |c: &CamCounters| {
        Json::obj(vec![
            ("hits", Json::U64(c.hits)),
            ("misses", Json::U64(c.misses)),
            ("fills", Json::U64(c.fills)),
            ("evictions", Json::U64(c.evictions)),
        ])
    };
    let ldq = |c: &LdqCounters| {
        Json::obj(vec![
            ("new_requests", Json::U64(c.new_requests)),
            ("deduplicated", Json::U64(c.deduplicated)),
            ("completed", Json::U64(c.completed)),
            ("rejected_full", Json::U64(c.rejected_full)),
        ])
    };
    Json::obj(vec![
        ("cycles", Json::U64(a.cycles)),
        ("dram_activates", Json::U64(a.dram_activates)),
        ("dram_read_beats", Json::U64(a.dram_read_beats)),
        ("dram_write_beats", Json::U64(a.dram_write_beats)),
        ("fpu_ops", Json::U64(a.fpu_ops)),
        ("pe_queue", sram(&a.pe_queue)),
        ("register_file", sram(&a.register_file)),
        ("l1_cam", cam(&a.l1_cam)),
        ("l2_cam", cam(&a.l2_cam)),
        ("l1_ldq", ldq(&a.l1_ldq)),
        ("l2_ldq", ldq(&a.l2_ldq)),
        ("tsv_bytes", Json::U64(a.tsv_bytes)),
        ("noc_byte_hops", Json::U64(a.noc_byte_hops)),
    ])
}

fn decode_activity(v: &Json) -> Result<ActivitySummary, String> {
    let sram = |key: &str| -> Result<SramCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(SramCounters { reads: u64_field(c, "reads")?, writes: u64_field(c, "writes")? })
    };
    let cam = |key: &str| -> Result<CamCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(CamCounters {
            hits: u64_field(c, "hits")?,
            misses: u64_field(c, "misses")?,
            fills: u64_field(c, "fills")?,
            evictions: u64_field(c, "evictions")?,
        })
    };
    let ldq = |key: &str| -> Result<LdqCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(LdqCounters {
            new_requests: u64_field(c, "new_requests")?,
            deduplicated: u64_field(c, "deduplicated")?,
            completed: u64_field(c, "completed")?,
            rejected_full: u64_field(c, "rejected_full")?,
        })
    };
    Ok(ActivitySummary {
        cycles: u64_field(v, "cycles")?,
        dram_activates: u64_field(v, "dram_activates")?,
        dram_read_beats: u64_field(v, "dram_read_beats")?,
        dram_write_beats: u64_field(v, "dram_write_beats")?,
        fpu_ops: u64_field(v, "fpu_ops")?,
        pe_queue: sram("pe_queue")?,
        register_file: sram("register_file")?,
        l1_cam: cam("l1_cam")?,
        l2_cam: cam("l2_cam")?,
        l1_ldq: ldq("l1_ldq")?,
        l2_ldq: ldq("l2_ldq")?,
        tsv_bytes: u64_field(v, "tsv_bytes")?,
        noc_byte_hops: u64_field(v, "noc_byte_hops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gpu() -> GpuRun {
        GpuRun {
            time_s: 1.0 / 3.0,
            dram_bytes: 123,
            dram_read_bytes: 100,
            dram_read_throughput: 1e9,
            effective_read_throughput: 0.5e9,
            bw_utilization: 0.27,
            gflops: 1.5,
            alu_utilization: 0.0268,
            energy_j: 0.125,
            bw_efficiency: 0.9,
            x_l2_hit_rate: 0.75,
        }
    }

    #[test]
    fn gpu_round_trips_exactly() {
        let run = sample_gpu();
        let back =
            decode_result(&json::parse(&encode_result(&JobResult::Gpu(run)).to_text()).unwrap())
                .unwrap();
        assert_eq!(back, JobResult::Gpu(run));
    }

    #[test]
    fn scenario_round_trips_exactly() {
        let rec = ScenarioRec {
            cycles: 9001,
            time_s: 2.0e-5 / 3.0,
            stream_bytes: 65_536,
            effective_bw: 345.6e9 / 7.0,
            bytes_per_nnz: 12.75,
            reorder_stalls: 42,
            y_hash: 0xdead_beef_cafe_f00d,
            bitwise_ok: true,
        };
        let back = decode_result(
            &json::parse(&encode_result(&JobResult::Scenario(rec.clone())).to_text()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, JobResult::Scenario(rec));
    }

    #[test]
    fn memory_store_counts_hits_and_misses() {
        let store = ResultStore::in_memory();
        let key = JobKey(42);
        assert!(store.lookup(key).is_none());
        store.insert(key, JobResult::Gpu(sample_gpu()));
        let (_, outcome) = store.lookup(key).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        let stats = store.stats();
        assert_eq!((stats.mem_hits, stats.disk_hits, stats.misses), (1, 0, 1));
        assert!((stats.hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_store_survives_process_restart() {
        let dir = std::env::temp_dir().join(format!("spacea-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = JobKey(7);
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            store.insert(key, JobResult::Gpu(sample_gpu()));
        }
        // A fresh store (fresh memory) must find the entry on disk.
        let store = ResultStore::with_disk(&dir).unwrap();
        let (result, outcome) = store.lookup(key).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(result, JobResult::Gpu(sample_gpu()));
        // Promoted to memory: second lookup is a memory hit.
        assert_eq!(store.lookup(key).unwrap().1, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_counted_miss() {
        let dir = std::env::temp_dir().join(format!("spacea-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::with_disk(&dir).unwrap();
        let key = JobKey(9);
        std::fs::write(dir.join(format!("{key}.json")), "{not json").unwrap();
        assert!(store.lookup(key).is_none());
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.corrupt, 1, "corrupt entries must be counted, not swallowed");
        let paths = store.corrupt_paths();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].ends_with(format!("{key}.json")), "{paths:?}");
        // A plain missing entry is a miss but NOT corrupt.
        assert!(store.lookup(JobKey(10)).is_none());
        assert_eq!(store.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spacea-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry_bytes(dir: &Path, key: JobKey) -> u64 {
        std::fs::metadata(dir.join(format!("{key}.json"))).unwrap().len()
    }

    #[test]
    fn index_round_trips_across_stores() {
        let dir = tmp_dir("index-rt");
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            store.insert(JobKey(1), JobResult::Gpu(sample_gpu()));
            store.insert(JobKey(2), JobResult::Gpu(sample_gpu()));
        }
        let store = ResultStore::with_disk(&dir).unwrap();
        let snap = store.index_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, JobKey(1));
        assert_eq!(snap[0].1.bytes, entry_bytes(&dir, JobKey(1)));
        assert!(snap[0].1.created > 0 && snap[0].1.last_hit >= snap[0].1.created);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_never_evicts_below_the_byte_budget() {
        let dir = tmp_dir("gc-budget");
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            for k in 1..=4u64 {
                store.insert(JobKey(k), JobResult::Gpu(sample_gpu()));
            }
        }
        // Fresh process (nothing touched): all four entries are fair game.
        let store = ResultStore::with_disk(&dir).unwrap();
        let per_entry = entry_bytes(&dir, JobKey(1));
        // Budget for exactly two entries: gc must evict two, not three.
        let budget = 2 * per_entry;
        let report = store.gc(&GcPolicy { max_bytes: Some(budget), max_age_secs: None }).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.evicted, 2, "{report:?}");
        assert_eq!(report.kept, 2);
        assert!(report.kept_bytes <= budget);
        // Survivors still load from a fresh store: the cache round-trips.
        let fresh = ResultStore::with_disk(&dir).unwrap();
        let served: usize = (1..=4u64)
            .filter(|&k| {
                fresh
                    .lookup(JobKey(k))
                    .map(|(r, o)| {
                        assert_eq!(o, CacheOutcome::DiskHit);
                        assert_eq!(r, JobResult::Gpu(sample_gpu()));
                        true
                    })
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(served, 2);
        // Index lists exactly the surviving files.
        assert_eq!(store.index_snapshot().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_spares_entries_touched_this_run() {
        let dir = tmp_dir("gc-touched");
        let store = ResultStore::with_disk(&dir).unwrap();
        store.insert(JobKey(1), JobResult::Gpu(sample_gpu()));
        store.insert(JobKey(2), JobResult::Gpu(sample_gpu()));
        // A zero-byte budget would evict everything — but both entries were
        // written by this process, so they are protected.
        let report = store.gc(&GcPolicy { max_bytes: Some(0), max_age_secs: None }).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(report.protected, 2);
        assert_eq!(report.kept, 2);
        // A fresh process with no touches evicts them all.
        let fresh = ResultStore::with_disk(&dir).unwrap();
        let report = fresh.gc(&GcPolicy { max_bytes: Some(0), max_age_secs: None }).unwrap();
        assert_eq!(report.evicted, 2);
        assert_eq!(fresh.index_snapshot().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_age_budget_uses_index_recency() {
        let dir = tmp_dir("gc-age");
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            store.insert(JobKey(1), JobResult::Gpu(sample_gpu()));
            store.insert(JobKey(2), JobResult::Gpu(sample_gpu()));
        }
        // Backdate entry 1 in the index: last hit in 1970.
        let store = ResultStore::with_disk(&dir).unwrap();
        {
            let mut index = store.index.lock().unwrap();
            index.get_mut(&1).unwrap().last_hit = 1;
        }
        store.persist_index().unwrap();
        let reopened = ResultStore::with_disk(&dir).unwrap();
        let report = reopened.gc(&GcPolicy { max_bytes: None, max_age_secs: Some(3600) }).unwrap();
        assert_eq!(report.evicted, 1, "{report:?}");
        assert!(reopened.lookup(JobKey(1)).is_none());
        assert!(reopened.lookup(JobKey(2)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_without_budgets_is_a_no_op_and_repairs_the_index() {
        let dir = tmp_dir("gc-noop");
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            store.insert(JobKey(1), JobResult::Gpu(sample_gpu()));
        }
        // Lose the index; gc must rebuild it from the directory.
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let store = ResultStore::with_disk(&dir).unwrap();
        let report = store.gc(&GcPolicy::default()).unwrap();
        assert_eq!((report.scanned, report.evicted, report.kept), (1, 0, 1));
        assert_eq!(store.index_snapshot().len(), 1);
        assert!(dir.join(INDEX_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_reparsed() {
        let dir = tmp_dir("quarantine");
        let store = ResultStore::with_disk(&dir).unwrap();
        let key = JobKey(11);
        std::fs::write(cache_path(&dir, key), "{not json").unwrap();
        assert!(store.lookup(key).is_none());
        // The damaged file moved aside...
        assert!(!cache_path(&dir, key).exists());
        assert!(dir.join(QUARANTINE_DIR).join(format!("{key}.json")).exists());
        // ...so the next lookup is a plain miss, not another corrupt parse.
        assert!(store.lookup(key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        // And the slot is usable again.
        store.insert(key, JobResult::Gpu(sample_gpu()));
        assert_eq!(store.lookup(key).unwrap().1, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_byte_budget_sweeps_quarantine_before_live_entries() {
        let dir = tmp_dir("gc-quarantine");
        let store = ResultStore::with_disk(&dir).unwrap();
        store.insert(JobKey(1), JobResult::Gpu(sample_gpu()));
        let bad = JobKey(0x2222);
        std::fs::write(cache_path(&dir, bad), "{not json").unwrap();
        assert!(store.lookup(bad).is_none());
        let qfile = dir.join(QUARANTINE_DIR).join(format!("{bad}.json"));
        assert!(qfile.exists());
        // Byte budget 0: the entry written by this run is protected, but the
        // quarantined file never is — it must go.
        let report = store.gc(&GcPolicy { max_bytes: Some(0), max_age_secs: None }).unwrap();
        assert_eq!(report.quarantined, 1, "{report:?}");
        assert_eq!(report.scanned, 2);
        assert!(!qfile.exists());
        assert!(cache_path(&dir, JobKey(1)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_age_budget_sweeps_old_quarantined_files() {
        let dir = tmp_dir("gc-quarantine-age");
        let store = ResultStore::with_disk(&dir).unwrap();
        let bad = JobKey(0x3333);
        std::fs::write(cache_path(&dir, bad), "{not json").unwrap();
        assert!(store.lookup(bad).is_none());
        let qfile = dir.join(QUARANTINE_DIR).join(format!("{bad}.json"));
        // Backdate the quarantined file two hours; a one-hour age budget
        // must sweep it while leaving a fresh one alone.
        let old = SystemTime::now() - std::time::Duration::from_secs(7200);
        std::fs::File::options()
            .write(true)
            .open(&qfile)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
        let fresh = JobKey(0x4444);
        std::fs::write(cache_path(&dir, fresh), "{not json").unwrap();
        assert!(store.lookup(fresh).is_none());
        let report = store.gc(&GcPolicy { max_bytes: None, max_age_secs: Some(3600) }).unwrap();
        assert_eq!(report.quarantined, 1, "{report:?}");
        assert!(!qfile.exists());
        assert!(dir.join(QUARANTINE_DIR).join(format!("{fresh}.json")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_ignores_foreign_files() {
        let dir = tmp_dir("gc-foreign");
        let store = ResultStore::with_disk(&dir).unwrap();
        std::fs::write(dir.join("last-run.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "keep me").unwrap();
        let report = store.gc(&GcPolicy { max_bytes: Some(0), max_age_secs: Some(0) }).unwrap();
        assert_eq!(report.scanned, 0);
        assert!(dir.join("last-run.json").exists());
        assert!(dir.join("notes.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
