//! The shared result store: in-memory map plus optional on-disk JSON cache.

use crate::job::JobKey;
use crate::json::{self, Json};
use spacea_arch::SimReport;
use spacea_gpu::GpuRun;
use spacea_model::ActivitySummary;
use spacea_sim::stats::{CamCounters, LdqCounters, SramCounters};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A finished job's result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// A SpaceA simulation report.
    Sim(Arc<SimReport>),
    /// A GPU baseline model run.
    Gpu(GpuRun),
}

/// Where a job's result came from when it was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Already in the in-memory map (computed or loaded earlier this run).
    MemoryHit,
    /// Loaded from the on-disk cache.
    DiskHit,
    /// Not cached anywhere; the caller computed it.
    Computed,
}

impl CacheOutcome {
    /// Short JSON/display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::MemoryHit => "hit",
            CacheOutcome::DiskHit => "disk-hit",
            CacheOutcome::Computed => "computed",
        }
    }
}

/// Aggregate cache counters for one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub mem_hits: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that found nothing (the caller computed the result).
    pub misses: u64,
}

impl CacheStats {
    /// Hits (memory + disk) as a fraction of all lookups.
    pub fn hit_fraction(&self) -> f64 {
        let total = self.mem_hits + self.disk_hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        (self.mem_hits + self.disk_hits) as f64 / total as f64
    }
}

/// Job results keyed by content hash, shared by every worker and every
/// experiment in a process; optionally persisted to a directory with one
/// JSON file per key.
pub struct ResultStore {
    mem: Mutex<HashMap<u64, JobResult>>,
    disk: Option<PathBuf>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultStore {
    /// A store with no disk persistence (`--no-cache`).
    pub fn in_memory() -> Self {
        ResultStore {
            mem: Mutex::new(HashMap::new()),
            disk: None,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A store persisting results under `dir` (created if missing).
    pub fn with_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut store = ResultStore::in_memory();
        store.disk = Some(dir);
        Ok(store)
    }

    /// The persistence directory, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks up a result, recording a hit or miss in the stats.
    ///
    /// A disk hit is promoted into the in-memory map so later lookups are
    /// memory hits.
    pub fn lookup(&self, key: JobKey) -> Option<(JobResult, CacheOutcome)> {
        if let Some(r) = self.mem.lock().expect("store lock").get(&key.0) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some((r.clone(), CacheOutcome::MemoryHit));
        }
        if let Some(dir) = &self.disk {
            if let Some(r) = load_from_disk(dir, key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().expect("store lock").insert(key.0, r.clone());
                return Some((r, CacheOutcome::DiskHit));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a computed result, persisting it if a disk cache is enabled.
    ///
    /// Disk write failures are reported on stderr and otherwise ignored: the
    /// cache is an accelerator, not a correctness dependency.
    pub fn insert(&self, key: JobKey, result: JobResult) {
        if let Some(dir) = &self.disk {
            if let Err(e) = save_to_disk(dir, key, &result) {
                eprintln!("spacea-harness: failed to persist job {key}: {e}");
            }
        }
        self.mem.lock().expect("store lock").insert(key.0, result);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of results currently held in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("store lock").len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn cache_path(dir: &Path, key: JobKey) -> PathBuf {
    dir.join(format!("{key}.json"))
}

fn load_from_disk(dir: &Path, key: JobKey) -> Option<JobResult> {
    let text = std::fs::read_to_string(cache_path(dir, key)).ok()?;
    match json::parse(&text).and_then(|v| decode_result(&v)) {
        Ok(r) => Some(r),
        Err(e) => {
            // A corrupt or stale-format entry is a miss, not an error.
            eprintln!("spacea-harness: ignoring unreadable cache entry {key}: {e}");
            None
        }
    }
}

fn save_to_disk(dir: &Path, key: JobKey, result: &JobResult) -> std::io::Result<()> {
    let path = cache_path(dir, key);
    // Write-then-rename so concurrent readers never see a torn file.
    let tmp = dir.join(format!(".{key}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, encode_result(result).to_text())?;
    std::fs::rename(&tmp, &path)
}

// --- serialization -------------------------------------------------------
//
// One JSON object per result. Floats are stored as IEEE-754 bit patterns
// (see `crate::json`), so a rehydrated result is bit-identical to the
// computed one — with one deliberate exception: `SimReport::output` (the
// simulated result vector, ~rows × 8 bytes) is elided, because nothing
// downstream of validation reads it and it dominates the file size. The
// per-PE work vector, which tables do read, is kept.

fn encode_result(r: &JobResult) -> Json {
    match r {
        JobResult::Sim(report) => {
            Json::obj(vec![("kind", Json::Str("sim".into())), ("report", encode_sim(report))])
        }
        JobResult::Gpu(run) => {
            Json::obj(vec![("kind", Json::Str("gpu".into())), ("run", encode_gpu(run))])
        }
    }
}

fn decode_result(v: &Json) -> Result<JobResult, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("sim") => {
            let report = v.get("report").ok_or("missing 'report'")?;
            Ok(JobResult::Sim(Arc::new(decode_sim(report)?)))
        }
        Some("gpu") => {
            let run = v.get("run").ok_or("missing 'run'")?;
            Ok(JobResult::Gpu(decode_gpu(run)?))
        }
        other => Err(format!("unknown result kind {other:?}")),
    }
}

fn encode_gpu(r: &GpuRun) -> Json {
    Json::obj(vec![
        ("time_s", Json::f64_bits(r.time_s)),
        ("dram_bytes", Json::U64(r.dram_bytes)),
        ("dram_read_bytes", Json::U64(r.dram_read_bytes)),
        ("dram_read_throughput", Json::f64_bits(r.dram_read_throughput)),
        ("effective_read_throughput", Json::f64_bits(r.effective_read_throughput)),
        ("bw_utilization", Json::f64_bits(r.bw_utilization)),
        ("gflops", Json::f64_bits(r.gflops)),
        ("alu_utilization", Json::f64_bits(r.alu_utilization)),
        ("energy_j", Json::f64_bits(r.energy_j)),
        ("bw_efficiency", Json::f64_bits(r.bw_efficiency)),
        ("x_l2_hit_rate", Json::f64_bits(r.x_l2_hit_rate)),
    ])
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing u64 '{key}'"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64_bits).ok_or_else(|| format!("missing f64 '{key}'"))
}

fn decode_gpu(v: &Json) -> Result<GpuRun, String> {
    Ok(GpuRun {
        time_s: f64_field(v, "time_s")?,
        dram_bytes: u64_field(v, "dram_bytes")?,
        dram_read_bytes: u64_field(v, "dram_read_bytes")?,
        dram_read_throughput: f64_field(v, "dram_read_throughput")?,
        effective_read_throughput: f64_field(v, "effective_read_throughput")?,
        bw_utilization: f64_field(v, "bw_utilization")?,
        gflops: f64_field(v, "gflops")?,
        alu_utilization: f64_field(v, "alu_utilization")?,
        energy_j: f64_field(v, "energy_j")?,
        bw_efficiency: f64_field(v, "bw_efficiency")?,
        x_l2_hit_rate: f64_field(v, "x_l2_hit_rate")?,
    })
}

fn encode_sim(r: &SimReport) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(r.cycles)),
        ("seconds", Json::f64_bits(r.seconds)),
        ("activity", encode_activity(&r.activity)),
        ("l1_hit_rate", Json::f64_bits(r.l1_hit_rate)),
        ("l2_hit_rate", Json::f64_bits(r.l2_hit_rate)),
        ("tsv_bytes", Json::U64(r.tsv_bytes)),
        ("noc_byte_hops", Json::U64(r.noc_byte_hops)),
        ("pe_work", Json::Arr(r.pe_work.iter().map(|&w| Json::U64(w)).collect())),
        ("normalized_workload", Json::f64_bits(r.normalized_workload)),
        ("update_buffer_hit_rate", Json::f64_bits(r.update_buffer_hit_rate)),
        ("pe_busy_fraction", Json::f64_bits(r.pe_busy_fraction)),
        ("matrix_bank_busy_fraction", Json::f64_bits(r.matrix_bank_busy_fraction)),
        ("vector_bank_busy_fraction", Json::f64_bits(r.vector_bank_busy_fraction)),
        ("validated", Json::Bool(r.validated)),
        ("events_scheduled", Json::U64(r.events_scheduled)),
        ("events_processed", Json::U64(r.events_processed)),
    ])
}

fn decode_sim(v: &Json) -> Result<SimReport, String> {
    let pe_work = v
        .get("pe_work")
        .and_then(Json::as_arr)
        .ok_or("missing 'pe_work'")?
        .iter()
        .map(|w| w.as_u64().ok_or_else(|| "bad pe_work entry".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(SimReport {
        cycles: u64_field(v, "cycles")?,
        seconds: f64_field(v, "seconds")?,
        activity: decode_activity(v.get("activity").ok_or("missing 'activity'")?)?,
        l1_hit_rate: f64_field(v, "l1_hit_rate")?,
        l2_hit_rate: f64_field(v, "l2_hit_rate")?,
        tsv_bytes: u64_field(v, "tsv_bytes")?,
        noc_byte_hops: u64_field(v, "noc_byte_hops")?,
        pe_work,
        normalized_workload: f64_field(v, "normalized_workload")?,
        update_buffer_hit_rate: f64_field(v, "update_buffer_hit_rate")?,
        pe_busy_fraction: f64_field(v, "pe_busy_fraction")?,
        matrix_bank_busy_fraction: f64_field(v, "matrix_bank_busy_fraction")?,
        vector_bank_busy_fraction: f64_field(v, "vector_bank_busy_fraction")?,
        output: Vec::new(), // elided on disk; see module comment
        validated: v.get("validated").and_then(Json::as_bool).ok_or("missing 'validated'")?,
        events_scheduled: u64_field(v, "events_scheduled")?,
        events_processed: u64_field(v, "events_processed")?,
    })
}

fn encode_activity(a: &ActivitySummary) -> Json {
    let sram = |c: &SramCounters| {
        Json::obj(vec![("reads", Json::U64(c.reads)), ("writes", Json::U64(c.writes))])
    };
    let cam = |c: &CamCounters| {
        Json::obj(vec![
            ("hits", Json::U64(c.hits)),
            ("misses", Json::U64(c.misses)),
            ("fills", Json::U64(c.fills)),
            ("evictions", Json::U64(c.evictions)),
        ])
    };
    let ldq = |c: &LdqCounters| {
        Json::obj(vec![
            ("new_requests", Json::U64(c.new_requests)),
            ("deduplicated", Json::U64(c.deduplicated)),
            ("completed", Json::U64(c.completed)),
            ("rejected_full", Json::U64(c.rejected_full)),
        ])
    };
    Json::obj(vec![
        ("cycles", Json::U64(a.cycles)),
        ("dram_activates", Json::U64(a.dram_activates)),
        ("dram_read_beats", Json::U64(a.dram_read_beats)),
        ("dram_write_beats", Json::U64(a.dram_write_beats)),
        ("fpu_ops", Json::U64(a.fpu_ops)),
        ("pe_queue", sram(&a.pe_queue)),
        ("register_file", sram(&a.register_file)),
        ("l1_cam", cam(&a.l1_cam)),
        ("l2_cam", cam(&a.l2_cam)),
        ("l1_ldq", ldq(&a.l1_ldq)),
        ("l2_ldq", ldq(&a.l2_ldq)),
        ("tsv_bytes", Json::U64(a.tsv_bytes)),
        ("noc_byte_hops", Json::U64(a.noc_byte_hops)),
    ])
}

fn decode_activity(v: &Json) -> Result<ActivitySummary, String> {
    let sram = |key: &str| -> Result<SramCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(SramCounters { reads: u64_field(c, "reads")?, writes: u64_field(c, "writes")? })
    };
    let cam = |key: &str| -> Result<CamCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(CamCounters {
            hits: u64_field(c, "hits")?,
            misses: u64_field(c, "misses")?,
            fills: u64_field(c, "fills")?,
            evictions: u64_field(c, "evictions")?,
        })
    };
    let ldq = |key: &str| -> Result<LdqCounters, String> {
        let c = v.get(key).ok_or_else(|| format!("missing '{key}'"))?;
        Ok(LdqCounters {
            new_requests: u64_field(c, "new_requests")?,
            deduplicated: u64_field(c, "deduplicated")?,
            completed: u64_field(c, "completed")?,
            rejected_full: u64_field(c, "rejected_full")?,
        })
    };
    Ok(ActivitySummary {
        cycles: u64_field(v, "cycles")?,
        dram_activates: u64_field(v, "dram_activates")?,
        dram_read_beats: u64_field(v, "dram_read_beats")?,
        dram_write_beats: u64_field(v, "dram_write_beats")?,
        fpu_ops: u64_field(v, "fpu_ops")?,
        pe_queue: sram("pe_queue")?,
        register_file: sram("register_file")?,
        l1_cam: cam("l1_cam")?,
        l2_cam: cam("l2_cam")?,
        l1_ldq: ldq("l1_ldq")?,
        l2_ldq: ldq("l2_ldq")?,
        tsv_bytes: u64_field(v, "tsv_bytes")?,
        noc_byte_hops: u64_field(v, "noc_byte_hops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gpu() -> GpuRun {
        GpuRun {
            time_s: 1.0 / 3.0,
            dram_bytes: 123,
            dram_read_bytes: 100,
            dram_read_throughput: 1e9,
            effective_read_throughput: 0.5e9,
            bw_utilization: 0.27,
            gflops: 1.5,
            alu_utilization: 0.0268,
            energy_j: 0.125,
            bw_efficiency: 0.9,
            x_l2_hit_rate: 0.75,
        }
    }

    #[test]
    fn gpu_round_trips_exactly() {
        let run = sample_gpu();
        let back =
            decode_result(&json::parse(&encode_result(&JobResult::Gpu(run)).to_text()).unwrap())
                .unwrap();
        assert_eq!(back, JobResult::Gpu(run));
    }

    #[test]
    fn memory_store_counts_hits_and_misses() {
        let store = ResultStore::in_memory();
        let key = JobKey(42);
        assert!(store.lookup(key).is_none());
        store.insert(key, JobResult::Gpu(sample_gpu()));
        let (_, outcome) = store.lookup(key).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        let stats = store.stats();
        assert_eq!((stats.mem_hits, stats.disk_hits, stats.misses), (1, 0, 1));
        assert!((stats.hit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_store_survives_process_restart() {
        let dir = std::env::temp_dir().join(format!("spacea-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = JobKey(7);
        {
            let store = ResultStore::with_disk(&dir).unwrap();
            store.insert(key, JobResult::Gpu(sample_gpu()));
        }
        // A fresh store (fresh memory) must find the entry on disk.
        let store = ResultStore::with_disk(&dir).unwrap();
        let (result, outcome) = store.lookup(key).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(result, JobResult::Gpu(sample_gpu()));
        // Promoted to memory: second lookup is a memory hit.
        assert_eq!(store.lookup(key).unwrap().1, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("spacea-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::with_disk(&dir).unwrap();
        let key = JobKey(9);
        std::fs::write(dir.join(format!("{key}.json")), "{not json").unwrap();
        assert!(store.lookup(key).is_none());
        assert_eq!(store.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
