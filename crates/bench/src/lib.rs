//! Shared plumbing for the experiment harness binaries.
//!
//! Every paper table/figure has a binary in `src/bin/` (run with
//! `cargo run --release -p spacea-bench --bin fig5`); all of them accept the
//! same flags:
//!
//! * `--scale N` — Table I matrix down-scale factor (default 8)
//! * `--graph-scale N` — Table III graph down-scale factor (default 256)
//! * `--cubes N` — cube count of the machine under test (default 2)
//! * `--quick` — the miniature smoke-test configuration (explicit flags
//!   still apply, regardless of order)
//! * `--jobs N` — worker threads for the parallel job phase (default: the
//!   machine's available parallelism, capped at 8)
//! * `--no-cache` — skip the persistent result cache under
//!   `target/spacea-cache/`
//! * `--csv` — emit CSV instead of aligned text
//!
//! The figure/table binaries first enumerate the jobs their experiment
//! consumes (see `spacea_core::experiments::Experiment::jobs`), compute them
//! in parallel through [`spacea_harness::run_jobs`] into a content-addressed
//! [`ResultStore`], and only then render — rendering is pure lookup, so the
//! output is byte-identical for any `--jobs` value.

#![warn(missing_docs)]

use spacea_arch::HwConfig;
use spacea_core::experiments::{ExpConfig, ExpOutput, SuiteCache};
use spacea_harness::{JobCtx, JobSpec, ResultStore, RunManifest, DEFAULT_CACHE_DIR};
use spacea_mapping::MachineShape;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// The experiment configuration.
    pub cfg: ExpConfig,
    /// Emit CSV instead of text tables.
    pub csv: bool,
    /// Worker threads for the parallel job phase.
    pub jobs: usize,
    /// Skip the persistent on-disk result cache.
    pub no_cache: bool,
}

/// The default worker count: available parallelism, capped at 8.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Parses harness options from an argument iterator.
///
/// Unknown flags abort with a usage message; this is a harness, not a public
/// CLI, so the parser is intentionally tiny.
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> HarnessOptions {
    let args: Vec<String> = args.collect();
    // `--quick` replaces the whole base configuration, so it is applied
    // first and the explicit flags overlay it — `--cubes 4 --quick` keeps
    // the 4 cubes regardless of flag order.
    let mut cfg =
        if args.iter().any(|a| a == "--quick") { ExpConfig::quick() } else { ExpConfig::default() };
    let mut csv = false;
    let mut jobs = default_jobs();
    let mut no_cache = false;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        let mut next_usize = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{what} needs a positive integer")))
        };
        match arg.as_str() {
            "--scale" => cfg.scale = next_usize("--scale").max(1),
            "--graph-scale" => cfg.graph_scale = next_usize("--graph-scale").max(1),
            "--cubes" => {
                let cubes = next_usize("--cubes").max(1);
                let shape = MachineShape { cubes, ..cfg.hw.shape };
                cfg.hw = HwConfig { shape, ..cfg.hw };
            }
            "--jobs" => jobs = next_usize("--jobs").max(1),
            "--no-cache" => no_cache = true,
            "--quick" => {} // already applied as the base configuration
            "--csv" => csv = true,
            "--help" | "-h" => usage("usage"),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    HarnessOptions { cfg, csv, jobs, no_cache }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "flags: --scale N | --graph-scale N | --cubes N | --quick | --jobs N | --no-cache | --csv"
    );
    std::process::exit(2)
}

/// Opens the result store: disk-backed under [`DEFAULT_CACHE_DIR`] unless
/// `--no-cache` was given (or the directory cannot be created).
pub fn open_store(opts: &HarnessOptions) -> Arc<ResultStore> {
    if opts.no_cache {
        return Arc::new(ResultStore::in_memory());
    }
    match ResultStore::with_disk(DEFAULT_CACHE_DIR) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!(
                "harness: cannot open cache dir {DEFAULT_CACHE_DIR} ({e}); continuing without disk cache"
            );
            Arc::new(ResultStore::in_memory())
        }
    }
}

/// Builds the shared cache for parsed options.
pub fn cache_for(opts: &HarnessOptions) -> SuiteCache {
    SuiteCache::with_store(opts.cfg.clone(), open_store(opts), Arc::new(JobCtx::new()))
}

/// Computes `jobs` (deduplicated) on `workers` threads, filling the cache's
/// store, and returns the run telemetry.
pub fn prewarm(cache: &SuiteCache, jobs: Vec<JobSpec>, workers: usize) -> RunManifest {
    let jobs = spacea_harness::dedup_jobs(jobs);
    let started = Instant::now();
    let records = spacea_harness::run_jobs(&jobs, cache.store(), cache.ctx(), workers);
    RunManifest {
        workers,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        records,
        stats: cache.store().stats(),
    }
}

/// Writes the run manifest JSON under the cache directory (or the default
/// directory when running with `--no-cache`) and returns its path.
pub fn write_manifest(cache: &SuiteCache, manifest: &RunManifest) -> std::io::Result<PathBuf> {
    let dir = cache
        .store()
        .disk_dir()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("last-run.json");
    std::fs::write(&path, manifest.to_json())?;
    Ok(path)
}

/// Parses the process arguments and builds the shared cache (no job
/// pre-warming — for binaries whose work is not expressible as jobs).
pub fn harness() -> (SuiteCache, bool) {
    let opts = parse_args(std::env::args().skip(1));
    let csv = opts.csv;
    (cache_for(&opts), csv)
}

/// Parses the process arguments, builds the cache, and pre-warms one
/// experiment's jobs in parallel; the run summary goes to stderr.
pub fn harness_for(jobs_of: fn(&ExpConfig) -> Vec<JobSpec>) -> (SuiteCache, bool) {
    let opts = parse_args(std::env::args().skip(1));
    let cache = cache_for(&opts);
    let manifest = prewarm(&cache, jobs_of(&opts.cfg), opts.jobs);
    eprint!("{}", manifest.summary());
    (cache, opts.csv)
}

/// Prints one experiment's tables in the selected format.
pub fn emit(out: &ExpOutput, csv: bool) {
    if csv {
        print!("{}", out.table.to_csv());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_csv());
        }
    } else {
        print!("{}", out.table.to_text());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_text());
        }
    }
    if !out.headline.is_empty() && !csv {
        println!();
        println!("paper vs measured:");
        for (name, paper, measured) in &out.headline {
            println!("  {name}: paper {paper:.3} | measured {measured:.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessOptions {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.cfg.scale, 8);
        assert!(!o.csv);
        assert!(!o.no_cache);
        assert!(o.jobs >= 1);
    }

    #[test]
    fn scale_flag() {
        assert_eq!(parse(&["--scale", "128"]).cfg.scale, 128);
    }

    #[test]
    fn cubes_flag() {
        assert_eq!(parse(&["--cubes", "4"]).cfg.hw.shape.cubes, 4);
    }

    #[test]
    fn quick_flag() {
        let o = parse(&["--quick"]);
        assert_eq!(o.cfg, ExpConfig::quick());
    }

    #[test]
    fn quick_does_not_clobber_explicit_flags_in_any_order() {
        // Regression: `--cubes 4 --quick` used to silently reset the cube
        // count because `--quick` replaced the whole config when reached.
        let a = parse(&["--cubes", "4", "--quick"]);
        let b = parse(&["--quick", "--cubes", "4"]);
        assert_eq!(a.cfg.hw.shape.cubes, 4);
        assert_eq!(a.cfg, b.cfg);
        assert_eq!(a.cfg.scale, ExpConfig::quick().scale, "quick base still applies");
        let c = parse(&["--scale", "12", "--quick", "--graph-scale", "99"]);
        assert_eq!(c.cfg.scale, 12);
        assert_eq!(c.cfg.graph_scale, 99);
    }

    #[test]
    fn jobs_and_no_cache_flags() {
        let o = parse(&["--jobs", "3", "--no-cache"]);
        assert_eq!(o.jobs, 3);
        assert!(o.no_cache);
        assert_eq!(parse(&["--jobs", "0"]).jobs, 1, "worker count clamps to 1");
    }

    #[test]
    fn csv_flag() {
        assert!(parse(&["--csv"]).csv);
    }
}
