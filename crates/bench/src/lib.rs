//! Shared plumbing for the experiment harness binaries.
//!
//! Every paper table/figure has a binary in `src/bin/` (run with
//! `cargo run --release -p spacea-bench --bin fig5`); all of them accept the
//! same flags:
//!
//! * `--scale N` — Table I matrix down-scale factor (default 8)
//! * `--graph-scale N` — Table III graph down-scale factor (default 256)
//! * `--cubes N` — cube count of the machine under test (default 2)
//! * `--quick` — the miniature smoke-test configuration (explicit flags
//!   still apply, regardless of order)
//! * `--jobs N` — worker threads for the parallel job phase (default: the
//!   machine's available parallelism, capped at 8)
//! * `--no-cache` — skip the persistent result cache under
//!   `target/spacea-cache/`
//! * `--cache-dir DIR` — use a different cache directory (CI isolation,
//!   scratch sweeps)
//! * `--csv` — emit CSV instead of aligned text
//!
//! Flags parse through [`HarnessOptions::from_args`]; unknown flags are
//! [`ArgError`]s carrying a usage string, and binaries with extra flags (the
//! sweep grid, sharding, cache GC — see [`SweepCli`]) plug them into the
//! same parser via [`HarnessOptions::from_args_with`] instead of
//! hand-rolling a second one.
//!
//! Each binary starts from a [`HarnessSession`] — the named successor of the
//! old `(SuiteCache, bool)` tuple — via [`harness`] (parse args, open the
//! store) or [`harness_for`] (additionally pre-warm one experiment's jobs in
//! parallel). The figure/table binaries first enumerate the jobs their
//! experiment consumes (see `spacea_core::experiments::Experiment::jobs`),
//! compute them in parallel through [`spacea_harness::run_jobs`] into a
//! content-addressed [`ResultStore`], and only then render — rendering is
//! pure lookup, so the output is byte-identical for any `--jobs` value.

#![warn(missing_docs)]

use spacea_core::experiments::{ExpConfig, ExpOutput, SuiteCache};
use spacea_harness::{
    FaultPlan, GcPolicy, JobCtx, JobSpec, PointKind, ResultStore, RunManifest, SupervisionPolicy,
    SweepPoint, SweepSpec, TimelineConfig, DEFAULT_CACHE_DIR,
};
use spacea_obs::Cycle;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// The experiment configuration.
    pub cfg: ExpConfig,
    /// Emit CSV instead of text tables.
    pub csv: bool,
    /// Worker threads for the parallel job phase.
    pub jobs: usize,
    /// Skip the persistent on-disk result cache.
    pub no_cache: bool,
    /// Override of the cache directory (default [`DEFAULT_CACHE_DIR`]).
    pub cache_dir: Option<PathBuf>,
}

/// The default worker count: available parallelism, capped at 8.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// A rejected argument list: the offending detail plus the usage string.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError {
    /// What was wrong (`"unknown flag '--warp'"`).
    pub message: String,
}

/// The usage line for the shared harness flags.
pub const BASE_USAGE: &str = "flags: --scale N | --graph-scale N | --cubes N | --quick | \
     --jobs N | --no-cache | --cache-dir DIR | --csv";

impl ArgError {
    /// A fresh error.
    pub fn new(message: impl Into<String>) -> Self {
        ArgError { message: message.into() }
    }

    /// Prints the message plus usage (base and, if non-empty, `extra`) to
    /// stderr and exits with status 2 — the harness binaries' error path.
    pub fn exit_with_usage(self, extra: &str) -> ! {
        eprintln!("{}", self.message);
        eprintln!("{BASE_USAGE}");
        if !extra.is_empty() {
            eprintln!("{extra}");
        }
        std::process::exit(2)
    }

    /// [`ArgError::exit_with_usage`] with no extra flags to advertise.
    pub fn exit(self) -> ! {
        self.exit_with_usage("")
    }
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The argument cursor handed to flag handlers: the not-yet-consumed tail
/// of the argument list, with typed value accessors.
pub struct ArgStream {
    inner: std::vec::IntoIter<String>,
}

impl ArgStream {
    fn next(&mut self) -> Option<String> {
        self.inner.next()
    }

    /// The value following `flag`, or an error naming the flag.
    pub fn value(&mut self, flag: &str) -> Result<String, ArgError> {
        self.next().ok_or_else(|| ArgError::new(format!("{flag} needs a value")))
    }

    /// The positive-integer value following `flag`.
    pub fn usize_value(&mut self, flag: &str) -> Result<usize, ArgError> {
        self.value(flag)?
            .parse()
            .map_err(|_| ArgError::new(format!("{flag} needs a positive integer")))
    }
}

impl HarnessOptions {
    /// Parses the shared harness flags from an argument iterator. Unknown
    /// flags (and malformed values) are errors, never silently ignored.
    pub fn from_args<I: Iterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        Self::from_args_with(args, |_, _| Ok(false))
    }

    /// Like [`HarnessOptions::from_args`], but flags the base parser does
    /// not recognize are offered to `extra(flag, args)` first: return
    /// `Ok(true)` if consumed (taking any values from the [`ArgStream`]),
    /// `Ok(false)` to reject it as unknown. This is how the sweep binary
    /// plugs its grid/shard/gc flags into the shared parser.
    pub fn from_args_with<I, F>(args: I, mut extra: F) -> Result<Self, ArgError>
    where
        I: Iterator<Item = String>,
        F: FnMut(&str, &mut ArgStream) -> Result<bool, ArgError>,
    {
        let args: Vec<String> = args.collect();
        // `--quick` replaces the whole base configuration, so it is applied
        // first and the explicit flags overlay it — `--cubes 4 --quick`
        // keeps the 4 cubes regardless of flag order.
        let mut cfg = if args.iter().any(|a| a == "--quick") {
            ExpConfig::quick()
        } else {
            ExpConfig::default()
        };
        let mut csv = false;
        let mut jobs = default_jobs();
        let mut no_cache = false;
        let mut cache_dir = None;
        let mut stream = ArgStream { inner: args.into_iter() };
        while let Some(arg) = stream.next() {
            match arg.as_str() {
                "--scale" => cfg = cfg.with_scale(stream.usize_value("--scale")?),
                "--graph-scale" => cfg = cfg.with_graph_scale(stream.usize_value("--graph-scale")?),
                "--cubes" => cfg = cfg.with_cubes(stream.usize_value("--cubes")?),
                "--jobs" => jobs = stream.usize_value("--jobs")?.max(1),
                "--no-cache" => no_cache = true,
                "--cache-dir" => cache_dir = Some(PathBuf::from(stream.value("--cache-dir")?)),
                "--quick" => {} // already applied as the base configuration
                "--csv" => csv = true,
                "--help" | "-h" => return Err(ArgError::new("usage")),
                other => {
                    if !extra(other, &mut stream)? {
                        return Err(ArgError::new(format!("unknown flag '{other}'")));
                    }
                }
            }
        }
        Ok(HarnessOptions { cfg, csv, jobs, no_cache, cache_dir })
    }

    /// The cache directory this run persists to (even with `--no-cache`,
    /// where it is only used for the run manifest).
    pub fn cache_dir(&self) -> PathBuf {
        self.cache_dir.clone().unwrap_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR))
    }
}

/// Opens the result store: disk-backed under [`HarnessOptions::cache_dir`]
/// unless `--no-cache` was given (or the directory cannot be created).
pub fn open_store(opts: &HarnessOptions) -> Arc<ResultStore> {
    if opts.no_cache {
        return Arc::new(ResultStore::in_memory());
    }
    let dir = opts.cache_dir();
    match ResultStore::with_disk(&dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!(
                "harness: cannot open cache dir {} ({e}); continuing without disk cache",
                dir.display()
            );
            Arc::new(ResultStore::in_memory())
        }
    }
}

/// One configured harness run: the shared computation cache, the resolved
/// options, and where its run manifest goes. Replaces the anonymous
/// `(SuiteCache, bool)` tuples the binaries used to destructure.
pub struct HarnessSession {
    /// Store-backed access to matrices, mappings and results.
    pub cache: SuiteCache,
    /// Emit CSV instead of aligned text (mirror of `opts.csv`).
    pub csv: bool,
    /// The fully resolved options this session was built from.
    pub opts: HarnessOptions,
    /// Where [`HarnessSession::write_manifest`] persists run telemetry.
    pub manifest_path: PathBuf,
    /// When set, sim jobs run observed and [`HarnessSession::prewarm`]
    /// writes one Chrome-trace timeline per job (the `--timeline` flag).
    pub timeline: Option<TimelineConfig>,
}

impl HarnessSession {
    /// Builds a session from parsed options. Unless `--no-cache` was given,
    /// the job context persists computed mappings under
    /// `<cache-dir>/mappings/` so Phase I/II is paid once per matrix *ever*
    /// (warm restarts load them from disk).
    pub fn from_opts(opts: HarnessOptions) -> Self {
        let ctx = if opts.no_cache {
            JobCtx::new()
        } else {
            JobCtx::with_mapping_dir(opts.cache_dir().join("mappings"))
        };
        let cache = SuiteCache::with_store(opts.cfg.clone(), open_store(&opts), Arc::new(ctx));
        let manifest_path = opts.cache_dir().join("last-run.json");
        HarnessSession { cache, csv: opts.csv, opts, manifest_path, timeline: None }
    }

    /// Computes `jobs` (deduplicated) in parallel on this session's worker
    /// count, filling the cache's store, and returns the run telemetry.
    /// With [`HarnessSession::timeline`] set, sim jobs also export
    /// per-job timeline artifacts.
    pub fn prewarm(&self, jobs: Vec<JobSpec>) -> RunManifest {
        prewarm_observed(&self.cache, jobs, self.opts.jobs, self.timeline.as_ref())
    }

    /// Prints one experiment's tables in this session's format.
    pub fn emit(&self, out: &ExpOutput) {
        emit(out, self.csv)
    }

    /// Prints a single table in this session's format. CSV mode emits only
    /// the header and rows (no title/notes), which is what makes per-shard
    /// sweep output concatenable into the unsharded output.
    pub fn emit_table(&self, table: &spacea_core::table::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_text());
        }
    }

    /// Writes the run manifest JSON to [`HarnessSession::manifest_path`]
    /// (also flushing the cache's GC index) and returns that path.
    pub fn write_manifest(&self, manifest: &RunManifest) -> std::io::Result<PathBuf> {
        if let Some(dir) = self.manifest_path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        self.cache.store().persist_index()?;
        std::fs::write(&self.manifest_path, manifest.to_json())?;
        Ok(self.manifest_path.clone())
    }
}

/// Computes `jobs` (deduplicated) on `workers` threads under the default
/// [`SupervisionPolicy`], filling the cache's store, and returns the run
/// telemetry. A panicking or hung job ends up as a failure record in the
/// manifest; the rest of the sweep still completes.
pub fn prewarm(cache: &SuiteCache, jobs: Vec<JobSpec>, workers: usize) -> RunManifest {
    prewarm_observed(cache, jobs, workers, None)
}

/// [`prewarm`] with optional timeline export: when `timeline` is set, sim
/// jobs run observed and each success writes a Chrome-trace JSON artifact
/// under the timeline directory (see [`TimelineConfig`]).
pub fn prewarm_observed(
    cache: &SuiteCache,
    jobs: Vec<JobSpec>,
    workers: usize,
    timeline: Option<&TimelineConfig>,
) -> RunManifest {
    let jobs = spacea_harness::dedup_jobs(jobs);
    let started = Instant::now();
    let out = spacea_harness::run_jobs_observed(
        &jobs,
        cache.store(),
        cache.ctx(),
        workers,
        &SupervisionPolicy::default(),
        timeline,
    );
    RunManifest {
        workers,
        total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        records: out.records,
        stats: cache.store().stats(),
        mappings: cache.ctx().mapping_stats(),
        corrupt_paths: cache
            .store()
            .corrupt_paths()
            .iter()
            .map(|p| p.display().to_string())
            .collect(),
        abandoned: out.abandoned,
    }
}

/// Parses the process arguments and builds the session (no job pre-warming
/// — for binaries whose work is not expressible as jobs).
pub fn harness() -> HarnessSession {
    let opts = HarnessOptions::from_args(std::env::args().skip(1)).unwrap_or_else(|e| e.exit());
    HarnessSession::from_opts(opts)
}

/// Parses the process arguments, builds the session, and pre-warms one
/// experiment's jobs in parallel; the run summary goes to stderr.
pub fn harness_for(jobs_of: fn(&ExpConfig) -> Vec<JobSpec>) -> HarnessSession {
    let session = harness();
    let manifest = session.prewarm(jobs_of(&session.opts.cfg));
    eprint!("{}", manifest.summary());
    session
}

/// Prints one experiment's tables in the selected format.
pub fn emit(out: &ExpOutput, csv: bool) {
    if csv {
        print!("{}", out.table.to_csv());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_csv());
        }
    } else {
        print!("{}", out.table.to_text());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_text());
        }
    }
    if !out.headline.is_empty() && !csv {
        println!();
        println!("paper vs measured:");
        for (name, paper, measured) in &out.headline {
            println!("  {name}: paper {paper:.3} | measured {measured:.3}");
        }
    }
}

/// The sweep binary's extra flags — grid axes, sharding, cache GC — in a
/// form any binary can plug into [`HarnessOptions::from_args_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepCli {
    /// The accumulated grid (spec file first, then per-axis flags overlay).
    pub spec: SweepSpec,
    /// `--shard K/N`: run (and render) only shard K of N.
    pub shard: Option<(usize, usize)>,
    /// `--gc`: run cache GC after the sweep.
    pub gc: bool,
    /// `--gc-max-kb N`: size budget for `--gc`, in KiB.
    pub gc_max_kb: Option<u64>,
    /// `--gc-max-age-days N`: age budget for `--gc`, in days.
    pub gc_max_age_days: Option<u64>,
    /// `--faults SPEC`: fault plans to inject, as `(point index, plan)`
    /// pairs; `None` index means every sim point. See [`SweepCli::accept`].
    pub faults: Vec<(Option<usize>, FaultPlan)>,
    /// `--timeline[=EVERY]`: export per-job timelines; `Some(0)` means the
    /// default sampling cadence, any other value is the cadence in cycles.
    pub timeline: Option<Cycle>,
}

/// Usage line for the sweep flags (shown next to [`BASE_USAGE`]).
pub const SWEEP_USAGE: &str = "sweep: --spec FILE | --ids L|all | --scales L | --kinds L | \
     --hw L | --cubes-axis L | --l1-sets L | --l2-sets L | --energy-scale L | --gpu | \
     --backend L|all | --format L|all | --partition L|all (scenario cells: backend x format x \
     partitioning, verified bitwise against the CSR reference) | \
     --shard K/N | --gc | --gc-max-kb N | --gc-max-age-days N | \
     --faults '[IDX:]PLAN[;...]' (PLAN e.g. stall-vault=0@100, drop-noc=5, panic) | \
     --timeline[=EVERY-CYCLES] (per-job Perfetto timelines under <cache>/timelines/)   \
     (L = comma-separated list)";

impl SweepCli {
    /// Offers `flag` to the sweep parser; `Ok(true)` if it was consumed.
    /// Pass this (as a closure) to [`HarnessOptions::from_args_with`].
    pub fn accept(&mut self, flag: &str, args: &mut ArgStream) -> Result<bool, ArgError> {
        let mut axis = |key: &str, value: &str| self.spec.set(key, value).map_err(ArgError::new);
        match flag {
            "--spec" => {
                let path = args.value("--spec")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| ArgError::new(format!("cannot read spec {path}: {e}")))?;
                let file_spec = SweepSpec::from_spec_text(&text)
                    .map_err(|e| ArgError::new(format!("{path}: {e}")))?;
                // The file is the base; axis flags given before or after
                // --spec overlay it only where they were explicitly set.
                let overlay = std::mem::take(&mut self.spec);
                self.spec = merge_specs(file_spec, overlay);
            }
            "--ids" => axis("ids", &args.value("--ids")?)?,
            "--scales" => axis("scales", &args.value("--scales")?)?,
            "--kinds" => axis("kinds", &args.value("--kinds")?)?,
            "--hw" => axis("hw", &args.value("--hw")?)?,
            "--cubes-axis" => axis("cubes", &args.value("--cubes-axis")?)?,
            "--l1-sets" => axis("l1-sets", &args.value("--l1-sets")?)?,
            "--l2-sets" => axis("l2-sets", &args.value("--l2-sets")?)?,
            "--energy-scale" => axis("energy-scale", &args.value("--energy-scale")?)?,
            "--gpu" => self.spec.gpu = true,
            "--backend" => axis("backends", &args.value("--backend")?)?,
            "--format" => axis("formats", &args.value("--format")?)?,
            "--partition" => axis("partitions", &args.value("--partition")?)?,
            "--shard" => {
                let v = args.value("--shard")?;
                let parsed = v.split_once('/').and_then(|(k, n)| {
                    Some((k.trim().parse::<usize>().ok()?, n.trim().parse::<usize>().ok()?))
                });
                match parsed {
                    Some((k, n)) if n > 0 && k < n => self.shard = Some((k, n)),
                    _ => {
                        return Err(ArgError::new(format!(
                            "--shard needs K/N with K < N, got '{v}'"
                        )))
                    }
                }
            }
            "--gc" => self.gc = true,
            "--gc-max-kb" => {
                self.gc_max_kb = Some(args.usize_value("--gc-max-kb")? as u64);
                self.gc = true;
            }
            "--gc-max-age-days" => {
                self.gc_max_age_days = Some(args.usize_value("--gc-max-age-days")? as u64);
                self.gc = true;
            }
            "--faults" => {
                // `;`-separated `[IDX:]PLAN` entries. Fault directives never
                // contain ':', so the first ':' always splits off the index.
                let v = args.value("--faults")?;
                for part in v.split(';').map(str::trim).filter(|p| !p.is_empty()) {
                    let (idx, plan_text) = match part.split_once(':') {
                        Some((i, rest)) => {
                            let i = i.trim().parse::<usize>().map_err(|_| {
                                ArgError::new(format!("--faults: bad point index in '{part}'"))
                            })?;
                            (Some(i), rest)
                        }
                        None => (None, part),
                    };
                    let plan = FaultPlan::parse(plan_text)
                        .map_err(|e| ArgError::new(format!("--faults: {e}")))?;
                    self.faults.push((idx, plan));
                }
            }
            "--timeline" => self.timeline = Some(0),
            other if other.starts_with("--timeline=") => {
                let v = &other["--timeline=".len()..];
                // `0` falls back to the default cadence, same as bare
                // `--timeline` (TimelineConfig::with_every treats 0 as
                // "keep the default").
                let every = v.parse::<Cycle>().map_err(|_| {
                    ArgError::new(format!("--timeline needs a cycle count, got '{v}'"))
                })?;
                self.timeline = Some(every);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The timeline configuration `--timeline` requested, rooted under
    /// `cache_dir` (artifacts go to `<cache_dir>/timelines/<job-key>.json`).
    pub fn timeline_config(&self, cache_dir: &Path) -> Option<TimelineConfig> {
        self.timeline.map(|every| TimelineConfig::new(cache_dir).with_every(every))
    }

    /// Applies the `--faults` plans to the enumerated sweep points. Indices
    /// are **global** (pre-shard) point positions, so a faulted sharded
    /// sweep targets the same point regardless of which shard runs it; a
    /// plan with no index applies to every simulation point. Plans aimed at
    /// GPU points or out-of-range indices are reported on stderr and
    /// skipped.
    pub fn apply_faults(&self, points: &mut [SweepPoint]) {
        for (idx, plan) in &self.faults {
            match idx {
                None => {
                    for p in points.iter_mut() {
                        if let PointKind::Sim { hw, .. } = &mut p.kind {
                            hw.faults = *plan;
                        }
                    }
                }
                Some(i) => match points.get_mut(*i) {
                    Some(p) => match &mut p.kind {
                        PointKind::Sim { hw, .. } => hw.faults = *plan,
                        PointKind::Gpu { .. } | PointKind::Scenario { .. } => eprintln!(
                            "sweep: --faults index {i} names a non-sim point; fault ignored"
                        ),
                    },
                    None => eprintln!(
                        "sweep: --faults index {i} out of range ({} points); ignored",
                        points.len()
                    ),
                },
            }
        }
    }

    /// The GC policy the flags requested, if `--gc` was given.
    pub fn gc_policy(&self) -> Option<GcPolicy> {
        if !self.gc {
            return None;
        }
        Some(GcPolicy {
            max_bytes: self.gc_max_kb.map(|kb| kb * 1024),
            max_age_secs: self.gc_max_age_days.map(|d| d * 24 * 3600),
        })
    }
}

/// Overlays `over` onto `base`: every axis `over` explicitly set wins.
fn merge_specs(base: SweepSpec, over: SweepSpec) -> SweepSpec {
    fn pick<T>(base: Vec<T>, over: Vec<T>) -> Vec<T> {
        if over.is_empty() {
            base
        } else {
            over
        }
    }
    SweepSpec {
        ids: pick(base.ids, over.ids),
        scales: pick(base.scales, over.scales),
        kinds: pick(base.kinds, over.kinds),
        hw: pick(base.hw, over.hw),
        cubes: pick(base.cubes, over.cubes),
        l1_sets: pick(base.l1_sets, over.l1_sets),
        l2_sets: pick(base.l2_sets, over.l2_sets),
        energy_scale: pick(base.energy_scale, over.energy_scale),
        gpu: base.gpu || over.gpu,
        backends: pick(base.backends, over.backends),
        formats: pick(base.formats, over.formats),
        partitions: pick(base.partitions, over.partitions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessOptions {
        HarnessOptions::from_args(args.iter().map(|s| s.to_string())).expect("args parse")
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.cfg.scale, 8);
        assert!(!o.csv);
        assert!(!o.no_cache);
        assert!(o.cache_dir.is_none());
        assert!(o.jobs >= 1);
    }

    #[test]
    fn scale_flag() {
        assert_eq!(parse(&["--scale", "128"]).cfg.scale, 128);
    }

    #[test]
    fn cubes_flag() {
        assert_eq!(parse(&["--cubes", "4"]).cfg.hw.shape.cubes, 4);
    }

    #[test]
    fn quick_flag() {
        let o = parse(&["--quick"]);
        assert_eq!(o.cfg, ExpConfig::quick());
    }

    #[test]
    fn quick_does_not_clobber_explicit_flags_in_any_order() {
        // Regression: `--cubes 4 --quick` used to silently reset the cube
        // count because `--quick` replaced the whole config when reached.
        let a = parse(&["--cubes", "4", "--quick"]);
        let b = parse(&["--quick", "--cubes", "4"]);
        assert_eq!(a.cfg.hw.shape.cubes, 4);
        assert_eq!(a.cfg, b.cfg);
        assert_eq!(a.cfg.scale, ExpConfig::quick().scale, "quick base still applies");
        let c = parse(&["--scale", "12", "--quick", "--graph-scale", "99"]);
        assert_eq!(c.cfg.scale, 12);
        assert_eq!(c.cfg.graph_scale, 99);
    }

    #[test]
    fn jobs_no_cache_and_cache_dir_flags() {
        let o = parse(&["--jobs", "3", "--no-cache", "--cache-dir", "/tmp/x"]);
        assert_eq!(o.jobs, 3);
        assert!(o.no_cache);
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/x")));
        assert_eq!(o.cache_dir(), PathBuf::from("/tmp/x"));
        assert_eq!(parse(&[]).cache_dir(), PathBuf::from(DEFAULT_CACHE_DIR));
        assert_eq!(parse(&["--jobs", "0"]).jobs, 1, "worker count clamps to 1");
    }

    #[test]
    fn csv_flag() {
        assert!(parse(&["--csv"]).csv);
    }

    #[test]
    fn unknown_flags_and_bad_values_are_errors_not_exits() {
        let err = |args: &[&str]| {
            HarnessOptions::from_args(args.iter().map(|s| s.to_string())).unwrap_err()
        };
        assert!(err(&["--warp"]).message.contains("unknown flag '--warp'"));
        assert!(err(&["--scale"]).message.contains("needs a value"));
        assert!(err(&["--scale", "many"]).message.contains("positive integer"));
    }

    #[test]
    fn extra_hook_consumes_flags_the_base_parser_rejects() {
        let mut seen = Vec::new();
        let opts = HarnessOptions::from_args_with(
            ["--csv", "--wings", "2", "--scale", "16"].iter().map(|s| s.to_string()),
            |flag, args| {
                if flag == "--wings" {
                    seen.push(args.usize_value("--wings")?);
                    Ok(true)
                } else {
                    Ok(false)
                }
            },
        )
        .unwrap();
        assert_eq!(seen, vec![2]);
        assert!(opts.csv);
        assert_eq!(opts.cfg.scale, 16, "base flags after extra flags still parse");
    }

    fn sweep(args: &[&str]) -> (HarnessOptions, SweepCli) {
        let mut cli = SweepCli::default();
        let opts = HarnessOptions::from_args_with(args.iter().map(|s| s.to_string()), |f, a| {
            cli.accept(f, a)
        })
        .expect("sweep args parse");
        (opts, cli)
    }

    #[test]
    fn sweep_flags_build_a_grid() {
        let (opts, cli) =
            sweep(&["--ids", "1,2", "--kinds", "naive,proposed", "--shard", "1/3", "--quick"]);
        assert_eq!(cli.spec.ids, vec![1, 2]);
        assert_eq!(cli.spec.kinds.len(), 2);
        assert_eq!(cli.shard, Some((1, 3)));
        assert_eq!(opts.cfg, ExpConfig::quick(), "base flags co-exist with sweep flags");
    }

    #[test]
    fn sweep_shard_and_gc_flags_validate() {
        let err = |args: &[&str]| {
            let mut cli = SweepCli::default();
            HarnessOptions::from_args_with(args.iter().map(|s| s.to_string()), |f, a| {
                cli.accept(f, a)
            })
            .unwrap_err()
        };
        assert!(err(&["--shard", "3/3"]).message.contains("K < N"));
        assert!(err(&["--shard", "nope"]).message.contains("K < N"));
        assert!(err(&["--ids", "99"]).message.contains("Table I"));

        let (_, cli) = sweep(&["--gc-max-kb", "64", "--gc-max-age-days", "7"]);
        let policy = cli.gc_policy().expect("budget flags imply --gc");
        assert_eq!(policy.max_bytes, Some(64 * 1024));
        assert_eq!(policy.max_age_secs, Some(7 * 24 * 3600));
        let (_, cli) = sweep(&["--ids", "1"]);
        assert!(cli.gc_policy().is_none());
    }

    #[test]
    fn scenario_flags_build_the_cell_axes() {
        let (_, cli) = sweep(&["--backend", "spacea,hbm", "--format", "all", "--partition", "nnz"]);
        assert_eq!(cli.spec.backends.len(), 2);
        assert_eq!(cli.spec.formats.len(), 4, "'all' expands to every format");
        assert_eq!(cli.spec.partitions.len(), 1);

        let err = {
            let mut cli = SweepCli::default();
            HarnessOptions::from_args_with(
                ["--backend".to_string(), "fpga".to_string()].into_iter(),
                |f, a| cli.accept(f, a),
            )
            .unwrap_err()
        };
        assert!(err.message.contains("unknown backend"), "{}", err.message);
    }

    #[test]
    fn faults_flag_parses_indices_and_plans() {
        let (_, cli) = sweep(&["--faults", "0:stall-vault=2@100; panic", "--ids", "1"]);
        assert_eq!(cli.faults.len(), 2);
        assert_eq!(cli.faults[0].0, Some(0));
        assert_eq!(cli.faults[0].1.stall_vault, Some((2, 100)));
        assert_eq!(cli.faults[1].0, None);
        assert!(cli.faults[1].1.panic_on_run);

        let err = |args: &[&str]| {
            let mut cli = SweepCli::default();
            HarnessOptions::from_args_with(args.iter().map(|s| s.to_string()), |f, a| {
                cli.accept(f, a)
            })
            .unwrap_err()
        };
        assert!(err(&["--faults", "0:bogus=1"]).message.contains("--faults"));
        assert!(err(&["--faults", "x:panic"]).message.contains("point index"));
    }

    #[test]
    fn timeline_flag_parses_bare_and_with_cadence() {
        let (_, cli) = sweep(&["--ids", "1"]);
        assert_eq!(cli.timeline, None);
        assert!(cli.timeline_config(Path::new("c")).is_none());

        let (_, cli) = sweep(&["--timeline", "--ids", "1"]);
        assert_eq!(cli.timeline, Some(0));
        let cfg = cli.timeline_config(Path::new("c")).unwrap();
        assert_eq!(cfg.dir(), Path::new("c/timelines"));
        assert_eq!(cfg.observe, spacea_harness::ObserveConfig::default());

        let (_, cli) = sweep(&["--timeline=512"]);
        assert_eq!(cli.timeline, Some(512));
        let cfg = cli.timeline_config(Path::new("c")).unwrap();
        assert_eq!(cfg.observe.every, 512);

        let err = {
            let mut cli = SweepCli::default();
            HarnessOptions::from_args_with(["--timeline=soon".to_string()].into_iter(), |f, a| {
                cli.accept(f, a)
            })
            .unwrap_err()
        };
        assert!(err.message.contains("cycle count"), "{}", err.message);
    }

    #[test]
    fn spec_file_overlays_with_cli_axes() {
        let dir = std::env::temp_dir().join(format!("spacea-speccli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.spec");
        std::fs::write(&path, "ids = 1,2\nscales = 256\n").unwrap();
        let (_, cli) = sweep(&["--spec", path.to_str().unwrap(), "--ids", "3"]);
        assert_eq!(cli.spec.ids, vec![3], "CLI axis overrides the file");
        assert_eq!(cli.spec.scales, vec![256], "file axes not overridden survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
