//! Shared plumbing for the experiment harness binaries.
//!
//! Every paper table/figure has a binary in `src/bin/` (run with
//! `cargo run --release -p spacea-bench --bin fig5`); all of them accept the
//! same flags:
//!
//! * `--scale N` — Table I matrix down-scale factor (default 8)
//! * `--graph-scale N` — Table III graph down-scale factor (default 256)
//! * `--cubes N` — cube count of the machine under test (default 2)
//! * `--quick` — the miniature smoke-test configuration
//! * `--csv` — emit CSV instead of aligned text

#![warn(missing_docs)]

use spacea_arch::HwConfig;
use spacea_core::experiments::{ExpConfig, ExpOutput, SuiteCache};
use spacea_mapping::MachineShape;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// The experiment configuration.
    pub cfg: ExpConfig,
    /// Emit CSV instead of text tables.
    pub csv: bool,
}

/// Parses harness options from an argument iterator.
///
/// Unknown flags abort with a usage message; this is a harness, not a public
/// CLI, so the parser is intentionally tiny.
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> HarnessOptions {
    let mut cfg = ExpConfig::default();
    let mut csv = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut next_usize = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{what} needs a positive integer")))
        };
        match arg.as_str() {
            "--scale" => cfg.scale = next_usize("--scale").max(1),
            "--graph-scale" => cfg.graph_scale = next_usize("--graph-scale").max(1),
            "--cubes" => {
                let cubes = next_usize("--cubes").max(1);
                let shape = MachineShape { cubes, ..cfg.hw.shape };
                cfg.hw = HwConfig { shape, ..cfg.hw };
            }
            "--quick" => cfg = ExpConfig::quick(),
            "--csv" => csv = true,
            "--help" | "-h" => usage("usage"),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    HarnessOptions { cfg, csv }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "flags: --scale N | --graph-scale N | --cubes N | --quick | --csv"
    );
    std::process::exit(2)
}

/// Parses the process arguments and builds the shared cache.
pub fn harness() -> (SuiteCache, bool) {
    let opts = parse_args(std::env::args().skip(1));
    let csv = opts.csv;
    (SuiteCache::new(opts.cfg), csv)
}

/// Prints one experiment's tables in the selected format.
pub fn emit(out: &ExpOutput, csv: bool) {
    if csv {
        print!("{}", out.table.to_csv());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_csv());
        }
    } else {
        print!("{}", out.table.to_text());
        for t in &out.extra_tables {
            println!();
            print!("{}", t.to_text());
        }
    }
    if !out.headline.is_empty() && !csv {
        println!();
        println!("paper vs measured:");
        for (name, paper, measured) in &out.headline {
            println!("  {name}: paper {paper:.3} | measured {measured:.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessOptions {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.cfg.scale, 8);
        assert!(!o.csv);
    }

    #[test]
    fn scale_flag() {
        assert_eq!(parse(&["--scale", "128"]).cfg.scale, 128);
    }

    #[test]
    fn cubes_flag() {
        assert_eq!(parse(&["--cubes", "4"]).cfg.hw.shape.cubes, 4);
    }

    #[test]
    fn quick_flag() {
        let o = parse(&["--quick"]);
        assert_eq!(o.cfg, ExpConfig::quick());
    }

    #[test]
    fn csv_flag() {
        assert!(parse(&["--csv"]).csv);
    }
}
