//! Section VII check: SpaceA realized on HBM-like stacks vs the HMC-like
//! default, under an equivalent configuration (same PE count, same aggregate
//! channel bandwidth). The paper claims "similar performance and power";
//! this harness quantifies the similarity over the Table I suite.
//!
//! Run: `cargo run --release -p spacea-bench --bin hbm_comparison [--scale N]`

use spacea_arch::HwConfig;
use spacea_core::experiments::MapKind;
use spacea_core::table::{fmt, geo_mean, Table};

fn main() {
    let mut session = spacea_bench::harness();
    let csv = session.csv;
    let cache = &mut session.cache;
    let hmc = cache.cfg.hw.clone();
    let hbm = HwConfig::hbm_like();

    let mut table = Table::new(
        "Section VII: HMC-like vs HBM-like realization (equivalent configuration)",
        &["ID", "Matrix", "HMC cycles", "HBM cycles", "HBM/HMC"],
    );
    let ids: Vec<(u8, String)> =
        cache.entries().iter().map(|e| (e.id, e.name.to_string())).collect();
    let mut ratios = Vec::new();
    for (id, name) in ids {
        let r_hmc = cache.sim_with(id, MapKind::Proposed, &hmc);
        let r_hbm = cache.sim_with(id, MapKind::Proposed, &hbm);
        let ratio = r_hbm.cycles as f64 / r_hmc.cycles as f64;
        ratios.push(ratio);
        table.push_row(vec![
            id.to_string(),
            name,
            r_hmc.cycles.to_string(),
            r_hbm.cycles.to_string(),
            fmt(ratio, 3),
        ]);
    }
    table.push_row(vec![
        "-".into(),
        "Geo. Mean".into(),
        "-".into(),
        "-".into(),
        fmt(geo_mean(&ratios), 3),
    ]);
    table.push_note(
        "the paper (Section VII) argues both memory technologies give similar performance; \
         a geo-mean ratio near 1.0 confirms it in this model",
    );
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
}
