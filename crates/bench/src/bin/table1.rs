//! Harness binary regenerating the paper's table1 artifact.
//! Run: `cargo run --release -p spacea-bench --bin table1 [--scale N] [--cubes N] [--csv]`

fn main() {
    let mut session = spacea_bench::harness();
    let out = spacea_core::experiments::table1::run(&mut session.cache);
    session.emit(&out);
}
