//! Harness binary regenerating the paper's fig8 artifact.
//! Run: `cargo run --release -p spacea-bench --bin fig8 [--scale N] [--cubes N] [--jobs N] [--no-cache] [--csv]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::fig8::jobs);
    let out = spacea_core::experiments::fig8::run(&mut session.cache);
    session.emit(&out);
}
