//! Diagnostic: per-bank-group input-vector working set vs L1 CAM capacity.
//! Not part of the paper's artifacts; used to validate the locality model.

use spacea_core::experiments::MapKind;
use spacea_mapping::placement::pe_column_sets;

fn main() {
    let mut session = spacea_bench::harness();
    let cache = &mut session.cache;
    let shape = cache.cfg.hw.shape;
    let cam_blocks = cache.cfg.hw.l1_cam.sets * cache.cfg.hw.l1_cam.ways;
    println!("L1 CAM capacity: {cam_blocks} blocks ({} elements)", cam_blocks * 4);
    for id in [1u8, 9, 13] {
        let a = cache.matrix(id);
        let mapping = cache.mapping(id, MapKind::Proposed);
        let sets = pe_column_sets(&a, &mapping.assignment);
        let bgs = shape.product_bank_groups();
        let k = shape.banks_per_bg;
        let mut bg_unique = Vec::new();
        let mut bg_blocks = Vec::new();
        for bg in 0..bgs {
            let mut cols: Vec<u32> = (0..k)
                .flat_map(|b| {
                    let pe = mapping.placement.logical_at_slot(bg * k + b) as usize;
                    sets[pe].iter().copied()
                })
                .collect();
            cols.sort_unstable();
            cols.dedup();
            bg_unique.push(cols.len());
            let mut blocks: Vec<u32> = cols.iter().map(|c| c / 4).collect();
            blocks.dedup();
            bg_blocks.push(blocks.len());
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        let max = |v: &[usize]| *v.iter().max().unwrap_or(&0);
        let r = cache.sim(id, MapKind::Proposed);
        println!(
            "matrix {id}: mean unique cols/BG {:.0} (max {}), mean blocks/BG {:.0} (max {}), sim L1 hit {:.1}%, searches {} fills {}",
            mean(&bg_unique),
            max(&bg_unique),
            mean(&bg_blocks),
            max(&bg_blocks),
            r.l1_hit_rate * 100.0,
            r.activity.l1_cam.searches(),
            r.activity.l1_cam.fills,
        );
    }
}
