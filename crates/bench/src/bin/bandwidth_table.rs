//! The Section II-C bandwidth arithmetic, computed from the configured
//! machine: per-bank, per-vault TSV, cube-internal, and external SerDes
//! bandwidths — the motivation table for near-bank processing ("2 TB/s
//! internal bandwidth at the bank-level, which is 8 times ... TSV").
//!
//! Run: `cargo run --release -p spacea-bench --bin bandwidth_table [--cubes N]`

use spacea_core::table::{fmt, Table};

fn main() {
    let session = spacea_bench::harness();
    let csv = session.csv;
    let cache = &session.cache;
    let hw = &cache.cfg.hw;
    let shape = hw.shape;

    // 1 GHz clock: bytes/cycle == GB/s.
    let bank_gbs = hw.timing.beat_bytes as f64 / hw.timing.t_ccd as f64;
    let banks_per_cube =
        shape.vaults_per_cube * (shape.product_bgs_per_vault + 1) * shape.banks_per_bg;
    let bank_level_cube = bank_gbs * banks_per_cube as f64;
    let tsv_cube = (hw.tsv_bytes_per_cycle * shape.vaults_per_cube) as f64;
    let serdes_cube = (hw.serdes_bytes_per_cycle * 4) as f64; // 4 mesh links

    let mut t = Table::new(
        "Section II-C: bandwidth hierarchy of the configured machine (GB/s)",
        &["Level", "Per unit", "Per cube", "Whole machine"],
    );
    t.push_row(vec![
        "DRAM bank interface".into(),
        fmt(bank_gbs, 1),
        fmt(bank_level_cube, 0),
        fmt(bank_level_cube * shape.cubes as f64, 0),
    ]);
    t.push_row(vec![
        "TSV (vault slice)".into(),
        fmt(hw.tsv_bytes_per_cycle as f64, 1),
        fmt(tsv_cube, 0),
        fmt(tsv_cube * shape.cubes as f64, 0),
    ]);
    t.push_row(vec![
        "SerDes links".into(),
        fmt(hw.serdes_bytes_per_cycle as f64, 1),
        fmt(serdes_cube, 0),
        fmt(serdes_cube * shape.cubes as f64, 0),
    ]);
    t.push_note(format!(
        "bank-level / TSV ratio: {:.1}x (the paper's Section II-C quotes 8x for the 16-vault, 256-bank cube)",
        bank_level_cube / tsv_cube
    ));
    t.push_note(format!(
        "paper's arithmetic at paper scale: 256 banks x 8 GB/s = 2 TB/s internal vs 256 GB/s TSV; this machine: {} banks/cube x {} GB/s",
        banks_per_cube,
        fmt(bank_gbs, 1)
    ));
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_text());
    }
}
