//! Harness binary regenerating the paper's Table II (area / power density).
//! Run: `cargo run --release -p spacea-bench --bin table2`

fn main() {
    let session = spacea_bench::harness();
    let out = spacea_core::experiments::table2::run();
    session.emit(&out);
}
