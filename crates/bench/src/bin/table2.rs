//! Harness binary regenerating the paper's Table II (area / power density).
//! Run: `cargo run --release -p spacea-bench --bin table2`

fn main() {
    let (_cache, csv) = spacea_bench::harness();
    let out = spacea_core::experiments::table2::run();
    spacea_bench::emit(&out, csv);
}
