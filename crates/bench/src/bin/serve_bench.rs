//! Service throughput benchmark: cycles/request and requests/sec as a
//! function of fused batch width.
//!
//! Drives the [`spacea_serve::ServeEngine`] directly (no TCP, no queue
//! jitter) so the cycle numbers are exactly the simulator's and therefore
//! deterministic: the snapshot in `BENCH_serve.json` is a ratchet the same
//! way `lint-baseline.json` is. Run:
//!
//! * `serve_bench` — print the table and assert batching amortizes
//!   (cycles/request at batch 16 below batch 1).
//! * `serve_bench --write` — refresh `BENCH_serve.json`.
//! * `serve_bench --check BENCH_serve.json` — fail on any cycle regression
//!   against the snapshot; improvements also fail, with a "refresh with
//!   --write" hint, so the snapshot always matches HEAD (CI runs this).

use spacea_harness::json::{parse, Json};
use spacea_serve::{seeded_vector, ServeConfig, ServeEngine};
use std::time::Instant;

const MATRICES: [(u8, usize); 2] = [(1, 256), (3, 256)];
const BATCHES: [usize; 3] = [1, 4, 16];

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    matrix: String,
    batch: usize,
    cycles: u64,
}

fn main() {
    let mut write = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write" => write = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("serve_bench: --check needs a snapshot file");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("serve_bench: unknown flag '{other}' (flags: --write | --check FILE)");
                std::process::exit(2);
            }
        }
    }

    let entries = measure();
    if let Some(path) = check {
        check_snapshot(&entries, &path);
        println!("serve_bench: snapshot {path} matches");
        return;
    }
    if write {
        std::fs::write("BENCH_serve.json", snapshot_json(&entries)).unwrap_or_else(|e| {
            eprintln!("serve_bench: cannot write BENCH_serve.json: {e}");
            std::process::exit(1);
        });
        println!("serve_bench: BENCH_serve.json refreshed");
    }
}

/// Runs the grid and prints the table; asserts batching amortizes.
fn measure() -> Vec<Entry> {
    let cache_dir = std::path::PathBuf::from("target/spacea-serve-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let engine = ServeEngine::new(ServeConfig::quick(&cache_dir));
    let mut entries = Vec::new();
    println!(
        "{:<8} {:>6} {:>12} {:>14} {:>12}",
        "matrix", "batch", "cycles", "cycles/req", "req/s"
    );
    for (id, scale) in MATRICES {
        let info = engine.register_suite(id, scale).unwrap_or_else(|e| {
            eprintln!("serve_bench: register m{id}/{scale} failed: {e}");
            std::process::exit(1);
        });
        let label = format!("m{id}/{scale}");
        let mut cpr_first = f64::NAN;
        let mut cpr_last = f64::NAN;
        for batch in BATCHES {
            let xs: Vec<Vec<f64>> =
                (0..batch as u64).map(|s| seeded_vector(info.cols, s)).collect();
            let wall = Instant::now();
            let rep = engine.run_batch(info.key, &xs).unwrap_or_else(|e| {
                eprintln!("serve_bench: {label} batch {batch} failed: {e}");
                std::process::exit(1);
            });
            let elapsed = wall.elapsed().as_secs_f64();
            let cycles = rep.report.cycles;
            let cpr = cycles as f64 / batch as f64;
            // requests/sec is host wall clock — informational only, never
            // part of the deterministic snapshot.
            let rps = batch as f64 / elapsed.max(1e-9);
            println!("{label:<8} {batch:>6} {cycles:>12} {cpr:>14.1} {rps:>12.1}");
            if batch == BATCHES[0] {
                cpr_first = cpr;
            }
            cpr_last = cpr;
            entries.push(Entry { matrix: label.clone(), batch, cycles });
        }
        if cpr_last >= cpr_first {
            eprintln!(
                "serve_bench: {label}: batching failed to amortize \
                 ({cpr_last:.1} cycles/req fused vs {cpr_first:.1} solo)"
            );
            std::process::exit(1);
        }
    }
    entries
}

fn snapshot_json(entries: &[Entry]) -> String {
    let arr = entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("matrix", Json::Str(e.matrix.clone())),
                ("batch", Json::U64(e.batch as u64)),
                ("cycles", Json::U64(e.cycles)),
            ])
        })
        .collect();
    let mut text =
        Json::obj(vec![("version", Json::U64(1)), ("entries", Json::Arr(arr))]).to_text();
    text.push('\n');
    text
}

fn load_snapshot(path: &str) -> Vec<Entry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot read {path}: {e} (generate it with --write)");
        std::process::exit(1);
    });
    let v = parse(&text).unwrap_or_else(|e| {
        eprintln!("serve_bench: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let Some(arr) = v.get("entries").and_then(Json::as_arr) else {
        eprintln!("serve_bench: {path} has no \"entries\" array");
        std::process::exit(1);
    };
    arr.iter()
        .filter_map(|e| {
            Some(Entry {
                matrix: e.get("matrix")?.as_str()?.to_string(),
                batch: e.get("batch")?.as_u64()? as usize,
                cycles: e.get("cycles")?.as_u64()?,
            })
        })
        .collect()
}

/// The ratchet: HEAD must match the snapshot exactly. Regressions fail
/// outright; improvements fail too, with a refresh hint, so the committed
/// snapshot always documents the current cost.
fn check_snapshot(entries: &[Entry], path: &str) {
    let old = load_snapshot(path);
    let mut failures = 0usize;
    for e in entries {
        let Some(prev) = old.iter().find(|o| o.matrix == e.matrix && o.batch == e.batch) else {
            eprintln!(
                "serve_bench: {path} lacks {}/batch {} — refresh with --write",
                e.matrix, e.batch
            );
            failures += 1;
            continue;
        };
        if e.cycles > prev.cycles {
            eprintln!(
                "serve_bench: REGRESSION {} batch {}: {} cycles, snapshot {}",
                e.matrix, e.batch, e.cycles, prev.cycles
            );
            failures += 1;
        } else if e.cycles < prev.cycles {
            eprintln!(
                "serve_bench: improvement {} batch {}: {} cycles, snapshot {} — refresh with --write",
                e.matrix, e.batch, e.cycles, prev.cycles
            );
            failures += 1;
        }
    }
    if entries.len() != old.len() {
        eprintln!(
            "serve_bench: entry count changed ({} vs {}) — refresh with --write",
            entries.len(),
            old.len()
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
