//! Runs every experiment in paper order and prints all tables plus a final
//! paper-vs-measured summary — the data behind EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p spacea-bench --bin all_experiments
//! [--scale N] [--graph-scale N] [--cubes N] [--quick] [--csv]`

use std::time::Instant;

fn main() {
    let (mut cache, csv) = spacea_bench::harness();
    let started = Instant::now();
    let outputs = spacea_core::experiments::run_all(&mut cache);
    for out in &outputs {
        spacea_bench::emit(out, csv);
        println!();
    }
    if !csv {
        println!("## Paper vs measured summary");
        for out in &outputs {
            for (name, paper, measured) in &out.headline {
                println!("  [{}] {name}: paper {paper:.3} | measured {measured:.3}", out.id);
            }
        }
        eprintln!("total harness time: {:.1}s", started.elapsed().as_secs_f64());
    }
}
