//! Runs every experiment in paper order and prints all tables plus a final
//! paper-vs-measured summary — the data behind EXPERIMENTS.md.
//!
//! All expensive work (GPU model runs, SpaceA simulations) is enumerated via
//! the experiment registry, computed in parallel on `--jobs` workers into
//! the persistent result cache, and rendered from cache afterwards — so the
//! tables are byte-identical for any worker count, and a second invocation
//! is answered almost entirely from `target/spacea-cache/`.
//!
//! Run: `cargo run --release -p spacea-bench --bin all_experiments
//! [--scale N] [--graph-scale N] [--cubes N] [--quick] [--jobs N]
//! [--no-cache] [--csv]`

use std::time::Instant;

fn main() {
    let mut session = spacea_bench::harness();
    let started = Instant::now();

    let jobs = spacea_core::experiments::all_jobs(&session.opts.cfg);
    let manifest = session.prewarm(jobs);

    let outputs = spacea_core::experiments::run_all(&mut session.cache);
    for out in &outputs {
        session.emit(out);
        println!();
    }
    if !session.csv {
        println!("## Paper vs measured summary");
        for out in &outputs {
            for (name, paper, measured) in &out.headline {
                println!("  [{}] {name}: paper {paper:.3} | measured {measured:.3}", out.id);
            }
        }
    }
    eprint!("{}", manifest.summary());
    match session.write_manifest(&manifest) {
        Ok(path) => eprintln!("harness: run manifest written to {}", path.display()),
        Err(e) => eprintln!("harness: could not write run manifest: {e}"),
    }
    eprintln!("total harness time: {:.1}s", started.elapsed().as_secs_f64());
}
