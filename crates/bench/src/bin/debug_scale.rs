//! Diagnostic: where the cycles go as the cube count scales (Figure 10).

use spacea_arch::HwConfig;
use spacea_core::experiments::MapKind;
use spacea_mapping::MachineShape;

fn main() {
    let mut session = spacea_bench::harness();
    let cache = &mut session.cache;
    for id in [1u8, 9, 14] {
        for cubes in [2usize, 4, 8] {
            let shape = MachineShape { cubes, ..cache.cfg.hw.shape };
            let hw = HwConfig { shape, ..cache.cfg.hw.clone() };
            let r = cache.sim_with(id, MapKind::Proposed, &hw);
            let nnz_per_pe = r.pe_work.iter().sum::<u64>() / r.pe_work.len() as u64;
            println!(
                "matrix {id} cubes {cubes}: cycles {} | nnz/PE {} | L1 hit {:.1}% | L2 hit {:.1}% | tsv {} | noc_bh {} | norm_wl {:.2}",
                r.cycles,
                nnz_per_pe,
                r.l1_hit_rate * 100.0,
                r.l2_hit_rate * 100.0,
                r.tsv_bytes,
                r.noc_byte_hops,
                r.normalized_workload,
            );
        }
    }
}
