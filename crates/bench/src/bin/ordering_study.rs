//! Ordering-sensitivity study: how much of each mapping strategy's benefit
//! depends on the matrix's row ordering.
//!
//! Real SuiteSparse matrices arrive bandwidth-reduced, so contiguous
//! chunking inherits locality for free. Shuffling the matrix destroys that;
//! RCM recovers it. Algorithm 1 regroups rows by column overlap and should
//! be far more robust to bad orderings — this harness quantifies exactly
//! that, which the paper's random-baseline comparison cannot show.
//!
//! Run: `cargo run --release -p spacea-bench --bin ordering_study [--scale N]`

use rand::seq::SliceRandom;
use rand::SeedableRng;
use spacea_arch::{Machine, RunSpec};
use spacea_core::table::{fmt, geo_mean, Table};
use spacea_mapping::{ChunkedMapping, LocalityMapping, MappingStrategy};
use spacea_matrix::reorder::{rcm, Permutation};
use spacea_matrix::Csr;

fn shuffled(a: &Csr, seed: u64) -> Csr {
    let mut order: Vec<u32> = (0..a.rows() as u32).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    Permutation::new(order).apply_symmetric(a)
}

fn main() {
    let mut session = spacea_bench::harness();
    let csv = session.csv;
    let cache = &mut session.cache;
    let hw = cache.cfg.hw.clone();
    let machine = Machine::new(hw.clone());

    // Structural matrices only: ordering is meaningless for the power-law
    // graphs (they have no band to destroy).
    let ids: Vec<u8> = cache.entries().iter().filter(|e| !e.is_power_law()).map(|e| e.id).collect();

    type Reordering = fn(&Csr) -> Csr;
    let orderings: [(&str, Reordering); 3] = [
        ("original", |a| a.clone()),
        ("shuffled", |a| shuffled(a, 0x5ACE_A0DD)),
        ("rcm-recovered", |a| {
            let s = shuffled(a, 0x5ACE_A0DD);
            rcm(&s).apply_symmetric(&s)
        }),
    ];

    let mut table = Table::new(
        "Ordering sensitivity: geo-mean cycles normalized to (original, proposed)",
        &["Ordering", "Proposed (Algorithm 1)", "Chunked (contiguous)"],
    );
    let mut base: Vec<f64> = Vec::new();
    for (label, transform) in orderings {
        let mut prop_ratio = Vec::new();
        let mut chunk_ratio = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            let a0 = cache.matrix(id);
            let a = transform(&a0);
            let x = cache.cfg.input_vector(a.cols());
            let run = |mapping: &spacea_mapping::Mapping| {
                let r = machine.run(RunSpec::spmv(&a, &x, mapping)).unwrap_or_else(|e| {
                    eprintln!("ordering_study: run failed: {e}");
                    std::process::exit(1)
                });
                r.report.cycles as f64
            };
            let prop = run(&LocalityMapping::default().map(&a, &hw.shape));
            let chunk = run(&ChunkedMapping.map(&a, &hw.shape));
            if base.len() <= k {
                base.push(prop); // (original, proposed) is the reference
            }
            prop_ratio.push(prop / base[k]);
            chunk_ratio.push(chunk / base[k]);
        }
        table.push_row(vec![
            label.into(),
            fmt(geo_mean(&prop_ratio), 3),
            fmt(geo_mean(&chunk_ratio), 3),
        ]);
    }
    table.push_note("1.0 = Algorithm 1 on the natural ordering; lower is faster");
    table.push_note(
        "chunking rides the natural ordering; Algorithm 1 is more robust when it is destroyed",
    );
    table.push_note(
        "both degrade under shuffling because a symmetric permutation also scatters column ids,          killing the 4-element-block spatial locality the CAMs cache; RCM restores it",
    );
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
}
