//! Harness binary regenerating the paper's fig6 artifact.
//! Run: `cargo run --release -p spacea-bench --bin fig6 [--scale N] [--cubes N] [--jobs N] [--no-cache] [--csv]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::fig6::jobs);
    let out = spacea_core::experiments::fig6::run(&mut session.cache);
    session.emit(&out);
}
