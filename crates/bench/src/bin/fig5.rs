//! Harness binary regenerating the paper's fig5 artifact.
//! Run: `cargo run --release -p spacea-bench --bin fig5 [--scale N] [--cubes N] [--jobs N] [--no-cache] [--csv]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::fig5::jobs);
    let out = spacea_core::experiments::fig5::run(&mut session.cache);
    session.emit(&out);
}
