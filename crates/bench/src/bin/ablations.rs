//! Ablation study for the design choices DESIGN.md calls out.
//!
//! Reports *simulated* cycles (not wall time) of the proposed design against
//! four cripple-one-mechanism variants:
//!
//! * `no-l1-cam` — L1 CAM reduced to a single entry (no input-vector reuse
//!   at the bank group).
//! * `no-l2-cam` — L2 CAM reduced to a single entry (no reuse at the vault).
//! * `no-dedup` — load-queue request deduplication disabled: every miss
//!   sends its own packet downstream.
//! * `naive-mapping` — the proposed hardware with the random mapping.
//!
//! Run: `cargo run --release -p spacea-bench --bin ablations [--scale N]`

use spacea_core::experiments::MapKind;
use spacea_core::table::{fmt, geo_mean, Table};

fn main() {
    let mut session = spacea_bench::harness();
    let csv = session.csv;
    let cache = &mut session.cache;
    let base_hw = cache.cfg.hw.clone();
    let ids: Vec<u8> = cache.entries().iter().map(|e| e.id).collect();

    let variants: Vec<(&str, spacea_arch::HwConfig, MapKind)> = vec![
        ("proposed", base_hw.clone(), MapKind::Proposed),
        (
            "no-l1-cam",
            {
                let mut hw = base_hw.clone();
                hw.l1_cam.sets = 1;
                hw.l1_cam.ways = 1;
                hw
            },
            MapKind::Proposed,
        ),
        (
            "no-l2-cam",
            {
                let mut hw = base_hw.clone();
                hw.l2_cam.sets = 1;
                hw.l2_cam.ways = 1;
                hw
            },
            MapKind::Proposed,
        ),
        (
            "no-dedup",
            {
                let mut hw = base_hw.clone();
                hw.ldq_dedup = false;
                hw
            },
            MapKind::Proposed,
        ),
        ("naive-mapping", base_hw.clone(), MapKind::Naive),
    ];

    let mut table = Table::new(
        "Ablations: simulated slowdown vs the full proposed design (geo-mean over Table I)",
        &["Variant", "Geo-mean slowdown", "Geo-mean TSV traffic ratio"],
    );
    let mut base_cycles = Vec::new();
    let mut base_tsv = Vec::new();
    for &id in &ids {
        let r = cache.sim_with(id, MapKind::Proposed, &base_hw);
        base_cycles.push(r.cycles as f64);
        base_tsv.push(r.tsv_bytes.max(1) as f64);
    }
    for (name, hw, kind) in &variants {
        let mut slowdowns = Vec::new();
        let mut tsv_ratios = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            let r = cache.sim_with(id, *kind, hw);
            slowdowns.push(r.cycles as f64 / base_cycles[k]);
            tsv_ratios.push(r.tsv_bytes.max(1) as f64 / base_tsv[k]);
        }
        table.push_row(vec![
            name.to_string(),
            fmt(geo_mean(&slowdowns), 3),
            fmt(geo_mean(&tsv_ratios), 3),
        ]);
    }
    // Chunked (contiguous equal-nnz) mapping is not part of the paper's
    // comparison, so it is simulated directly rather than through the cache.
    {
        use spacea_mapping::{ChunkedMapping, MappingStrategy};
        let mut slowdowns = Vec::new();
        let mut tsv_ratios = Vec::new();
        for (k, &id) in ids.iter().enumerate() {
            let a = cache.matrix(id);
            let mapping = ChunkedMapping.map(&a, &base_hw.shape);
            let x = cache.cfg.input_vector(a.cols());
            let r = spacea_arch::Machine::new(base_hw.clone())
                .run(spacea_arch::RunSpec::spmv(&a, &x, &mapping))
                .map(|out| out.into_report())
                .unwrap_or_else(|e| {
                    eprintln!("ablations: chunked run failed: {e}");
                    std::process::exit(1)
                });
            slowdowns.push(r.cycles as f64 / base_cycles[k]);
            tsv_ratios.push(r.tsv_bytes.max(1) as f64 / base_tsv[k]);
        }
        table.push_row(vec![
            "chunked-mapping".into(),
            fmt(geo_mean(&slowdowns), 3),
            fmt(geo_mean(&tsv_ratios), 3),
        ]);
    }
    table.push_note("slowdown 1.0 = the full design; higher = that mechanism matters");
    table.push_note(
        "chunked-mapping = contiguous equal-nnz row chunks: inherits ordering locality but cannot regroup rows",
    );
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
}
