//! Render one simulation's observability timeline — or validate an exported
//! artifact.
//!
//! Run mode: `cargo run --release -p spacea-bench --bin timeline --
//! [--id N] [--kind naive|proposed] [--scale N] [--every CYCLES]
//! [--capacity WINDOWS] [--out FILE]` simulates one Table I matrix with the
//! cycle-windowed sampler armed, writes the Chrome-trace JSON (default
//! `timeline.json`), and prints a per-gauge sparkline summary to stdout.
//! Load the JSON at <https://ui.perfetto.dev>: one thread track per vault,
//! one counter track per gauge, duration slices for X/Y traffic.
//!
//! Validate mode: `timeline -- --validate FILE` parses an exported artifact
//! and checks it is well-formed Chrome trace-event JSON (exit 1 if not),
//! printing the event and track counts — the CI smoke test runs this over
//! every artifact a sweep produced.

use spacea_arch::{Machine, ObserveConfig, RunSpec};
use spacea_bench::{ArgError, HarnessOptions};
use spacea_core::experiments::MapKind;
use spacea_obs::json::validate_chrome_trace;
use spacea_obs::Cycle;

const TIMELINE_USAGE: &str = "timeline: --validate FILE | --id N | --kind naive|proposed | \
     --every CYCLES | --capacity WINDOWS | --out FILE";

fn main() {
    let mut validate: Option<String> = None;
    let mut id = 1u8;
    let mut kind = MapKind::Proposed;
    let mut observe = ObserveConfig::default();
    let mut out_path = String::from("timeline.json");
    let opts = HarnessOptions::from_args_with(std::env::args().skip(1), |flag, args| {
        match flag {
            "--validate" => validate = Some(args.value("--validate")?),
            "--id" => {
                id = args.usize_value("--id")?.try_into().map_err(|_| {
                    ArgError::new("--id needs a Table I matrix id (fits in a byte)")
                })?;
            }
            "--kind" => {
                kind = match args.value("--kind")?.as_str() {
                    "naive" => MapKind::Naive,
                    "proposed" => MapKind::Proposed,
                    other => {
                        return Err(ArgError::new(format!(
                            "--kind needs naive or proposed, got '{other}'"
                        )))
                    }
                };
            }
            "--every" => observe.every = args.usize_value("--every")? as Cycle,
            "--capacity" => observe.capacity = args.usize_value("--capacity")?.max(2),
            "--out" => out_path = args.value("--out")?,
            _ => return Ok(false),
        }
        Ok(true)
    })
    .unwrap_or_else(|e| e.exit_with_usage(TIMELINE_USAGE));

    if let Some(path) = validate {
        validate_file(&path);
        return;
    }

    let mut session = spacea_bench::HarnessSession::from_opts(opts);
    let cache = &mut session.cache;
    let a = cache.matrix(id);
    let mapping = cache.mapping(id, kind);
    let x = cache.cfg.input_vector(a.cols());
    let machine = Machine::new(cache.cfg.hw.clone());
    let out = machine.run(RunSpec::spmv(&a, &x, &mapping).observed(observe)).unwrap_or_else(|e| {
        eprintln!("timeline: observed run failed: {e}");
        std::process::exit(1)
    });
    let report = &out.report;
    let Some(timeline) = out.timeline else {
        eprintln!("timeline: observed run yielded no timeline");
        std::process::exit(1)
    };

    std::fs::write(&out_path, timeline.to_chrome_trace()).unwrap_or_else(|e| {
        eprintln!("timeline: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "matrix m{id} ({}) {}: {} cycles, sampled every {} cycles into ≤{} windows/series",
        a.rows(),
        kind.label(),
        report.cycles,
        observe.every,
        observe.capacity,
    );
    println!("wrote {out_path} — load it at https://ui.perfetto.dev");
    println!();
    print!("{}", timeline.summary());
}

/// Parses and validates one exported artifact, printing its shape; exits
/// non-zero on malformed input so CI can gate on it.
fn validate_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("timeline: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match validate_chrome_trace(&text) {
        Ok(summary) => {
            println!(
                "{path}: valid Chrome trace ({} counter events on {} tracks, {} slices, \
                 {} metadata records)",
                summary.counter_events,
                summary.counter_tracks.len(),
                summary.duration_events,
                summary.metadata_events,
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID Chrome trace: {e}");
            std::process::exit(1);
        }
    }
}
