//! Component-utilization study: where do the cycles go?
//!
//! The paper's Figure 8 discussion observes that for the poorly-behaved
//! matrices "DRAM banks and PEs are idle in most of the cycles" while
//! interconnect traffic dominates. This harness reports the busy fractions
//! of the Product-PEs, the matrix banks and the vector banks per Table I
//! matrix, confirming that claim quantitatively.
//!
//! Run: `cargo run --release -p spacea-bench --bin utilization [--scale N]`

use spacea_core::experiments::MapKind;
use spacea_core::table::{pct, Table};

fn main() {
    let mut session = spacea_bench::harness();
    let csv = session.csv;
    let cache = &mut session.cache;
    let mut table = Table::new(
        "Component busy fractions (proposed mapping)",
        &["ID", "Matrix", "PE busy", "Matrix banks busy", "Vector banks busy", "L1 hit"],
    );
    let mut idle_heavy: Vec<String> = Vec::new();
    for entry in cache.entries().to_vec() {
        let r = cache.sim(entry.id, MapKind::Proposed);
        table.push_row(vec![
            entry.id.to_string(),
            entry.name.to_string(),
            pct(r.pe_busy_fraction),
            pct(r.matrix_bank_busy_fraction),
            pct(r.vector_bank_busy_fraction),
            pct(r.l1_hit_rate),
        ]);
        if r.pe_busy_fraction < 0.25 && r.matrix_bank_busy_fraction < 0.25 {
            idle_heavy.push(entry.name.to_string());
        }
    }
    table.push_note(format!(
        "matrices where both PEs and matrix banks idle >75% of cycles: {} \
         (the paper singles out matrices 7, 12, 13 in its Figure 8 discussion)",
        if idle_heavy.is_empty() { "none".to_string() } else { idle_heavy.join(", ") }
    ));
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
}
