//! Chaos soak for the `spacea-serve` daemon: N seeded fault plans, one
//! live daemon each, and a lost/wrong-answer invariant checker.
//!
//! Each seed derives a deterministic [`ChaosPlan`] (exactly the one
//! `serve start --chaos-seed N` arms), boots a real daemon over a fresh
//! cache directory, and fires concurrent client traffic through whatever
//! the plan does to it — dropped connections, delayed accepts, killed and
//! wedged batches, stalled requests. The soak then enforces the core
//! serving invariant, which no chaos plan may ever break:
//!
//! * every request the client saw **succeed** is bitwise equal to the
//!   offline [`spacea_matrix::Csr::spmv`] reference AND present in the
//!   write-ahead acknowledgment journal;
//! * every journal record hashes to the correct output — a record can
//!   prove an answer was given, never a wrong one;
//! * every request that did **not** succeed carries an explicit coded
//!   rejection (`overloaded`, `deadline-exceeded`, `internal`) — a
//!   transport dead-end after retries means a request was silently lost
//!   and fails the soak;
//! * a **second life** of the daemon over the same cache directory —
//!   with the plan's mapping-corruption faults biting at startup — heals
//!   the damage and answers every journaled request correctly again.
//!
//! `serve_chaos --seeds 8` runs seeds 0..8 (the CI smoke);
//! `serve_chaos --seed K` replays one failing seed deterministically.

use spacea_serve::{
    run_daemon, seeded_vector, vec_hash, AckJournal, CallError, ChaosPlan, Client, ServeConfig,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const MATRICES: [(u8, usize); 2] = [(1, 256), (2, 256)];
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

fn main() {
    let mut seeds: Vec<u64> = Vec::new();
    let mut count = 8u64;
    let mut requests = 6usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |what: &str| {
            args.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("serve_chaos: {what} needs an unsigned integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => count = need("--seeds"),
            "--seed" => seeds.push(need("--seed")),
            "--requests" => requests = need("--requests") as usize,
            other => {
                eprintln!(
                    "serve_chaos: unknown flag '{other}' \
                     (flags: --seeds N | --seed K | --requests R)"
                );
                std::process::exit(2);
            }
        }
    }
    if seeds.is_empty() {
        seeds = (0..count).collect();
    }
    let root = PathBuf::from("target/spacea-serve-chaos");

    let mut failed = Vec::new();
    for &seed in &seeds {
        let plan = ChaosPlan::from_seed(seed);
        match soak_seed(seed, requests.max(1), &root) {
            Ok(summary) => println!("seed {seed:>3} [{plan}]: {summary}"),
            Err(e) => {
                eprintln!("seed {seed:>3} [{plan}]: FAILED: {e}");
                failed.push(seed);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "serve_chaos: {} seeded plan(s), zero lost, zero wrong-but-successful",
            seeds.len()
        );
    } else {
        for seed in &failed {
            eprintln!("serve_chaos: replay deterministically with: serve_chaos --seed {seed}");
        }
        std::process::exit(1);
    }
}

/// One request the soak fired: enough to recompute the offline truth.
#[derive(Debug, Clone)]
struct Shot {
    matrix: u64,
    req_seed: u64,
    x_hash: u64,
    y_hash: u64,
}

/// Runs one seed's full scenario; `Ok` carries a one-line summary.
fn soak_seed(seed: u64, requests: usize, root: &Path) -> Result<String, String> {
    let plan = ChaosPlan::from_seed(seed);
    let dir = root.join(format!("seed-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Life 1: the full plan against concurrent traffic. -------------
    let cfg = ServeConfig {
        chaos: plan,
        // Small enough that concurrent clients can actually cross it.
        shed_mark: 4,
        retry_backoff: Duration::from_millis(2),
        ..ServeConfig::quick(&dir)
    };
    let daemon = std::thread::Builder::new()
        .name(format!("chaos-daemon-{seed}"))
        .spawn({
            let cfg = cfg.clone();
            move || run_daemon(cfg, 0)
        })
        .map_err(|e| format!("cannot spawn daemon thread: {e}"))?;

    // Register through the chaos (a dropped admin connection is retried).
    let mut truth: BTreeMap<u64, (u64, Vec<f64>)> = BTreeMap::new(); // x_hash -> (matrix, y)
    let mut keys = Vec::new();
    let mut offline = Vec::new();
    for (id, scale) in MATRICES {
        let reply = with_retry(&dir, |c| c.register(id, scale))
            .map_err(|e| format!("register m{id}/{scale}: {e}"))?;
        let a = spacea_matrix::suite::entry_by_id(id)
            .ok_or_else(|| format!("suite id {id} vanished"))?
            .generate(scale);
        keys.push((reply.matrix, reply.cols));
        offline.push(a);
    }
    let mut shots = Vec::new();
    for i in 0..requests {
        let (key, cols) = keys[i % keys.len()];
        let req_seed = i as u64;
        let x = seeded_vector(cols, req_seed);
        let y = offline[i % keys.len()].spmv(&x);
        let shot = Shot { matrix: key, req_seed, x_hash: vec_hash(&x), y_hash: vec_hash(&y) };
        truth.insert(shot.x_hash, (key, y));
        shots.push(shot);
    }

    // Fire all requests concurrently so batching, shedding and the plan's
    // ordinal faults all see real contention.
    let outcomes: Vec<(Shot, Result<Vec<f64>, CallError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shots
            .iter()
            .map(|shot| {
                let shot = shot.clone();
                let dir = &dir;
                scope.spawn(move || {
                    let out =
                        with_retry(dir, |c| c.submit_within(shot.matrix, shot.req_seed, 2_000));
                    (shot, out.map(|o| o.y))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let dead = Shot { matrix: 0, req_seed: 0, x_hash: 0, y_hash: 0 };
                    (
                        dead,
                        Err(CallError {
                            code: "panic".into(),
                            message: "client thread panicked".into(),
                        }),
                    )
                })
            })
            .collect()
    });

    with_retry(&dir, Client::shutdown).map_err(|e| format!("shutdown: {e}"))?;
    join_daemon(daemon)?;

    // ---- Invariant check over life 1. ----------------------------------
    let mut acked = 0usize;
    let mut rejected = 0usize;
    let mut ok_hashes = Vec::new();
    for (shot, outcome) in &outcomes {
        match outcome {
            Ok(y) => {
                if vec_hash(y) != shot.y_hash {
                    return Err(format!(
                        "request (m={:016x}, seed={}) acknowledged WRONG: output diverges \
                         from the offline SpMV",
                        shot.matrix, shot.req_seed
                    ));
                }
                ok_hashes.push(shot.x_hash);
                acked += 1;
            }
            Err(e)
                if matches!(e.code.as_str(), "overloaded" | "deadline-exceeded" | "internal") =>
            {
                rejected += 1; // explicit coded rejection: allowed
            }
            Err(e) => {
                return Err(format!(
                    "request (m={:016x}, seed={}) was LOST: no acknowledgment and no \
                     coded rejection ({e})",
                    shot.matrix, shot.req_seed
                ));
            }
        }
    }
    let load = AckJournal::load(&dir.join(AckJournal::DIR));
    if load.corrupt_files != 0 {
        return Err(format!(
            "{} corrupt journal file(s) after a graceful shutdown",
            load.corrupt_files
        ));
    }
    for rec in &load.records {
        match truth.get(&rec.x_hash) {
            Some((key, y)) if *key == rec.matrix => {
                if vec_hash(y) != rec.y_hash {
                    return Err(format!(
                        "journal claims a WRONG answer for x_hash {:016x}",
                        rec.x_hash
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "journal holds a record for a request never sent (x_hash {:016x})",
                    rec.x_hash
                ));
            }
        }
    }
    for x_hash in &ok_hashes {
        if !load.records.iter().any(|r| r.x_hash == *x_hash) {
            return Err(format!(
                "acknowledged request (x_hash {x_hash:016x}) missing from the journal: \
                 the write-ahead contract was violated"
            ));
        }
    }

    // ---- Life 2: restart; the plan's startup corruption bites. ---------
    let life2 = ServeConfig {
        chaos: ChaosPlan {
            corrupt_map: plan.corrupt_map,
            truncate_map: plan.truncate_map,
            ..ChaosPlan::default()
        },
        ..ServeConfig::quick(&dir)
    };
    let corrupted = life2.chaos.corrupt_map.is_some() || life2.chaos.truncate_map.is_some();
    let daemon = std::thread::Builder::new()
        .name(format!("chaos-daemon-{seed}-life2"))
        .spawn(move || run_daemon(life2, 0))
        .map_err(|e| format!("cannot spawn life-2 daemon thread: {e}"))?;
    for (id, scale) in MATRICES {
        with_retry(&dir, |c| c.register(id, scale))
            .map_err(|e| format!("life 2 register m{id}/{scale}: {e}"))?;
    }
    if corrupted {
        let stat = with_retry(&dir, Client::stat).map_err(|e| format!("life 2 stat: {e}"))?;
        let healed =
            stat.get("mappings_healed").and_then(spacea_harness::json::Json::as_u64).unwrap_or(0);
        if healed == 0 {
            return Err("life 2 startup corruption was armed but nothing was healed".into());
        }
    }
    // Replay every journaled request: the restarted daemon must reproduce
    // each acknowledged answer bitwise from the healed cache.
    let mut replayed = 0usize;
    for shot in &shots {
        if !load.records.iter().any(|r| r.x_hash == shot.x_hash) {
            continue;
        }
        let out = with_retry(&dir, |c| c.submit_within(shot.matrix, shot.req_seed, 5_000))
            .map_err(|e| format!("life 2 replay (seed {}): {e}", shot.req_seed))?;
        if vec_hash(&out.y) != shot.y_hash {
            return Err(format!(
                "life 2 replay (seed {}) diverges from the journaled answer",
                shot.req_seed
            ));
        }
        replayed += 1;
    }
    with_retry(&dir, Client::shutdown).map_err(|e| format!("life 2 shutdown: {e}"))?;
    join_daemon(daemon)?;

    Ok(format!(
        "{acked} acked, {rejected} rejected (coded), {} journaled, {replayed} replayed \
         bitwise after restart",
        load.records.len()
    ))
}

/// Runs one call against a fresh connection, retrying transport failures
/// (chaos-dropped connections, the port-file race) with fresh connections.
/// Daemon-side coded rejections are final — they are the explicit outcome
/// the soak classifies, not something to paper over.
fn with_retry<T>(
    dir: &Path,
    mut call: impl FnMut(&mut Client) -> Result<T, CallError>,
) -> Result<T, CallError> {
    let mut last = CallError { code: "transport".into(), message: "never attempted".into() };
    for attempt in 0..4u32 {
        match Client::connect_dir_within(dir, CONNECT_PATIENCE) {
            Ok(mut client) => match call(&mut client) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transport() => last = e,
                Err(e) => return Err(e),
            },
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(5 << attempt));
    }
    Err(last)
}

fn join_daemon(handle: std::thread::JoinHandle<std::io::Result<()>>) -> Result<(), String> {
    match handle.join() {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("daemon exited with error: {e}")),
        Err(_) => Err("daemon thread panicked".to_string()),
    }
}
