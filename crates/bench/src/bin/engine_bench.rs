//! Event-engine throughput benchmark: events/sec of the calendar-queue
//! engine versus the reference `BinaryHeap` engine, plus a full-machine
//! suite-matrix run, ratcheted like `BENCH_serve.json`.
//!
//! Two kinds of numbers come out of a run:
//!
//! * **Deterministic** — per-workload event counts and replay checksums
//!   (and the suite run's cycles / events-processed), identical on every
//!   host. These are the snapshot in `BENCH_engine.json`.
//! * **Wall clock** — events/sec per engine and the calendar/heap speedup
//!   ratio. Host-dependent, so never snapshotted; every mode still asserts
//!   the calendar engine clears the [`MIN_SPEEDUP`] bar on the synthetic
//!   workloads.
//!
//! Run:
//!
//! * `engine_bench` — print the table, assert checksums agree between
//!   engines and the speedup bar holds.
//! * `engine_bench --write` — refresh `BENCH_engine.json`.
//! * `engine_bench --check BENCH_engine.json` — fail on any drift from the
//!   snapshot (regressions and improvements alike, with a "refresh with
//!   --write" hint), so the snapshot always matches HEAD (CI runs this).

use spacea_arch::{HwConfig, Machine, RunSpec};
use spacea_harness::json::{parse, Json};
use spacea_mapping::{LocalityMapping, MappingStrategy};
use spacea_sim::engine::reference::HeapQueue;
use spacea_sim::engine::EventQueue;
use spacea_sim::workload::{run_workload, standard_workloads, Workload};
use std::time::Instant;

/// The ratchet bar: aggregate calendar events/sec must be at least this
/// multiple of the heap engine's on the synthetic workloads.
const MIN_SPEEDUP: f64 = 1.5;

/// The suite matrix driven through the whole machine (id, down-scale).
const SUITE: (u8, usize) = (1, 256);

/// How often each timed measurement repeats; the fastest run counts, which
/// filters scheduler noise out of the speedup ratio.
const REPS: usize = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    workload: String,
    events: u64,
    checksum: u64,
}

fn main() {
    let mut write = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write" => write = true,
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("engine_bench: --check needs a snapshot file");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("engine_bench: unknown flag '{other}' (flags: --write | --check FILE)");
                std::process::exit(2);
            }
        }
    }

    let entries = measure();
    if let Some(path) = check {
        check_snapshot(&entries, &path);
        println!("engine_bench: snapshot {path} matches");
        return;
    }
    if write {
        std::fs::write("BENCH_engine.json", snapshot_json(&entries)).unwrap_or_else(|e| {
            eprintln!("engine_bench: cannot write BENCH_engine.json: {e}");
            std::process::exit(1);
        });
        println!("engine_bench: BENCH_engine.json refreshed");
    }
}

/// Fastest-of-[`REPS`] wall time for one workload on one engine,
/// cross-checking that every repetition replays the same event count and
/// checksum.
fn time_workload<Q, F>(w: &Workload, mut fresh: F) -> (u64, u64, f64)
where
    Q: spacea_sim::engine::DesQueue<u64>,
    F: FnMut() -> Q,
{
    let (mut events, mut checksum, mut best) = (0u64, 0u64, f64::INFINITY);
    for rep in 0..REPS {
        let mut q = fresh();
        let wall = Instant::now();
        let r = run_workload(w, &mut q);
        let secs = wall.elapsed().as_secs_f64();
        if rep == 0 {
            (events, checksum) = (r.events, r.checksum);
        } else if (events, checksum) != (r.events, r.checksum) {
            eprintln!("engine_bench: {} replays diverged across repetitions", w.name);
            std::process::exit(1);
        }
        best = best.min(secs);
    }
    (events, checksum, best)
}

/// Runs the synthetic grid on both engines plus the suite-matrix machine
/// run; prints the table and asserts the speedup bar.
fn measure() -> Vec<Entry> {
    println!(
        "{:<12} {:>10} {:>18} {:>14} {:>14} {:>8}",
        "workload", "events", "checksum", "cal Mev/s", "heap Mev/s", "speedup"
    );
    let mut entries = Vec::new();
    let (mut cal_events, mut cal_secs, mut heap_secs) = (0u64, 0.0f64, 0.0f64);
    for w in standard_workloads() {
        let (events, checksum, cal) = time_workload(&w, EventQueue::new);
        let (heap_events, heap_checksum, heap) = time_workload(&w, HeapQueue::new);
        if (events, checksum) != (heap_events, heap_checksum) {
            eprintln!(
                "engine_bench: {}: calendar and heap engines disagree \
                 ({events} ev {checksum:016x} vs {heap_events} ev {heap_checksum:016x})",
                w.name
            );
            std::process::exit(1);
        }
        println!(
            "{:<12} {events:>10} {checksum:>18x} {:>14.2} {:>14.2} {:>7.2}x",
            w.name,
            events as f64 / cal / 1e6,
            events as f64 / heap / 1e6,
            heap / cal
        );
        cal_events += events;
        cal_secs += cal;
        heap_secs += heap;
        entries.push(Entry { workload: w.name.to_string(), events, checksum });
    }
    let speedup = heap_secs / cal_secs;
    println!(
        "{:<12} {cal_events:>10} {:>18} {:>14.2} {:>14.2} {:>7.2}x",
        "aggregate",
        "-",
        cal_events as f64 / cal_secs / 1e6,
        cal_events as f64 / heap_secs / 1e6,
        speedup
    );
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "engine_bench: calendar engine speedup {speedup:.2}x is below the \
             {MIN_SPEEDUP}x bar over the BinaryHeap reference"
        );
        std::process::exit(1);
    }

    entries.push(suite_entry());
    entries
}

/// The full-machine workload: one suite-matrix SpMV through `Machine::run`.
/// Cycles and events-processed are deterministic; events/sec is printed for
/// context only.
fn suite_entry() -> Entry {
    let (id, scale) = SUITE;
    let source = spacea_harness::MatrixSource::Suite { id, scale };
    if let Err(e) = source.validate() {
        eprintln!("engine_bench: bad suite source: {e}");
        std::process::exit(1);
    }
    let a = source.generate();
    let hw = HwConfig::tiny();
    let mapping = LocalityMapping::default().map(&a, &hw.shape);
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    let machine = Machine::new(hw);
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..REPS {
        let wall = Instant::now();
        let r = machine.run(RunSpec::spmv(&a, &x, &mapping)).unwrap_or_else(|e| {
            eprintln!("engine_bench: suite run failed: {e}");
            std::process::exit(1);
        });
        best = best.min(wall.elapsed().as_secs_f64());
        report = Some(r.into_report());
    }
    let report = report.unwrap_or_else(|| {
        eprintln!("engine_bench: suite run produced no report");
        std::process::exit(1);
    });
    let label = format!("suite-m{id}/{scale}");
    println!(
        "{label:<12} {:>10} {:>18} {:>14.2} {:>14} {:>8}",
        report.events_processed,
        format!("{} cyc", report.cycles),
        report.events_processed as f64 / best / 1e6,
        "-",
        "-"
    );
    // The suite row rides the same exact-match ratchet: `events` is the
    // machine's events-processed count and `checksum` its cycle count.
    Entry { workload: label, events: report.events_processed, checksum: report.cycles }
}

fn snapshot_json(entries: &[Entry]) -> String {
    let arr = entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("workload", Json::Str(e.workload.clone())),
                ("events", Json::U64(e.events)),
                ("checksum", Json::U64(e.checksum)),
            ])
        })
        .collect();
    let mut text =
        Json::obj(vec![("version", Json::U64(1)), ("entries", Json::Arr(arr))]).to_text();
    text.push('\n');
    text
}

fn load_snapshot(path: &str) -> Vec<Entry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("engine_bench: cannot read {path}: {e} (generate it with --write)");
        std::process::exit(1);
    });
    let v = parse(&text).unwrap_or_else(|e| {
        eprintln!("engine_bench: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let Some(arr) = v.get("entries").and_then(Json::as_arr) else {
        eprintln!("engine_bench: {path} has no \"entries\" array");
        std::process::exit(1);
    };
    arr.iter()
        .filter_map(|e| {
            Some(Entry {
                workload: e.get("workload")?.as_str()?.to_string(),
                events: e.get("events")?.as_u64()?,
                checksum: e.get("checksum")?.as_u64()?,
            })
        })
        .collect()
}

/// The ratchet: HEAD's deterministic numbers must match the snapshot
/// exactly; any drift (either direction) fails with a refresh hint so the
/// committed snapshot always documents the current behaviour.
fn check_snapshot(entries: &[Entry], path: &str) {
    let old = load_snapshot(path);
    let mut failures = 0usize;
    for e in entries {
        let Some(prev) = old.iter().find(|o| o.workload == e.workload) else {
            eprintln!("engine_bench: {path} lacks workload {} — refresh with --write", e.workload);
            failures += 1;
            continue;
        };
        if (e.events, e.checksum) != (prev.events, prev.checksum) {
            eprintln!(
                "engine_bench: DRIFT {}: {} events / {:016x}, snapshot {} / {:016x} — \
                 refresh with --write if intended",
                e.workload, e.events, e.checksum, prev.events, prev.checksum
            );
            failures += 1;
        }
    }
    if entries.len() != old.len() {
        eprintln!(
            "engine_bench: entry count changed ({} vs {}) — refresh with --write",
            entries.len(),
            old.len()
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
