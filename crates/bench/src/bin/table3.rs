//! Harness binary regenerating the paper's table3 artifact.
//! Run: `cargo run --release -p spacea-bench --bin table3 [--scale N] [--cubes N] [--jobs N] [--no-cache] [--csv]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::table3::jobs);
    let out = spacea_core::experiments::table3::run(&mut session.cache);
    session.emit(&out);
}
