//! Dump the opening of a simulation's event trace — the paper's "detailed
//! event trace", human-readable.
//!
//! Run: `cargo run --release -p spacea-bench --bin trace_dump [--scale N]`

use spacea_arch::{Machine, RunSpec};
use spacea_core::experiments::MapKind;

fn main() {
    let mut session = spacea_bench::harness();
    let cache = &mut session.cache;
    let id = 1u8; // bcsstk32
    let a = cache.matrix(id);
    let mapping = cache.mapping(id, MapKind::Proposed);
    let x = cache.cfg.input_vector(a.cols());
    let machine = Machine::new(cache.cfg.hw.clone());
    let out = machine.run(RunSpec::spmv(&a, &x, &mapping).traced(120)).unwrap_or_else(|e| {
        eprintln!("trace_dump: traced simulation failed: {e}");
        std::process::exit(1)
    });
    let report = &out.report;
    let Some(log) = out.trace else {
        eprintln!("trace_dump: traced run yielded no trace");
        std::process::exit(1)
    };

    println!(
        "bcsstk32 (scaled): {} cycles total; showing the first {} of {} events",
        report.cycles,
        log.records().len(),
        log.offered()
    );
    for record in log.records() {
        println!("{record}");
    }
}
