//! CLI front end of the SpMV daemon (`spacea-serve`).
//!
//! Verbs:
//!
//! * `serve start [--port N] [--max-batch N] [--compact-every N]
//!   [--chaos SPEC|--chaos-seed N]` — run the daemon in the foreground over
//!   `--cache-dir` (default `target/spacea-cache`); `--quick` serves the
//!   tiny machine. The bound port is published to `<cache-dir>/serve.port`
//!   once the listener is up. `--compact-every N` auto-compacts the
//!   acknowledgment journal (crash-safe, retaining the newest N files)
//!   every N acknowledged batches; 0 (the default) disables it.
//!   `--chaos` arms a deterministic service-layer fault plan (see the
//!   `spacea_serve::chaos` grammar); `--chaos-seed` derives one from a seed
//!   exactly as the `serve_chaos` soak does, for replaying a failing seed.
//! * `serve submit --matrix 1/256,2/256 --seeds 0,1,2 [--check]
//!   [--deadline-ms N]` — one concurrent client thread per seed,
//!   round-robined over the matrix list; `--check` recomputes each result
//!   offline and fails on any bitwise divergence; `--deadline-ms` attaches
//!   a per-request deadline.
//! * `serve register --mtx PATH` — register a MatrixMarket file with the
//!   daemon and print its content key; `submit` then works against that
//!   key the same way it does for suite matrices.
//! * `serve compact [--retain N]` — drop acked journal files beyond the
//!   newest N (default 8); crash-safe (watermark first, unlink second).
//! * `serve stat` — print the daemon's counters as JSON (including the
//!   live `journal_records` / `journal_files` footprint).
//! * `serve shutdown` — stop the daemon (it flushes manifest + timeline).

use spacea_bench::{ArgError, HarnessOptions};
use spacea_serve::{run_daemon, seeded_vector, CallError, ChaosPlan, Client, ServeConfig};

const SERVE_USAGE: &str = "serve: start|submit|register|compact|stat|shutdown | --port N | \
     --max-batch N | --compact-every N | --chaos SPEC | --chaos-seed N | \
     --matrix ID/SCALE[,ID/SCALE...] | --seeds N[,N...] | --deadline-ms N | --check | \
     --mtx PATH | --retain N";

fn main() {
    let mut verb: Option<String> = None;
    let mut port = 0u16;
    let mut max_batch: Option<usize> = None;
    let mut matrices = vec![(1u8, 256usize)];
    let mut seeds: Vec<u64> = (0..8).collect();
    let mut check = false;
    let mut chaos = ChaosPlan::default();
    let mut deadline_ms: Option<u64> = None;
    let mut mtx_path: Option<String> = None;
    let mut retain = 8usize;
    let mut compact_every = 0u64;
    let opts = HarnessOptions::from_args_with(std::env::args().skip(1), |flag, args| {
        match flag {
            "start" | "submit" | "register" | "compact" | "stat" | "shutdown" if verb.is_none() => {
                verb = Some(flag.to_string());
            }
            "--port" => {
                port = args
                    .usize_value("--port")?
                    .try_into()
                    .map_err(|_| ArgError::new("--port needs a TCP port (fits in 16 bits)"))?;
            }
            "--max-batch" => max_batch = Some(args.usize_value("--max-batch")?.max(1)),
            "--compact-every" => compact_every = args.usize_value("--compact-every")? as u64,
            "--chaos" => {
                chaos = ChaosPlan::parse(&args.value("--chaos")?)
                    .map_err(|e| ArgError::new(format!("--chaos: {e}")))?;
            }
            "--chaos-seed" => {
                chaos = ChaosPlan::from_seed(args.usize_value("--chaos-seed")? as u64);
            }
            "--matrix" => matrices = parse_matrices(&args.value("--matrix")?)?,
            "--seeds" => seeds = parse_seeds(&args.value("--seeds")?)?,
            "--deadline-ms" => deadline_ms = Some(args.usize_value("--deadline-ms")? as u64),
            "--check" => check = true,
            "--mtx" => mtx_path = Some(args.value("--mtx")?),
            "--retain" => retain = args.usize_value("--retain")?,
            _ => return Ok(false),
        }
        Ok(true)
    })
    .unwrap_or_else(|e| e.exit_with_usage(SERVE_USAGE));

    match verb.as_deref() {
        Some("start") => start(&opts, port, max_batch, compact_every, chaos),
        Some("submit") => submit(&opts, &matrices, &seeds, check, deadline_ms),
        Some("register") => register_mtx(&opts, mtx_path.as_deref()),
        Some("compact") => compact(&opts, retain),
        Some("stat") => stat(&opts),
        Some("shutdown") => shutdown(&opts),
        _ => {
            ArgError::new("serve needs a verb: start, submit, register, compact, stat or shutdown")
                .exit_with_usage(SERVE_USAGE)
        }
    }
}

fn parse_matrices(spec: &str) -> Result<Vec<(u8, usize)>, ArgError> {
    let err = || ArgError::new("--matrix needs ID/SCALE[,ID/SCALE...], e.g. 1/256,2/256");
    spec.split(',')
        .map(|part| {
            let (id, scale) = part.split_once('/').ok_or_else(err)?;
            Ok((id.parse().map_err(|_| err())?, scale.parse().map_err(|_| err())?))
        })
        .collect()
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, ArgError> {
    spec.split(',')
        .map(|s| s.parse().map_err(|_| ArgError::new("--seeds needs N[,N...]")))
        .collect()
}

fn start(
    opts: &HarnessOptions,
    port: u16,
    max_batch: Option<usize>,
    compact_every: u64,
    chaos: ChaosPlan,
) {
    let mut cfg = ServeConfig::new(opts.cache_dir());
    cfg.hw = opts.cfg.hw.clone();
    cfg.chaos = chaos;
    cfg.compact_every = compact_every;
    if let Some(mb) = max_batch {
        cfg.max_batch = mb;
    }
    if let Err(e) = run_daemon(cfg, port) {
        eprintln!("serve: daemon failed: {e}");
        std::process::exit(1);
    }
}

fn connect(opts: &HarnessOptions) -> Client {
    Client::connect_dir(&opts.cache_dir()).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(1);
    })
}

fn submit(
    opts: &HarnessOptions,
    matrices: &[(u8, usize)],
    seeds: &[u64],
    check: bool,
    deadline_ms: Option<u64>,
) {
    let mut admin = connect(opts);
    let mut keys = Vec::new();
    for &(id, scale) in matrices {
        let reply = admin.register(id, scale).unwrap_or_else(|e| {
            eprintln!("serve: register {id}/{scale} failed: {e}");
            std::process::exit(1);
        });
        println!("registered m{id}/{scale}: key {:016x}, {} nnz", reply.matrix, reply.nnz);
        keys.push((id, scale, reply.matrix, reply.cols));
    }

    // One client thread per seed, round-robined over the matrices, so the
    // daemon sees genuinely concurrent mixed-matrix traffic.
    let cache_dir = opts.cache_dir();
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let (id, scale, key, cols) = keys[i % keys.len()];
                let dir = cache_dir.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_dir(&dir)?;
                    let out = match deadline_ms {
                        Some(ms) => client.submit_within(key, seed, ms)?,
                        None => client.submit(key, seed)?,
                    };
                    Ok::<_, CallError>((id, scale, seed, cols, out))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CallError {
                        code: "transport".into(),
                        message: "client thread panicked".into(),
                    })
                })
            })
            .collect()
    });

    let mut failures = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok((id, scale, seed, cols, out)) => {
                println!(
                    "m{id}/{scale} seed {seed}: batch {} | {} cycles | queued {}us",
                    out.batch, out.cycles, out.queue_wait_us
                );
                if check && !matches_reference(id, scale, cols, seed, &out.y) {
                    eprintln!("serve: m{id}/{scale} seed {seed} DIVERGED from offline SpMV");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("serve: submit failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("serve: {failures} request(s) failed");
        std::process::exit(1);
    }
    if check {
        println!("all {} responses bitwise-match the offline reference SpMV", seeds.len());
    }
}

/// Recomputes the request offline and compares bitwise.
fn matches_reference(id: u8, scale: usize, cols: usize, seed: u64, y: &[f64]) -> bool {
    let Some(entry) = spacea_matrix::suite::entry_by_id(id) else { return false };
    let a = entry.generate(scale);
    let want = a.spmv(&seeded_vector(cols, seed));
    y.len() == want.len() && y.iter().zip(&want).all(|(got, want)| got.to_bits() == want.to_bits())
}

fn register_mtx(opts: &HarnessOptions, mtx_path: Option<&str>) {
    let Some(path) = mtx_path else {
        ArgError::new("serve register needs --mtx PATH").exit_with_usage(SERVE_USAGE)
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("serve: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut client = connect(opts);
    match client.register_mtx(&text) {
        Ok(reply) => println!(
            "registered {path}: key {:016x}, {}x{}, {} nnz",
            reply.matrix, reply.rows, reply.cols, reply.nnz
        ),
        Err(e) => {
            eprintln!("serve: register {path} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn compact(opts: &HarnessOptions, retain: usize) {
    let mut client = connect(opts);
    match client.compact(retain) {
        Ok(c) => println!(
            "journal compacted: dropped {} file(s) / {} record(s), {} file(s) retained",
            c.dropped_files, c.dropped_records, c.retained_files
        ),
        Err(e) => {
            eprintln!("serve: compact failed: {e}");
            std::process::exit(1);
        }
    }
}

fn stat(opts: &HarnessOptions) {
    let mut client = connect(opts);
    match client.stat() {
        Ok(v) => println!("{}", v.to_text()),
        Err(e) => {
            eprintln!("serve: stat failed: {e}");
            std::process::exit(1);
        }
    }
}

fn shutdown(opts: &HarnessOptions) {
    let mut client = connect(opts);
    match client.shutdown() {
        Ok(()) => println!("daemon stopping"),
        Err(e) => {
            eprintln!("serve: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
