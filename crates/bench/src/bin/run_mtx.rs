//! Run SpMV on a user-supplied Matrix Market file: the downstream-user tool.
//!
//! Run: `cargo run --release -p spacea-bench --bin run_mtx -- <file.mtx>
//! [--cubes N]`
//!
//! Simulates the matrix with both mappings on the configured machine and
//! prints the comparison the paper's Figures 5/6 make per matrix.

use spacea_arch::{Machine, RunSpec};
use spacea_core::table::{fmt, pct, Table};
use spacea_mapping::{LocalityMapping, MappingStrategy, NaiveMapping};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(pos) = args.iter().position(|a| !a.starts_with("--")) else {
        eprintln!("usage: run_mtx <file.mtx> [--cubes N]");
        std::process::exit(2);
    };
    let path = args.remove(pos);
    let opts =
        spacea_bench::HarnessOptions::from_args(args.into_iter()).unwrap_or_else(|e| e.exit());
    let hw = opts.cfg.hw.clone();

    let a = match spacea_matrix::mmio::read_file(&path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("{path}: {}", a.stats());
    println!(
        "machine: {} cubes x {} vaults = {} product PEs",
        hw.shape.cubes,
        hw.shape.vaults_per_cube,
        hw.shape.product_pes()
    );

    let x = opts.cfg.input_vector(a.cols());
    let machine = Machine::new(hw.clone());
    let mut table = Table::new(
        "SpaceA simulation",
        &["Mapping", "Cycles", "us @1GHz", "L1 hit", "L2 hit", "TSV bytes", "Norm. workload"],
    );
    for (name, mapping) in [
        ("naive", NaiveMapping::default().map(&a, &hw.shape)),
        ("proposed", LocalityMapping::default().map(&a, &hw.shape)),
    ] {
        match machine.run(RunSpec::spmv(&a, &x, &mapping)).map(|out| out.into_report()) {
            Ok(r) => table.push_row(vec![
                name.into(),
                r.cycles.to_string(),
                fmt(r.seconds * 1e6, 2),
                pct(r.l1_hit_rate),
                pct(r.l2_hit_rate),
                r.tsv_bytes.to_string(),
                fmt(r.normalized_workload, 3),
            ]),
            Err(e) => {
                eprintln!("simulation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", table.to_text());
}
