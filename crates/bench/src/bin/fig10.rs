//! Harness binary regenerating the paper's fig10 artifact.
//! Run: `cargo run --release -p spacea-bench --bin fig10 [--scale N] [--cubes N] [--csv]`

fn main() {
    let (mut cache, csv) = spacea_bench::harness();
    let out = spacea_core::experiments::fig10::run(&mut cache);
    spacea_bench::emit(&out, csv);
}
