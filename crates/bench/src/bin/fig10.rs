//! Harness binary regenerating the paper's fig10 artifact.
//! Run: `cargo run --release -p spacea-bench --bin fig10 [--scale N] [--cubes N] [--jobs N] [--no-cache] [--csv]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::fig10::jobs);
    let out = spacea_core::experiments::fig10::run(&mut session.cache);
    session.emit(&out);
}
