//! Grid-spec parameter sweeps over the SpaceA design space, with sharded
//! execution and cache GC.
//!
//! A sweep names axes — matrices, scales, mappings, machine variants, cube
//! counts, CAM set counts, energy scales, the GPU baseline — either as CLI
//! flags or as a `key = value` spec file, enumerates their cartesian
//! product deterministically into deduplicated content-addressed jobs,
//! computes them in parallel into the shared result cache, and renders one
//! summary row per point.
//!
//! Run: `cargo run --release -p spacea-bench --bin sweep -- --ids 1,2
//! --scales 8,16 --kinds naive,proposed [--csv]`, or with `--spec FILE`.
//!
//! Sharding: `--shard K/N` runs (and renders) only the K-th of N contiguous,
//! disjoint, union-complete slices of the grid. Shards share the cache
//! directory, so concatenating the N shard outputs in shard order — CSV
//! rows after the shared header — reproduces the unsharded output
//! byte-for-byte, and an unsharded re-run afterwards is answered entirely
//! from cache. Stdout carries only the (merge-stable) table; telemetry and
//! shard provenance go to stderr.
//!
//! Cache GC: `--gc` (with `--gc-max-kb N` and/or `--gc-max-age-days N`)
//! enforces size/age budgets on the cache directory after the sweep,
//! evicting least-recently-hit entries first and never the entries this
//! run touched.
//!
//! Fault injection: `--faults '[IDX:]PLAN[;...]'` arms deterministic faults
//! (`drop-noc=N`, `delay-noc=N@D`, `stall-vault=V@T`, `flip-accum=N`,
//! `panic`) on the IDX-th grid point (global, pre-shard; omit IDX for all
//! sim points). Faulted jobs fail or time out with a diagnosis in the
//! Status column and the manifest; healthy points still complete, and the
//! sweep still exits 0 — robustness drills don't fail the pipeline.
//!
//! Timelines: `--timeline[=EVERY-CYCLES]` runs every sim point observed and
//! writes one Chrome-trace JSON per successful job under
//! `<cache-dir>/timelines/<job-key>.json` — load them in Perfetto
//! (ui.perfetto.dev) or inspect with the `timeline` binary. Observation is
//! timing-neutral: cycle counts match an unobserved sweep exactly.

use spacea_bench::{HarnessOptions, HarnessSession, SweepCli, SWEEP_USAGE};
use spacea_core::table::{fmt, pct, Table};
use spacea_harness::{shard_range, JobRecord, JobResult, PointKind, SweepBase, SweepPoint};
use std::collections::HashMap;

fn main() {
    let mut cli = SweepCli::default();
    let opts = HarnessOptions::from_args_with(std::env::args().skip(1), |flag, args| {
        cli.accept(flag, args)
    })
    .unwrap_or_else(|e| e.exit_with_usage(SWEEP_USAGE));

    if cli.spec.is_empty() && cli.gc_policy().is_none() {
        spacea_bench::ArgError::new(
            "empty grid: set at least one axis (e.g. --ids 1,2 --scales 8,16), or --gc to \
             only collect the cache",
        )
        .exit_with_usage(SWEEP_USAGE);
    }

    let mut session = HarnessSession::from_opts(opts);
    session.timeline = cli.timeline_config(&session.opts.cache_dir());
    if let Some(tl) = &session.timeline {
        eprintln!(
            "sweep: timelines on (every {} cycles) -> {}",
            tl.observe.every,
            tl.dir().display()
        );
    }
    let base = SweepBase {
        hw_name: "default".into(),
        hw: session.opts.cfg.hw.clone(),
        energy: session.opts.cfg.energy,
        scale: session.opts.cfg.scale,
        gpu_spec: session.opts.cfg.gpu_spec(),
        hbm_spec: spacea_backend::HbmSpec::default(),
    };

    // An all-empty spec only reaches here in `--gc`-only mode; it must not
    // enumerate (every axis would fall back to the base, simulating one
    // point nobody asked for).
    let mut points = if cli.spec.is_empty() { Vec::new() } else { cli.spec.points(&base) };
    // Faults apply to global point indices, before sharding, so a faulted
    // point is the same point in every shard layout.
    cli.apply_faults(&mut points);
    let range = match cli.shard {
        Some((k, n)) => shard_range(points.len(), k, n),
        None => 0..points.len(),
    };
    let shard_points = &points[range.clone()];
    if let Some((k, n)) = cli.shard {
        eprintln!(
            "sweep: shard {k}/{n} owns points {}..{} of {}",
            range.start,
            range.end,
            points.len()
        );
    }

    if !shard_points.is_empty() {
        let manifest = session.prewarm(shard_points.iter().map(|p| p.job()).collect());
        let mut table = sweep_table(&session, shard_points, &manifest.records);
        if let Some((_, n)) = cli.shard {
            table.push_note(format!(
                "one of {n} shards; concatenate shard outputs in shard order for the full grid"
            ));
        }
        // Stdout carries only the rows (CSV drops title and notes), so
        // merged shard output is byte-comparable with an unsharded run.
        session.emit_table(&table);
        eprint!("{}", manifest.summary());
        match session.write_manifest(&manifest) {
            Ok(path) => eprintln!("harness: run manifest written to {}", path.display()),
            Err(e) => eprintln!("harness: could not write run manifest: {e}"),
        }
    }

    if let Some(policy) = cli.gc_policy() {
        match session.cache.store().gc(&policy) {
            Ok(report) => eprintln!("{}", report.summary()),
            Err(e) => {
                eprintln!("gc failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Renders one row per grid point from the cache, with a Status column from
/// this run's job records. Failed/timed-out jobs have no cached result
/// (failures are never cached): their rows keep the identity columns and
/// dash out the metrics, so shard outputs stay mergeable and a sweep with
/// faulted points still accounts for every point.
fn sweep_table(session: &HarnessSession, points: &[SweepPoint], records: &[JobRecord]) -> Table {
    let by_key: HashMap<u64, &JobRecord> = records.iter().map(|r| (r.key.0, r)).collect();
    let mut table = Table::new(
        "Sweep summary (one row per grid point)",
        &[
            "ID", "Matrix", "Scale", "Map", "HW", "Cubes", "L1", "L2", "E", "Cycles", "us",
            "PE busy", "L1 hit", "Status",
        ],
    );
    for p in points {
        let job = p.job();
        // Points answered purely from an earlier run's cache (e.g. rendered
        // by a shard that did not run them) default to "ok" so shard merges
        // stay byte-stable.
        let status = by_key.get(&job.key().0).map(|r| r.status.tag()).unwrap_or("ok").to_string();
        let mut row = vec![p.id.to_string(), p.matrix_name().into(), p.scale.to_string()];
        row.extend(identity_columns(p));
        match session.cache.store().lookup(job.key()) {
            Some((JobResult::Sim(r), _)) if matches!(p.kind, PointKind::Sim { .. }) => {
                row.extend([
                    r.cycles.to_string(),
                    fmt(r.seconds * 1e6, 2),
                    pct(r.pe_busy_fraction),
                    pct(r.l1_hit_rate),
                ]);
            }
            Some((JobResult::Gpu(g), _)) if matches!(p.kind, PointKind::Gpu { .. }) => {
                row.extend(["-".into(), fmt(g.time_s * 1e6, 2), "-".into(), "-".into()]);
            }
            Some((JobResult::Scenario(s), _)) if matches!(p.kind, PointKind::Scenario { .. }) => {
                row.extend([s.cycles.to_string(), fmt(s.time_s * 1e6, 2), "-".into(), "-".into()]);
            }
            // No result (the job failed — failures are never cached), or a
            // result kind that cannot belong to this point: dash the
            // metrics, let the Status column tell the story.
            _ => row.extend(std::iter::repeat_n("-".to_string(), 4)),
        }
        row.push(status);
        table.push_row(row);
    }
    table
}

/// The identity columns (Map, HW, Cubes, L1, L2, E) of a grid point —
/// renderable whether or not the point's job produced a result.
fn identity_columns(p: &SweepPoint) -> Vec<String> {
    match &p.kind {
        PointKind::Sim { kind, hw_name, hw, energy_scale, .. } => vec![
            kind.label().to_string(),
            hw_name.clone(),
            hw.shape.cubes.to_string(),
            hw.l1_cam.sets.to_string(),
            hw.l2_cam.sets.to_string(),
            fmt(*energy_scale, 2),
        ],
        PointKind::Gpu { .. } => {
            vec!["gpu".into(), "titan-xp".into(), "-".into(), "-".into(), "-".into(), "-".into()]
        }
        // Scenario cells reuse the columns: Map carries the storage format,
        // HW the backend, Cubes the stream partitioning.
        PointKind::Scenario { backend, format, partition, .. } => vec![
            format.label().to_string(),
            backend.label().to_string(),
            partition.label().to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    }
}
