//! Harness binary regenerating the paper's Figure 7 (CAM sensitivity).
//! Run: `cargo run --release -p spacea-bench --bin fig7 [--scale N] [--quick]`

fn main() {
    let mut session = spacea_bench::harness_for(spacea_core::experiments::fig7::jobs);
    let out = spacea_core::experiments::fig7::run(&mut session.cache);
    session.emit(&out);
}
