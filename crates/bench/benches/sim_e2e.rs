//! End-to-end simulation benchmarks: wall time of a full SpaceA SpMV run on
//! a tiny machine, for both a structural and a power-law matrix. These bound
//! the full experiment harness's runtime.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spacea_arch::{HwConfig, Machine, RunSpec};
use spacea_mapping::{LocalityMapping, MappingStrategy, NaiveMapping};
use spacea_matrix::gen::{banded, rmat, BandedConfig, RmatConfig};

fn bench_sim(c: &mut Criterion) {
    let cfg = HwConfig::tiny();
    let banded_m = banded(&BandedConfig { n: 1024, mean_row_nnz: 24.0, ..Default::default() });
    let rmat_m = rmat(&RmatConfig { n: 1024, edges: 12_000, ..Default::default() });
    let xb = vec![1.0; banded_m.cols()];
    let xr = vec![1.0; rmat_m.cols()];
    let map_b = LocalityMapping::default().map(&banded_m, &cfg.shape);
    let map_b_naive = NaiveMapping::default().map(&banded_m, &cfg.shape);
    let map_r = LocalityMapping::default().map(&rmat_m, &cfg.shape);

    let mut g = c.benchmark_group("sim_e2e");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(banded_m.nnz() as u64));
    g.bench_function("banded_proposed", |b| {
        b.iter(|| Machine::new(cfg.clone()).run(RunSpec::spmv(&banded_m, &xb, &map_b)).unwrap())
    });
    g.bench_function("banded_naive", |b| {
        b.iter(|| {
            Machine::new(cfg.clone()).run(RunSpec::spmv(&banded_m, &xb, &map_b_naive)).unwrap()
        })
    });
    g.throughput(Throughput::Elements(rmat_m.nnz() as u64));
    g.bench_function("rmat_proposed", |b| {
        b.iter(|| Machine::new(cfg.clone()).run(RunSpec::spmv(&rmat_m, &xr, &map_r)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
