//! Micro-benchmarks of the CAM, load queue and GPU cache-simulation
//! structures — per-access costs on the simulator's critical path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spacea_gpu::cache::CacheSim;
use spacea_sim::cam::{Cam, CamConfig};
use spacea_sim::ldq::LoadQueue;

fn bench_cam(c: &mut Criterion) {
    let mut g = c.benchmark_group("cam");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));

    g.bench_function("l1_lookup_insert_mixed", |b| {
        b.iter_batched(
            || Cam::<[f64; 4]>::new(CamConfig::l1_default()),
            |mut cam| {
                for i in 0..N {
                    // ~75% re-reference locality, like a banded workload.
                    let key = if i % 4 == 0 { i } else { i / 4 };
                    if cam.lookup(key).is_none() {
                        cam.insert(key, [1.0, 2.0, 3.0, 4.0]);
                    }
                }
                cam
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("l2_lookup_insert_mixed", |b| {
        b.iter_batched(
            || Cam::<[f64; 4]>::new(CamConfig::l2_default()),
            |mut cam| {
                for i in 0..N {
                    let key = i % 10_000;
                    if cam.lookup(key).is_none() {
                        cam.insert(key, [0.0; 4]);
                    }
                }
                cam
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("ldq_push_complete", |b| {
        b.iter_batched(
            || LoadQueue::<u32>::new(512),
            |mut ldq| {
                for i in 0..N {
                    let key = i % 400;
                    ldq.push_forced(key, i as u32);
                    if i % 3 == 0 {
                        ldq.complete(key);
                    }
                }
                ldq
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("gpu_l2_cache_sim", |b| {
        b.iter_batched(
            || CacheSim::new(3 * 1024 * 1024, 16, 32),
            |mut cache| {
                for i in 0..N {
                    cache.access((i * 2654435761) % (1 << 22));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_cam);
criterion_main!(benches);
