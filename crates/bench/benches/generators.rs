//! Benchmarks of the synthetic matrix generators (Table I suite build cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spacea_matrix::gen::{banded, rmat, uniform_random, BandedConfig, RmatConfig, UniformConfig};
use spacea_matrix::suite;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("banded_4k", |b| {
        b.iter(|| banded(&BandedConfig { n: 4096, ..Default::default() }))
    });
    g.bench_function("rmat_4k_64k_edges", |b| {
        b.iter(|| rmat(&RmatConfig { n: 4096, edges: 65_536, ..Default::default() }))
    });
    g.bench_function("uniform_4k", |b| {
        b.iter(|| uniform_random(&UniformConfig { rows: 4096, cols: 4096, row_nnz: 16, seed: 1 }))
    });
    let entry = suite::entry_by_name("pwtk").expect("known matrix");
    g.throughput(Throughput::Elements((entry.published.nnz / 256) as u64));
    g.bench_function("suite_pwtk_scale256", |b| b.iter(|| entry.generate(256)));
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
