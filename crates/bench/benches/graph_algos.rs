//! Benchmarks of the graph-analytics software layer (the Table III oracle
//! side): PageRank, SSSP and BFS on scaled case-study graphs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spacea_graph::workloads::CaseStudyGraph;
use spacea_graph::{bfs, pagerank, sssp, PageRankConfig};

fn bench_graph(c: &mut Criterion) {
    let wk = CaseStudyGraph::Wiki.generate(512);
    let mut g = c.benchmark_group("graph_algos");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(wk.nnz() as u64));

    g.bench_function("pagerank_wk512", |b| {
        b.iter(|| pagerank(&wk, &PageRankConfig { max_iterations: 20, ..Default::default() }))
    });
    g.bench_function("sssp_wk512", |b| b.iter(|| sssp(&wk, 0)));
    g.bench_function("bfs_wk512", |b| b.iter(|| bfs(&wk, 0)));
    g.bench_function("generate_wk512", |b| b.iter(|| CaseStudyGraph::Wiki.generate(512)));
    g.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
