//! Benchmarks of the mapping pipeline: Algorithm 1 row assignment, the
//! Phase II clustering, and the naive baseline — the offline preprocessing
//! cost the paper amortizes over SpMV iterations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spacea_mapping::algorithm1::assign_rows;
use spacea_mapping::naive::assign_rows_naive;
use spacea_mapping::placement::{cluster_hierarchy, pe_column_sets};
use spacea_mapping::MachineShape;
use spacea_matrix::gen::{banded, rmat, BandedConfig, RmatConfig};

fn bench_mapping(c: &mut Criterion) {
    let banded_m = banded(&BandedConfig { n: 4096, mean_row_nnz: 32.0, ..Default::default() });
    let rmat_m = rmat(&RmatConfig { n: 4096, edges: 64_000, ..Default::default() });
    let shape = MachineShape::tiny();
    let pes = 64;

    let mut g = c.benchmark_group("mapping");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(banded_m.nnz() as u64));
    g.bench_function("algorithm1_banded", |b| b.iter(|| assign_rows(&banded_m, pes, 1e6)));
    g.throughput(Throughput::Elements(rmat_m.nnz() as u64));
    g.bench_function("algorithm1_rmat", |b| b.iter(|| assign_rows(&rmat_m, pes, 1e6)));
    g.throughput(Throughput::Elements(banded_m.nnz() as u64));
    g.bench_function("naive_banded", |b| b.iter(|| assign_rows_naive(&banded_m, pes, 7)));

    let assignment = assign_rows(&banded_m, shape.product_pes(), 1e6);
    g.bench_function("pe_column_sets", |b| b.iter(|| pe_column_sets(&banded_m, &assignment)));
    g.bench_function("phase2_cluster_hierarchy", |b| {
        b.iter(|| cluster_hierarchy(&banded_m, &assignment, &shape))
    });
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
