//! Micro-benchmarks of the discrete-event engine: the simulator's inner
//! loop, so its throughput bounds every experiment's wall time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spacea_sim::engine::EventQueue;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));

    g.bench_function("schedule_pop_fifo", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..N {
                    q.schedule(i, i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("schedule_pop_interleaved", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                // The simulator's real pattern: pops interleaved with
                // follow-up schedules at near-future cycles.
                for i in 0..1000u64 {
                    q.schedule(i, i);
                }
                let mut popped = 0u64;
                while let Some((t, v)) = q.pop() {
                    popped += 1;
                    if popped < N {
                        q.schedule(t + (v % 7) + 1, v + 1);
                    }
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
