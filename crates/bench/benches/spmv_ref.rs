//! Benchmarks of the software SpMV oracle and the semiring variants: these
//! validate every simulation, so their throughput matters at harness scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spacea_graph::{semiring_spmv, MinPlus, PlusTimes};
use spacea_matrix::gen::{banded, rmat, BandedConfig, RmatConfig};

fn bench_spmv(c: &mut Criterion) {
    let banded_m = banded(&BandedConfig { n: 16_384, mean_row_nnz: 32.0, ..Default::default() });
    let rmat_m = rmat(&RmatConfig { n: 16_384, edges: 300_000, ..Default::default() });
    let xb: Vec<f64> = (0..banded_m.cols()).map(|i| i as f64 * 0.5).collect();
    let xr: Vec<f64> = (0..rmat_m.cols()).map(|i| i as f64 * 0.5).collect();

    let mut g = c.benchmark_group("spmv_ref");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(banded_m.nnz() as u64));
    g.bench_function("csr_spmv_banded", |b| b.iter(|| banded_m.spmv(&xb)));
    g.throughput(Throughput::Elements(rmat_m.nnz() as u64));
    g.bench_function("csr_spmv_rmat", |b| b.iter(|| rmat_m.spmv(&xr)));
    g.throughput(Throughput::Elements(banded_m.nnz() as u64));
    g.bench_function("semiring_plus_times", |b| {
        b.iter(|| semiring_spmv::<PlusTimes>(&banded_m, &xb))
    });
    g.bench_function("semiring_min_plus", |b| b.iter(|| semiring_spmv::<MinPlus>(&banded_m, &xb)));
    g.bench_function("transpose", |b| b.iter(|| banded_m.transpose()));
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
