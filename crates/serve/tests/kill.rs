//! Crash-consistency acceptance test: SIGKILL the daemon process in the
//! middle of a fused batch and prove that nothing persisted is torn —
//! the mapping artifacts and telemetry timeline still load, the
//! acknowledgment journal proves exactly the answers that were actually
//! given, and a restarted daemon over the same cache answers replayed
//! requests bitwise-correctly without recomputing a single mapping.
//!
//! The daemon runs in a separate OS process (this same test binary,
//! re-invoked on an `#[ignore]`d helper) so `Child::kill` delivers a real
//! SIGKILL: no destructors, no flush-on-drop — only the tmp+rename write
//! discipline stands between the daemon and a torn artifact.

use spacea_serve::{seeded_vector, AckJournal, Client, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const DIR_ENV: &str = "SPACEA_KILL_DIR";
const STALL_MS: u64 = 30_000;

fn tmp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("spacea-serve-kill-{}", std::process::id()))
}

/// Not a test: the daemon half of the kill scenario. `#[ignore]`d so a
/// plain `cargo test` skips it; the real test re-invokes this binary with
/// `--ignored --exact` and the cache directory in the environment, then
/// SIGKILLs the whole process mid-batch.
#[test]
#[ignore = "helper process for sigkill_mid_batch; runs only when re-invoked"]
fn daemon_process_helper() {
    let Ok(dir) = std::env::var(DIR_ENV) else { return };
    let mut cfg = ServeConfig::quick(&dir);
    // Flush telemetry after every request so the timeline on disk is
    // mid-flight state, not a shutdown artifact.
    cfg.flush_every = 1;
    // The second request wedges inside the batcher for far longer than
    // the parent waits — the kill lands mid-batch by construction.
    cfg.chaos = spacea_serve::ChaosPlan {
        stall_req: Some((1, STALL_MS)),
        ..spacea_serve::ChaosPlan::default()
    };
    spacea_serve::run_daemon(cfg, 0).expect("daemon runs until killed");
}

/// Starts the helper daemon as a real child process over `dir`.
fn spawn_daemon_process(dir: &Path) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "daemon_process_helper", "--ignored", "--nocapture"])
        .env(DIR_ENV, dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("helper daemon spawns")
}

#[test]
fn sigkill_mid_batch_leaves_mappings_journal_and_timeline_loadable() {
    let dir = tmp_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = spawn_daemon_process(&dir);
    let mut admin = Client::connect_dir_within(&dir, Duration::from_secs(30)).unwrap();
    let m = admin.register(1, 256).unwrap();
    let a = spacea_matrix::suite::entry_by_id(1).unwrap().generate(256);

    // Request 0 completes and is acknowledged before the crash.
    let out = admin.submit(m.matrix, 0).unwrap();
    let want0 = a.spmv(&seeded_vector(a.cols(), 0));
    assert_eq!(out.y, want0, "pre-crash answer diverges from offline SpMV");

    // Request 1 stalls inside the batcher (chaos stall-req=1); SIGKILL
    // lands while it is mid-batch. Its client must see a dead transport,
    // never a fabricated answer.
    let stalled = {
        let dir = dir.clone();
        let key = m.matrix;
        std::thread::spawn(move || {
            let mut client = Client::connect_dir(&dir).unwrap();
            client.submit(key, 1)
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while admin.stat().unwrap().get("queue_depth").and_then(|j| j.as_u64()) == Some(0) {
        assert!(Instant::now() < deadline, "stalled request never entered the queue");
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(100)); // let it reach the stall
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("child reaped");
    let crashed = stalled.join().unwrap();
    let e = crashed.expect_err("a request in flight at SIGKILL cannot have been answered");
    assert!(e.is_transport(), "in-flight request died with {e}, expected a transport failure");

    // --- Post-mortem: everything persisted must still load. ---
    // The journal proves exactly one acknowledgment, with the right hash.
    let journal = AckJournal::load(&dir.join(AckJournal::DIR));
    assert_eq!(journal.corrupt_files, 0, "SIGKILL tore a journal file");
    assert_eq!(journal.records.len(), 1, "exactly the pre-crash ack is journaled");
    assert_eq!(journal.records[0].matrix, m.matrix);
    assert_eq!(journal.records[0].y_hash, spacea_serve::vec_hash(&want0));

    // The telemetry timeline flushed mid-flight is a valid Chrome trace.
    let trace = std::fs::read_to_string(dir.join("serve-timeline.json"))
        .expect("timeline flushed before the crash");
    spacea_obs::json::validate_chrome_trace(&trace).expect("timeline is a valid Chrome trace");

    // The mapping artifact survives: a restarted daemon warms from disk
    // (zero recomputes) and answers both the acknowledged request and the
    // one that died mid-batch, bitwise-correctly.
    let cfg = ServeConfig::quick(&dir);
    let daemon = std::thread::spawn(move || spacea_serve::run_daemon(cfg, 0));
    let mut client = Client::connect_dir_within(&dir, Duration::from_secs(30)).unwrap();
    let m2 = client.register(1, 256).unwrap();
    assert_eq!(m2.matrix, m.matrix);
    for seed in [0u64, 1] {
        let out = client.submit(m.matrix, seed).unwrap();
        let want = a.spmv(&seeded_vector(a.cols(), seed));
        assert_eq!(out.y, want, "post-restart replay of seed {seed} diverged");
    }
    let stat = client.stat().unwrap();
    assert_eq!(
        stat.get("mappings_computed").and_then(|j| j.as_u64()),
        Some(0),
        "the mapping artifact written before the crash must be loadable as-is"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
