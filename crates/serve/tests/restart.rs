//! End-to-end acceptance test of the daemon: concurrent mixed-matrix
//! requests over real localhost TCP match the offline reference SpMV
//! bitwise, and a restarted daemon performs zero Phase I/II mapping
//! computations for previously registered matrices.

use spacea_serve::{
    run_daemon, seeded_vector, AckJournal, Client, ServeConfig, ServeEngine, Service, PORT_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spacea-serve-restart-{tag}-{}", std::process::id()))
}

/// Starts a daemon thread over `dir` and waits for its port file.
fn start_daemon(dir: &Path) -> std::thread::JoinHandle<()> {
    let cfg = ServeConfig::quick(dir);
    let handle = std::thread::spawn(move || run_daemon(cfg, 0).expect("daemon runs"));
    let port_path = dir.join(PORT_FILE);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !port_path.exists() {
        assert!(Instant::now() < deadline, "daemon never published its port");
        assert!(!handle.is_finished(), "daemon died before publishing its port");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle
}

fn manifest_counts(dir: &Path) -> (u64, u64) {
    let text = std::fs::read_to_string(dir.join("serve-manifest.json")).expect("manifest exists");
    let v = spacea_harness::json::parse(&text).expect("manifest parses");
    let maps = v.get("mappings").expect("mappings field");
    (
        maps.get("computed").and_then(|j| j.as_u64()).expect("computed"),
        maps.get("disk_hits").and_then(|j| j.as_u64()).expect("disk_hits"),
    )
}

#[test]
fn mtx_registration_and_journal_compaction_over_the_wire() {
    let dir = tmp_dir("compact");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let daemon = start_daemon(&dir);
    let mut client = Client::connect_dir(&dir).unwrap();

    // A MatrixMarket body registers like a suite matrix and answers
    // bitwise-correct submits against the offline parse.
    let text = include_str!("../../matrix/tests/fixtures/bar5.mtx");
    let reply = client.register_mtx(text).unwrap();
    let a = spacea_matrix::Csr::from_mtx(text).unwrap();
    assert_eq!((reply.rows, reply.cols, reply.nnz), (a.rows(), a.cols(), a.nnz()));
    let e = client.register_mtx("not a matrix").unwrap_err();
    assert_eq!(e.code, "bad-request");

    for seed in 0..3u64 {
        let out = client.submit(reply.matrix, seed).unwrap();
        let want = a.spmv(&seeded_vector(a.cols(), seed));
        let got: Vec<u64> = out.y.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "seed {seed}: mtx-registered reply diverged");
    }

    // Three sequential submits journal three single-record files; stat
    // reports the live footprint and compact trims it to the budget.
    let stat = client.stat().unwrap();
    assert_eq!(stat.get("journal_records").and_then(|j| j.as_u64()), Some(3));
    assert_eq!(stat.get("journal_files").and_then(|j| j.as_u64()), Some(3));
    let c = client.compact(1).unwrap();
    assert_eq!((c.dropped_files, c.dropped_records, c.retained_files), (2, 2, 1));
    let stat = client.stat().unwrap();
    assert_eq!(stat.get("journal_records").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(stat.get("journal_files").and_then(|j| j.as_u64()), Some(1));
    let load = AckJournal::load(&dir.join(AckJournal::DIR));
    assert_eq!((load.records.len(), load.dropped, load.corrupt_files), (1, 2, 0));

    client.shutdown().unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_compaction_bounds_the_journal_and_its_watermark_survives_restart() {
    let dir = tmp_dir("autocompact");
    let _ = std::fs::remove_dir_all(&dir);

    // --- First life: compact every 2 acknowledged batches. ---
    let cfg = ServeConfig { compact_every: 2, ..ServeConfig::quick(&dir) };
    let engine = Arc::new(ServeEngine::new(cfg));
    let info = engine.register_suite(1, 256).unwrap();
    let service = Service::over(Arc::clone(&engine));
    // Sequential submits: each is its own single-request batch, so each
    // acknowledgment is one journal file. Five batches trigger the
    // auto-compaction pass twice (after batch 2: nothing beyond the
    // 2-file budget yet; after batch 4: files 1-2 dropped).
    for seed in 0..5u64 {
        service.submit(info.key, seeded_vector(info.cols, seed)).unwrap();
    }
    service.stop();
    assert_eq!(engine.journal_counts(), (3, 3), "budget 2 + the post-compaction batch");
    let load = AckJournal::load(&dir.join(AckJournal::DIR));
    assert_eq!(load.records.len(), 3);
    assert_eq!(load.dropped, 2, "the watermark carries the auto-dropped records");
    assert_eq!(load.corrupt_files, 0);
    drop(engine);

    // --- Restarted engine over the same cache dir: the watermark holds
    // (dropped records stay counted, sequence numbers never reused). ---
    let cfg = ServeConfig { compact_every: 2, ..ServeConfig::quick(&dir) };
    let engine = Arc::new(ServeEngine::new(cfg));
    let info = engine.register_suite(1, 256).unwrap();
    let service = Service::over(Arc::clone(&engine));
    service.submit(info.key, seeded_vector(info.cols, 9)).unwrap();
    service.stop();
    let load = AckJournal::load(&dir.join(AckJournal::DIR));
    assert_eq!(load.dropped, 2, "restart must not lose the compaction watermark");
    assert_eq!(load.records.len(), 4, "the new acknowledgment lands past the watermark");
    assert_eq!(load.corrupt_files, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_match_reference_and_restart_is_warm() {
    let dir = tmp_dir("e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // --- Cold daemon: registration pays Phase I/II. ---
    let daemon = start_daemon(&dir);
    let mut admin = Client::connect_dir(&dir).unwrap();
    admin.ping().unwrap();
    let m1 = admin.register(1, 256).unwrap();
    let m2 = admin.register(2, 256).unwrap();
    assert_ne!(m1.matrix, m2.matrix);

    // Offline references, computed without the daemon.
    let a1 = spacea_matrix::suite::entry_by_id(1).unwrap().generate(256);
    let a2 = spacea_matrix::suite::entry_by_id(2).unwrap().generate(256);

    // 8 concurrent clients, mixed matrices: every reply must be bitwise
    // the offline SpMV regardless of how the batcher fused them.
    let mut workers = Vec::new();
    for t in 0..8u64 {
        let dir = dir.clone();
        let (key, reference) = if t % 2 == 0 {
            (m1.matrix, a1.spmv(&seeded_vector(a1.cols(), t)))
        } else {
            (m2.matrix, a2.spmv(&seeded_vector(a2.cols(), t)))
        };
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_dir(&dir).unwrap();
            let out = client.submit(key, t).unwrap();
            let got: Vec<u64> = out.y.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "client {t}: daemon reply diverged from offline SpMV");
            assert!(out.batch >= 1);
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let stat = admin.stat().unwrap();
    assert_eq!(stat.get("requests").and_then(|j| j.as_u64()), Some(8));
    assert_eq!(stat.get("registered").and_then(|j| j.as_u64()), Some(2));
    admin.shutdown().unwrap();
    daemon.join().unwrap();

    let (computed, _) = manifest_counts(&dir);
    assert_eq!(computed, 2, "cold run computes each mapping exactly once");
    assert!(!dir.join(PORT_FILE).exists(), "port file removed on shutdown");
    assert!(dir.join("serve-timeline.json").exists(), "telemetry flushed on shutdown");

    // Every acknowledged request left a journal record proving its answer.
    let journal = AckJournal::load(&dir.join(AckJournal::DIR));
    assert_eq!(journal.corrupt_files, 0, "graceful shutdown leaves no torn journal files");
    assert_eq!(journal.records.len(), 8, "one acknowledgment record per answered request");

    // --- Restarted daemon over the same cache dir: zero computations. ---
    let daemon = start_daemon(&dir);
    let mut client = Client::connect_dir(&dir).unwrap();
    let m1b = client.register(1, 256).unwrap();
    client.register(2, 256).unwrap();
    assert_eq!(m1b.matrix, m1.matrix, "content addressing is stable across restarts");
    let out = client.submit(m1b.matrix, 99).unwrap();
    let want = a1.spmv(&seeded_vector(a1.cols(), 99));
    assert_eq!(out.y, want);
    client.shutdown().unwrap();
    daemon.join().unwrap();

    let (computed, disk_hits) = manifest_counts(&dir);
    assert_eq!(computed, 0, "a warm restart must not re-run Phase I/II mapping");
    assert_eq!(disk_hits, 2, "both mappings loaded from the persistent cache");

    let _ = std::fs::remove_dir_all(&dir);
}
