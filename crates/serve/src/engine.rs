//! The serve engine: content-addressed matrix registry, warm-mapping
//! cache, fused-batch execution, and per-request telemetry.
//!
//! The engine owns everything the daemon shares across connections. It is
//! deliberately free of any transport: `serve_bench` and the unit tests
//! drive it directly, the TCP [`crate::server`] drives it through
//! [`crate::service::Service`]. It also owns the robustness state the
//! service layer hangs off: the [`ChaosState`] runtime of the configured
//! fault plan, the write-ahead [`AckJournal`], and the shed / retry /
//! deadline counters the `stat` verb and the manifest expose.

use crate::chaos::{ChaosPlan, ChaosState};
use crate::error::ServeError;
use crate::journal::{AckJournal, CompactionStats};
use spacea_arch::{HwConfig, Machine, RunSpec, SpmmReport};
use spacea_harness::json::Json;
use spacea_harness::mapstore::{mapping_key, matrix_key};
use spacea_harness::{MappingStats, MappingStore, MatrixSource};
use spacea_mapping::{MapKind, Mapping};
use spacea_matrix::Csr;
use spacea_obs::{MetricKey, Series, Timeline};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The daemon's on-disk manifest file name (under the cache directory).
pub const MANIFEST_FILE: &str = "serve-manifest.json";

/// The daemon's telemetry export file name (under the cache directory).
pub const TIMELINE_FILE: &str = "serve-timeline.json";

/// Recovers from lock poisoning: engine state is counters and memo maps,
/// all valid at any intermediate point, so a panicked peer cannot leave
/// torn state behind.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of one serve engine / daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cache directory: mappings persist under `<cache_dir>/mappings/`,
    /// the acknowledgment journal under `<cache_dir>/journal/`, the port
    /// file, manifest and telemetry export in its root.
    pub cache_dir: PathBuf,
    /// The machine every request is simulated on.
    pub hw: HwConfig,
    /// The mapping strategy applied to registered matrices.
    pub kind: MapKind,
    /// Largest number of requests fused into one SpMM pass.
    pub max_batch: usize,
    /// Bound of the admission queue channel.
    pub queue_depth: usize,
    /// Load-shedding high-water mark: a submit that finds this many
    /// requests already waiting is rejected with an explicit
    /// `overloaded` error instead of queued.
    pub shed_mark: usize,
    /// How long the batcher waits after the first request of a batch for
    /// concurrent requests to arrive and fuse — when more work is
    /// already queued behind it.
    pub gather_window: Duration,
    /// The gather window used when the first request arrived to an idle
    /// queue: there is nothing to fuse with, so waiting the full window
    /// only adds latency.
    pub gather_idle: Duration,
    /// Per-request deadline: a request not answered within this budget is
    /// cancelled with an explicit `deadline-exceeded` error.
    pub deadline: Duration,
    /// Bounded retry budget for transient batch failures (hang-class
    /// failures are never retried).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubled per further attempt
    /// and jittered deterministically from the matrix key.
    pub retry_backoff: Duration,
    /// Flush the telemetry timeline to disk every this many completed
    /// requests (in addition to the shutdown flush), so a crashed daemon
    /// still leaves a loadable artifact. `0` disables periodic flushing.
    pub flush_every: u64,
    /// Compact the acknowledgment journal automatically every this many
    /// acknowledged (journaled) batches, retaining the newest
    /// `compact_every` files — each acknowledged batch is one journal
    /// file, so the on-disk footprint stays bounded at roughly twice this
    /// value. `0` disables auto-compaction (the `compact` verb remains
    /// available). The pass is the same crash-safe watermark-first
    /// [`AckJournal::compact`] the manual verb uses.
    pub compact_every: u64,
    /// The service-layer fault plan (empty outside chaos testing).
    pub chaos: ChaosPlan,
}

impl ServeConfig {
    /// The default configuration over `cache_dir`: the paper machine,
    /// proposed mapping, batches of up to 16 fused requests, a 30 s
    /// deadline, shedding at a full admission queue.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            cache_dir: cache_dir.into(),
            hw: HwConfig::default(),
            kind: MapKind::Proposed,
            max_batch: 16,
            queue_depth: 64,
            shed_mark: 64,
            gather_window: Duration::from_millis(2),
            gather_idle: Duration::from_micros(100),
            deadline: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            flush_every: 8,
            compact_every: 0,
            chaos: ChaosPlan::default(),
        }
    }

    /// The smoke-test variant: the tiny machine (fast simulation).
    pub fn quick(cache_dir: impl Into<PathBuf>) -> Self {
        ServeConfig { hw: HwConfig::tiny(), ..ServeConfig::new(cache_dir) }
    }
}

/// What registering a matrix returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterInfo {
    /// Content hash of the matrix — the handle requests refer to.
    pub key: u64,
    /// Row count.
    pub rows: usize,
    /// Column count (the length submitted vectors must have).
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
}

/// A snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Distinct matrices in the registry.
    pub registered: u64,
    /// Requests answered (one per submitted vector).
    pub requests: u64,
    /// Fused SpMM passes executed.
    pub batches: u64,
    /// Widest fused batch seen.
    pub fused_max: u64,
    /// Requests rejected at admission because the queue crossed the
    /// shed mark.
    pub shed: u64,
    /// Requests cancelled because their deadline elapsed.
    pub deadline_miss: u64,
    /// Batch execution retries after transient failures.
    pub retries: u64,
    /// Acknowledgments journaled by this engine instance.
    pub acked: u64,
    /// Highest admission-queue depth observed (the high-water mark).
    pub queue_hwm: u64,
    /// Phase I/II computed-vs-warmed counters; `computed == 0` after a
    /// restart over a warm cache is the acceptance check.
    pub mappings: MappingStats,
}

/// Per-request gauge series under registered `spacea-obs` metric keys.
/// The "cycle" axis is the request ordinal (or the event ordinal for the
/// fault counters), so the exported timeline reads as request history.
struct Telemetry {
    next: u64,
    queue_wait_us: Series,
    batch_size: Series,
    cycles_per_request: Series,
    queue_depth: Series,
    shed: Series,
    retries: Series,
    deadline_miss: Series,
    queue_age_us: Series,
}

impl Telemetry {
    fn new() -> Self {
        let series = || Series::new(256, 1);
        Telemetry {
            next: 0,
            queue_wait_us: series(),
            batch_size: series(),
            cycles_per_request: series(),
            queue_depth: series(),
            shed: series(),
            retries: series(),
            deadline_miss: series(),
            queue_age_us: series(),
        }
    }
}

/// The shared state of one serve instance. See the crate docs for the
/// registry / warm-mapping / batching semantics.
pub struct ServeEngine {
    cfg: ServeConfig,
    machine: Machine,
    store: MappingStore,
    chaos: ChaosState,
    journal: AckJournal,
    matrices: Mutex<BTreeMap<u64, Arc<Csr>>>,
    mappings: Mutex<BTreeMap<u64, Arc<Mapping>>>,
    requests: AtomicU64,
    batches: AtomicU64,
    fused_max: AtomicU64,
    shed: AtomicU64,
    deadline_miss: AtomicU64,
    retries: AtomicU64,
    queue_hwm: AtomicU64,
    acked_batches: AtomicU64,
    telemetry: Mutex<Telemetry>,
}

impl ServeEngine {
    /// A fresh engine over `cfg`; mappings persist under
    /// `<cache_dir>/mappings/` and warm from whatever a previous instance
    /// left there; the acknowledgment journal continues after whatever a
    /// previous life proved.
    pub fn new(cfg: ServeConfig) -> Self {
        let store = MappingStore::with_dir(cfg.cache_dir.join("mappings"));
        let journal = AckJournal::open(cfg.cache_dir.join(AckJournal::DIR));
        let machine = Machine::new(cfg.hw.clone());
        let chaos = ChaosState::new(cfg.chaos);
        ServeEngine {
            cfg,
            machine,
            store,
            chaos,
            journal,
            matrices: Mutex::new(BTreeMap::new()),
            mappings: Mutex::new(BTreeMap::new()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fused_max: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_miss: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            acked_batches: AtomicU64::new(0),
            telemetry: Mutex::new(Telemetry::new()),
        }
    }

    /// This engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The runtime state of the configured chaos plan.
    pub fn chaos(&self) -> &ChaosState {
        &self.chaos
    }

    /// The write-ahead acknowledgment journal.
    pub fn journal(&self) -> &AckJournal {
        &self.journal
    }

    /// The live journal footprint on disk: `(records, files)` past the
    /// compaction watermark. Computed on demand (it re-reads the journal
    /// directory), so it is exposed through the `stat` verb rather than
    /// folded into every manifest flush.
    pub fn journal_counts(&self) -> (u64, u64) {
        self.journal.disk_counts()
    }

    /// Compacts the acknowledgment journal down to the newest `retain`
    /// files (crash-safe: watermark first, unlink second).
    ///
    /// # Errors
    ///
    /// Propagates the watermark write failure; on error no journal file
    /// was removed.
    pub fn compact_journal(&self, retain: usize) -> std::io::Result<CompactionStats> {
        self.journal.compact(retain)
    }

    /// Registers a matrix by content: hashes it, stores it under its key,
    /// and warms its mapping (loaded from disk when a previous process —
    /// or a previous life of this daemon — already computed it).
    /// Re-registering the same content is an idempotent cheap no-op.
    pub fn register(&self, a: Csr) -> RegisterInfo {
        let key = matrix_key(&a);
        let a = Arc::clone(lock(&self.matrices).entry(key).or_insert_with(|| Arc::new(a)));
        let info = RegisterInfo { key, rows: a.rows(), cols: a.cols(), nnz: a.nnz() };
        // Registration pays (or warms) Phase I/II, so submits never do.
        let _ = self.mapping_for(key, &a);
        info
    }

    /// Registers a Table I suite matrix by id and down-scale factor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for an unknown id or a zero
    /// scale.
    pub fn register_suite(&self, id: u8, scale: usize) -> Result<RegisterInfo, ServeError> {
        let source = MatrixSource::Suite { id, scale };
        source.validate().map_err(ServeError::BadRequest)?;
        Ok(self.register(source.generate()))
    }

    /// The registered matrix under `key`, if any.
    pub fn matrix(&self, key: u64) -> Option<Arc<Csr>> {
        lock(&self.matrices).get(&key).cloned()
    }

    /// The (memoized, disk-warmed) mapping of a registered matrix.
    fn mapping_for(&self, key: u64, a: &Csr) -> Arc<Mapping> {
        let mk = mapping_key(key, self.cfg.kind, &self.cfg.hw.shape);
        if let Some(m) = lock(&self.mappings).get(&mk) {
            return Arc::clone(m);
        }
        let m = Arc::new(self.store.get_or_compute(a, self.cfg.kind, &self.cfg.hw.shape));
        lock(&self.mappings).entry(mk).or_insert_with(|| Arc::clone(&m));
        m
    }

    /// Runs one fused SpMM pass over `xs` against the registered matrix
    /// `key`. Each output vector is bitwise what a solo SpMV run of that
    /// vector returns, so callers may fuse freely.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownMatrix`] for an unregistered key,
    /// [`ServeError::Sim`] for preflight and simulator failures
    /// (mismatched vector lengths, empty batches, hangs).
    pub fn run_batch(&self, key: u64, xs: &[Vec<f64>]) -> Result<SpmmReport, ServeError> {
        let a = self.matrix(key).ok_or(ServeError::UnknownMatrix(key))?;
        let mapping = self.mapping_for(key, &a);
        let report = self.machine.run(RunSpec::spmm(&a, xs, &mapping))?.into_spmm();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(xs.len() as u64, Ordering::Relaxed);
        self.fused_max.fetch_max(xs.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Records one completed request into the telemetry series and
    /// periodically flushes the timeline artifact (crash safety).
    pub fn note_request(&self, queue_wait_us: f64, batch: usize, cycles: u64, depth: usize) {
        {
            let mut t = lock(&self.telemetry);
            let at = t.next;
            t.next += 1;
            t.queue_wait_us.record(at, queue_wait_us);
            t.batch_size.record(at, batch as f64);
            t.cycles_per_request.record(at, cycles as f64 / batch.max(1) as f64);
            t.queue_depth.record(at, depth as f64);
        }
        let every = self.cfg.flush_every;
        if every > 0 && self.requests.load(Ordering::Relaxed).is_multiple_of(every) {
            if let Err(e) = self.write_timeline() {
                eprintln!("serve: periodic timeline flush failed: {e}");
            }
        }
    }

    /// Records the age (µs since admission) of the longest-waiting member
    /// of a batch at execution time — the admission-queue analogue of the
    /// machine's per-vault LDQ `queue-age` gauge: a growing age under a
    /// steady depth means the queue is stuck, not merely deep. The x-axis
    /// is the batch ordinal.
    pub fn note_queue_age(&self, age_us: f64) {
        let at = self.batches.load(Ordering::Relaxed);
        lock(&self.telemetry).queue_age_us.record(at, age_us);
    }

    /// Notes one acknowledged (journaled) batch and, when the configured
    /// `compact_every` interval elapses, runs a crash-safe journal
    /// compaction retaining the newest `compact_every` files. Compaction
    /// failure is logged, never fatal — the journal simply stays longer.
    pub fn note_acked_batch(&self) {
        let every = self.cfg.compact_every;
        let n = self.acked_batches.fetch_add(1, Ordering::Relaxed) + 1;
        if every > 0 && n.is_multiple_of(every) {
            match self.compact_journal(every as usize) {
                Ok(stats) if stats.dropped_files > 0 => {
                    eprintln!(
                        "serve: auto-compacted journal: dropped {} file(s) / {} record(s), {} retained",
                        stats.dropped_files, stats.dropped_records, stats.retained_files
                    );
                }
                Ok(_) => {}
                Err(e) => eprintln!("serve: auto-compaction failed: {e}"),
            }
        }
    }

    /// Records one shed (admission rejection) at `depth`.
    pub fn note_shed(&self, depth: usize) {
        let at = self.shed.fetch_add(1, Ordering::Relaxed);
        lock(&self.telemetry).shed.record(at, depth as f64);
    }

    /// Records one deadline cancellation after `waited_ms`.
    pub fn note_deadline_miss(&self, waited_ms: u64) {
        let at = self.deadline_miss.fetch_add(1, Ordering::Relaxed);
        lock(&self.telemetry).deadline_miss.record(at, waited_ms as f64);
    }

    /// Records one batch retry at backoff attempt `attempt`.
    pub fn note_retry(&self, attempt: u32) {
        let at = self.retries.fetch_add(1, Ordering::Relaxed);
        lock(&self.telemetry).retries.record(at, f64::from(attempt));
    }

    /// Folds an observed admission-queue depth into the high-water mark.
    pub fn note_depth(&self, depth: usize) {
        self.queue_hwm.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            registered: lock(&self.matrices).len() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fused_max: self.fused_max.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_miss: self.deadline_miss.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            acked: self.journal.acked(),
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            mappings: self.store.stats(),
        }
    }

    /// The collected per-request telemetry as an exportable timeline (the
    /// x-axis is the request ordinal, not a simulated cycle).
    pub fn timeline(&self) -> Timeline {
        let t = lock(&self.telemetry);
        Timeline {
            series: vec![
                (MetricKey::global("serve", "queue-wait-us"), t.queue_wait_us.clone()),
                (MetricKey::global("serve", "batch-size"), t.batch_size.clone()),
                (MetricKey::global("serve", "cycles-per-request"), t.cycles_per_request.clone()),
                (MetricKey::global("serve", "queue-depth"), t.queue_depth.clone()),
                (MetricKey::global("serve", "shed"), t.shed.clone()),
                (MetricKey::global("serve", "retries"), t.retries.clone()),
                (MetricKey::global("serve", "deadline-miss"), t.deadline_miss.clone()),
                (MetricKey::global("serve", "queue-age-us"), t.queue_age_us.clone()),
            ],
            slices: Vec::new(),
        }
    }

    /// The manifest JSON: engine counters plus the mapping compute/warm
    /// split (`mappings.computed == 0` on a restarted daemon is the
    /// warm-cache guarantee).
    pub fn manifest_json(&self) -> String {
        let s = self.stats();
        Json::obj(vec![
            ("registered", Json::U64(s.registered)),
            ("requests", Json::U64(s.requests)),
            ("batches", Json::U64(s.batches)),
            ("fused_max", Json::U64(s.fused_max)),
            ("shed", Json::U64(s.shed)),
            ("deadline_miss", Json::U64(s.deadline_miss)),
            ("retries", Json::U64(s.retries)),
            ("acked", Json::U64(s.acked)),
            ("queue_hwm", Json::U64(s.queue_hwm)),
            (
                "mappings",
                Json::obj(vec![
                    ("computed", Json::U64(s.mappings.computed)),
                    ("disk_hits", Json::U64(s.mappings.disk_hits)),
                    ("healed", Json::U64(s.mappings.healed)),
                ]),
            ),
        ])
        .to_text()
    }

    /// Writes the manifest to `<cache_dir>/serve-manifest.json` (tmp-file +
    /// atomic rename, so a concurrent reader never sees a torn file).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write_manifest(&self) -> std::io::Result<PathBuf> {
        let path = self.cfg.cache_dir.join(MANIFEST_FILE);
        write_atomic(&path, &self.manifest_json())?;
        Ok(path)
    }

    /// Writes the telemetry timeline to `<cache_dir>/serve-timeline.json`
    /// as Chrome trace JSON (loads in Perfetto). Called both periodically
    /// (every `flush_every` requests) and on shutdown, always via
    /// tmp+rename, so the artifact is loadable at every instant — even
    /// after a SIGKILL between flushes.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write_timeline(&self) -> std::io::Result<PathBuf> {
        let path = self.cfg.cache_dir.join(TIMELINE_FILE);
        write_atomic(&path, &self.timeline().to_chrome_trace())?;
        Ok(path)
    }
}

/// Tmp-file + rename write in the target's directory. The tmp name is
/// unique per write (pid + sequence), not just per process: concurrent
/// handler threads flush the manifest, and a shared tmp name would let
/// one thread rename the file out from under the other.
pub(crate) fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("serve.json");
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".{name}.{}.{seq}.tmp", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::seeded_vector;
    use spacea_harness::json::parse;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-serve-engine-{tag}-{}", std::process::id()))
    }

    #[test]
    fn register_is_idempotent_and_content_addressed() {
        let dir = tmp_dir("reg");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ServeEngine::new(ServeConfig::quick(&dir));
        let a = engine.register_suite(1, 256).unwrap();
        let b = engine.register_suite(1, 256).unwrap();
        assert_eq!(a, b, "same content, same key");
        let c = engine.register_suite(2, 256).unwrap();
        assert_ne!(a.key, c.key);
        assert_eq!(engine.stats().registered, 2);
        let e = engine.register_suite(99, 256).unwrap_err();
        assert_eq!(e.code(), "bad-request");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_outputs_match_the_reference_spmv_bitwise() {
        let dir = tmp_dir("batch");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ServeEngine::new(ServeConfig::quick(&dir));
        let info = engine.register_suite(1, 256).unwrap();
        let a = engine.matrix(info.key).unwrap();
        let xs: Vec<Vec<f64>> = (0..4).map(|s| seeded_vector(info.cols, s)).collect();
        let rep = engine.run_batch(info.key, &xs).unwrap();
        assert_eq!(rep.outputs.len(), 4);
        for (x, y) in xs.iter().zip(&rep.outputs) {
            let expect = a.spmv(x);
            let got: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "fused output must be bitwise the reference SpMV");
        }
        let s = engine.stats();
        assert_eq!((s.requests, s.batches, s.fused_max), (4, 1, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_performs_zero_mapping_computations() {
        let dir = tmp_dir("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let first = ServeEngine::new(ServeConfig::quick(&dir));
        first.register_suite(1, 256).unwrap();
        first.register_suite(2, 256).unwrap();
        assert_eq!(first.stats().mappings, MappingStats { computed: 2, disk_hits: 0, healed: 0 });

        // The "restarted daemon": a fresh engine over the same cache dir.
        let second = ServeEngine::new(ServeConfig::quick(&dir));
        let info = second.register_suite(1, 256).unwrap();
        second.register_suite(2, 256).unwrap();
        assert_eq!(
            second.stats().mappings,
            MappingStats { computed: 0, disk_hits: 2, healed: 0 },
            "a warm restart must not re-run Phase I/II"
        );
        // And a submit on the warmed mapping still answers correctly.
        let x = seeded_vector(info.cols, 9);
        let rep = second.run_batch(info.key, std::slice::from_ref(&x)).unwrap();
        let a = second.matrix(info.key).unwrap();
        assert_eq!(rep.outputs[0], a.spmv(&x));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_corruption_is_healed_by_the_mapping_store() {
        let dir = tmp_dir("heal");
        let _ = std::fs::remove_dir_all(&dir);
        let first = ServeEngine::new(ServeConfig::quick(&dir));
        first.register_suite(1, 256).unwrap();
        first.register_suite(2, 256).unwrap();

        // A chaos plan corrupts one artifact and truncates the other at
        // "startup"; the restarted engine must recompute both, heal the
        // files, and still answer correctly.
        let cfg = ServeConfig {
            chaos: ChaosPlan::parse("corrupt-map=0,truncate-map=1").unwrap(),
            ..ServeConfig::quick(&dir)
        };
        let second = ServeEngine::new(cfg);
        second.chaos().apply_map_corruption(&dir.join("mappings"));
        let info = second.register_suite(1, 256).unwrap();
        second.register_suite(2, 256).unwrap();
        let m = second.stats().mappings;
        assert_eq!((m.computed, m.healed), (2, 2), "{m:?}");
        let x = seeded_vector(info.cols, 3);
        let rep = second.run_batch(info.key, std::slice::from_ref(&x)).unwrap();
        let a = second.matrix(info.key).unwrap();
        assert_eq!(rep.outputs[0], a.spmv(&x));

        // Healed on disk: a third engine warms cleanly again.
        let third = ServeEngine::new(ServeConfig::quick(&dir));
        third.register_suite(1, 256).unwrap();
        third.register_suite(2, 256).unwrap();
        assert_eq!(third.stats().mappings, MappingStats { computed: 0, disk_hits: 2, healed: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_and_counts_requests() {
        let dir = tmp_dir("manifest");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ServeEngine::new(ServeConfig::quick(&dir));
        let info = engine.register_suite(1, 256).unwrap();
        let xs = vec![seeded_vector(info.cols, 0), seeded_vector(info.cols, 1)];
        engine.run_batch(info.key, &xs).unwrap();
        engine.note_request(12.5, 2, 1000, 0);
        engine.note_request(3.0, 2, 1000, 0);
        engine.note_shed(7);
        engine.note_retry(1);
        engine.note_deadline_miss(250);
        engine.note_depth(5);
        engine.note_queue_age(42.0);
        let path = engine.write_manifest().unwrap();
        let v = parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("batches").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("shed").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("deadline_miss").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("queue_hwm").unwrap().as_u64(), Some(5));
        let maps = v.get("mappings").unwrap();
        assert_eq!(maps.get("computed").unwrap().as_u64(), Some(1));
        assert_eq!(maps.get("healed").unwrap().as_u64(), Some(0));
        let tl = engine.timeline();
        assert_eq!(tl.series.len(), 8);
        let by_name = |name: &str| {
            tl.series
                .iter()
                .find(|(k, _)| k.name == name)
                .map(|(_, s)| s.total_count())
                .unwrap_or(0)
        };
        assert_eq!(by_name("queue-wait-us"), 2);
        assert_eq!(by_name("shed"), 1);
        assert_eq!(by_name("retries"), 1);
        assert_eq!(by_name("deadline-miss"), 1);
        assert_eq!(by_name("queue-age-us"), 1);
        engine.write_timeline().unwrap();
        let text = std::fs::read_to_string(dir.join(TIMELINE_FILE)).unwrap();
        spacea_obs::json::validate_chrome_trace(&text).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_matrix_and_bad_batch_are_errors() {
        let dir = tmp_dir("err");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = ServeEngine::new(ServeConfig::quick(&dir));
        let e = engine.run_batch(42, &[vec![1.0]]).unwrap_err();
        assert_eq!(e.code(), "unknown-matrix");
        let info = engine.register_suite(1, 256).unwrap();
        let e = engine.run_batch(info.key, &[]).unwrap_err();
        assert_eq!(e.code(), "bad-request", "empty batch: {e}");
        let e = engine.run_batch(info.key, &[vec![1.0; 3]]).unwrap_err();
        assert_eq!(e.code(), "bad-request", "wrong length: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
