//! The batching service: a bounded admission queue in front of a single
//! batcher thread that fuses concurrent same-matrix requests into one
//! simulated SpMM pass.
//!
//! Fusing is correctness-free by construction: the engine guarantees each
//! fused output vector is bitwise what a solo SpMV run of that vector
//! returns (see the `spmm_equivalence` property tests in `spacea-arch`),
//! so the batcher is pure scheduling — it only decides *latency*, never
//! *values*.

use crate::engine::ServeEngine;
use std::collections::VecDeque;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one completed request returns to its submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// The output vector — bitwise identical to a solo SpMV of the input.
    pub y: Vec<f64>,
    /// How many requests were fused into the pass that answered this one.
    pub batch: usize,
    /// Simulated cycles of that fused pass.
    pub cycles: u64,
    /// Wall-clock microseconds between admission and execution start.
    pub queue_wait_us: u64,
}

/// One queued request.
struct Pending {
    matrix: u64,
    x: Vec<f64>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<SubmitReply, String>>,
}

/// A running batching service over a [`ServeEngine`].
///
/// [`Service::submit`] blocks the calling thread until its request has
/// been executed (possibly fused with others) and returns the reply; the
/// bounded admission queue applies backpressure by blocking submitters
/// once `queue_depth` requests are waiting.
pub struct Service {
    engine: Arc<ServeEngine>,
    tx: Mutex<Option<SyncSender<Pending>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Service {
    /// Starts the batcher thread over an existing engine.
    pub fn over(engine: Arc<ServeEngine>) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Pending>(engine.config().queue_depth.max(1));
        let worker_engine = Arc::clone(&engine);
        let spawned = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || batcher_loop(&worker_engine, &rx));
        let (tx, worker) = match spawned {
            Ok(handle) => (Some(tx), Some(handle)),
            Err(e) => {
                // Without a batcher the service is stopped from birth:
                // dropping `tx` here makes every submit fail cleanly.
                eprintln!("serve: failed to spawn batcher thread: {e}");
                (None, None)
            }
        };
        Service { engine, tx: Mutex::new(tx), worker: Mutex::new(worker) }
    }

    /// The engine this service executes on.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Submits one request and blocks until its batch has executed.
    ///
    /// # Errors
    ///
    /// Returns a message if the service is stopped, the matrix key is
    /// unknown, the vector length mismatches, or the simulator fails.
    pub fn submit(&self, matrix: u64, x: Vec<f64>) -> Result<SubmitReply, String> {
        let tx = lock(&self.tx).clone().ok_or_else(|| "service is stopped".to_string())?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let pending = Pending { matrix, x, enqueued: Instant::now(), reply: reply_tx };
        tx.send(pending).map_err(|_| "service is stopped".to_string())?;
        drop(tx);
        reply_rx.recv().map_err(|_| "service dropped the request".to_string())?
    }

    /// Stops the batcher: hangs up the admission queue, drains what is
    /// already enqueued, and joins the thread. Idempotent.
    pub fn stop(&self) {
        *lock(&self.tx) = None;
        if let Some(handle) = lock(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batcher: waits for a request, gathers concurrent ones for a short
/// window, fuses the same-matrix prefix-by-arrival into one SpMM pass,
/// and replies to every member.
fn batcher_loop(engine: &ServeEngine, rx: &mpsc::Receiver<Pending>) {
    let max_batch = engine.config().max_batch.max(1);
    let gather = engine.config().gather_window;
    let mut pending: VecDeque<Pending> = VecDeque::new();
    loop {
        if pending.is_empty() {
            match rx.recv() {
                Ok(p) => pending.push_back(p),
                Err(_) => return, // hung up and fully drained
            }
        }
        // Gather window: let concurrent requests arrive so they can fuse.
        let deadline = Instant::now() + gather;
        while pending.len() < max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(p) => pending.push_back(p),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Fuse: the oldest request plus every same-matrix request behind
        // it, in arrival order, up to the batch cap. Other matrices keep
        // their arrival order for the next pass.
        let Some(first) = pending.pop_front() else { continue };
        let key = first.matrix;
        let mut batch = vec![first];
        let mut rest = VecDeque::with_capacity(pending.len());
        for p in pending.drain(..) {
            if p.matrix == key && batch.len() < max_batch {
                batch.push(p);
            } else {
                rest.push_back(p);
            }
        }
        pending = rest;
        run_batch(engine, key, batch, pending.len());
    }
}

/// Executes one fused batch and distributes replies.
fn run_batch(engine: &ServeEngine, key: u64, mut batch: Vec<Pending>, depth: usize) {
    let k = batch.len();
    let xs: Vec<Vec<f64>> = batch.iter_mut().map(|p| std::mem::take(&mut p.x)).collect();
    match engine.run_batch(key, &xs) {
        Ok(rep) => {
            let cycles = rep.report.cycles;
            for (p, y) in batch.into_iter().zip(rep.outputs) {
                let queue_wait_us = p.enqueued.elapsed().as_micros() as u64;
                engine.note_request(queue_wait_us as f64, k, cycles, depth);
                let _ = p.reply.send(Ok(SubmitReply { y, batch: k, cycles, queue_wait_us }));
            }
        }
        Err(e) => {
            for p in batch {
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::protocol::seeded_vector;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-serve-service-{tag}-{}", std::process::id()))
    }

    #[test]
    fn concurrent_mixed_submits_all_match_the_reference() {
        let dir = tmp_dir("mixed");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let m1 = engine.register_suite(1, 256).unwrap();
        let m2 = engine.register_suite(2, 256).unwrap();
        let service = Arc::new(Service::over(Arc::clone(&engine)));

        let mut handles = Vec::new();
        for t in 0..8u64 {
            let service = Arc::clone(&service);
            let engine = Arc::clone(&engine);
            let info = if t % 2 == 0 { m1 } else { m2 };
            handles.push(std::thread::spawn(move || {
                let x = seeded_vector(info.cols, t);
                let reply = service.submit(info.key, x.clone()).unwrap();
                let expect = engine.matrix(info.key).unwrap().spmv(&x);
                let got: Vec<u64> = reply.y.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "thread {t}: batched reply must be bitwise the solo SpMV");
                assert!(reply.batch >= 1 && reply.cycles > 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(stats.batches <= 8, "fusion never multiplies passes");
        service.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_after_stop_fails_cleanly() {
        let dir = tmp_dir("stopped");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        service.stop();
        service.stop(); // idempotent
        let e = service.submit(info.key, seeded_vector(info.cols, 0)).unwrap_err();
        assert!(e.contains("stopped"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_reach_the_submitter() {
        let dir = tmp_dir("err");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let service = Service::over(Arc::clone(&engine));
        let e = service.submit(42, vec![1.0]).unwrap_err();
        assert!(e.contains("unknown matrix"), "{e}");
        service.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
