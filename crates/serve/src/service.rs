//! The batching service: a bounded admission queue in front of a single
//! batcher thread that fuses concurrent same-matrix requests into one
//! simulated SpMM pass.
//!
//! Fusing is correctness-free by construction: the engine guarantees each
//! fused output vector is bitwise what a solo SpMV run of that vector
//! returns (see the `spmm_equivalence` property tests in `spacea-arch`),
//! so the batcher is pure scheduling — it only decides *latency*, never
//! *values*.
//!
//! # Request lifecycle guarantees
//!
//! Every request admitted by [`Service::submit`] terminates in exactly one
//! of three ways, all explicit:
//!
//! 1. **Acknowledged** — its batch executed and the reply carries the
//!    output vector. The acknowledgment was journaled (see
//!    [`crate::journal`]) *before* the reply was sent.
//! 2. **Rejected with a coded error** — [`ServeError::Overloaded`] at
//!    admission when the queue depth crosses the shed mark,
//!    [`ServeError::DeadlineExceeded`] when the per-request deadline
//!    elapses first, or a simulator/injection error after the bounded
//!    retry budget (transient faults retried with splitmix-jittered
//!    exponential backoff; hang-class never retried, mirroring the PR 3
//!    supervision policy).
//! 3. **[`ServeError::Lost`]** — the batcher thread died. This code
//!    existing is what makes "silently lost" impossible: a request that
//!    cannot be answered still gets a reply naming that fact.

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::journal::{vec_hash, AckRecord};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic backoff jitter in `[0.5, 1.5)` from the matrix key and
/// attempt number — the same splitmix64 mixing (and the same range) as the
/// harness supervisor's, so concurrent retries spread out instead of
/// thundering in lockstep, without any wall-clock randomness.
fn jitter_factor(key: u64, attempt: u32) -> f64 {
    let mut z = key ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
}

/// What one completed request returns to its submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// The output vector — bitwise identical to a solo SpMV of the input.
    pub y: Vec<f64>,
    /// How many requests were fused into the pass that answered this one.
    pub batch: usize,
    /// Simulated cycles of that fused pass.
    pub cycles: u64,
    /// Wall-clock microseconds between admission and execution start.
    pub queue_wait_us: u64,
}

/// One queued request.
struct Pending {
    matrix: u64,
    x: Vec<f64>,
    /// Admission ordinal (0-based), the address chaos `stall-req` uses.
    ordinal: u64,
    enqueued: Instant,
    deadline: Instant,
    reply: mpsc::Sender<Result<SubmitReply, ServeError>>,
}

/// A running batching service over a [`ServeEngine`].
///
/// [`Service::submit`] blocks the calling thread until its request has
/// been executed (possibly fused with others) and returns the reply. Two
/// mechanisms bound that wait: the admission queue sheds load with an
/// explicit [`ServeError::Overloaded`] once `shed_mark` requests are in
/// flight, and every admitted request carries a deadline after which the
/// submitter is released with [`ServeError::DeadlineExceeded`].
pub struct Service {
    engine: Arc<ServeEngine>,
    tx: Mutex<Option<SyncSender<Pending>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Requests admitted but not yet finished (replied or cancelled).
    depth: Arc<AtomicUsize>,
    /// Admission ordinal counter for chaos stall addressing.
    admitted: AtomicU64,
}

impl Service {
    /// Starts the batcher thread over an existing engine.
    pub fn over(engine: Arc<ServeEngine>) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Pending>(engine.config().queue_depth.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let worker_engine = Arc::clone(&engine);
        let worker_depth = Arc::clone(&depth);
        let spawned = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || batcher_loop(&worker_engine, &rx, &worker_depth));
        let (tx, worker) = match spawned {
            Ok(handle) => (Some(tx), Some(handle)),
            Err(e) => {
                // Without a batcher the service is stopped from birth:
                // dropping `tx` here makes every submit fail cleanly.
                eprintln!("serve: failed to spawn batcher thread: {e}");
                (None, None)
            }
        };
        Service {
            engine,
            tx: Mutex::new(tx),
            worker: Mutex::new(worker),
            depth,
            admitted: AtomicU64::new(0),
        }
    }

    /// The engine this service executes on.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Requests currently admitted and not yet finished.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Submits one request under the configured default deadline.
    ///
    /// # Errors
    ///
    /// Every failure is a coded [`ServeError`]; see the module docs for
    /// the lifecycle contract.
    pub fn submit(&self, matrix: u64, x: Vec<f64>) -> Result<SubmitReply, ServeError> {
        self.submit_within(matrix, x, self.engine.config().deadline)
    }

    /// Submits one request and blocks until it is answered, rejected, or
    /// `deadline` elapses.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when shed at admission,
    /// [`ServeError::DeadlineExceeded`] when the deadline elapses first,
    /// [`ServeError::Stopped`] after [`Service::stop`],
    /// [`ServeError::Lost`] if the batcher died mid-flight, and the
    /// engine's own errors for unknown matrices or simulator failures.
    pub fn submit_within(
        &self,
        matrix: u64,
        x: Vec<f64>,
        deadline: Duration,
    ) -> Result<SubmitReply, ServeError> {
        let tx = lock(&self.tx).clone().ok_or(ServeError::Stopped)?;
        let waiting = self.depth.load(Ordering::Relaxed);
        if waiting >= self.engine.config().shed_mark.max(1) {
            self.engine.note_shed(waiting);
            return Err(ServeError::Overloaded { depth: waiting });
        }
        let now = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        let pending = Pending {
            matrix,
            x,
            ordinal: self.admitted.fetch_add(1, Ordering::Relaxed),
            enqueued: now,
            deadline: now + deadline,
            reply: reply_tx,
        };
        // Admitted requests own one unit of depth until the batcher
        // finishes them (reply or cancellation); rejected sends give the
        // unit straight back.
        let depth_now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.engine.note_depth(depth_now);
        match tx.try_send(pending) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.engine.note_shed(depth_now);
                return Err(ServeError::Overloaded { depth: depth_now });
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return Err(ServeError::Stopped);
            }
        }
        drop(tx);
        match reply_rx.recv_timeout(deadline) {
            Ok(result) => result,
            // The batcher still owns the request and will cancel (or
            // late-answer into this closed channel and journal) it; either
            // way the submitter leaves with an explicit coded error now.
            Err(RecvTimeoutError::Timeout) => {
                Err(ServeError::DeadlineExceeded { waited_ms: now.elapsed().as_millis() as u64 })
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Lost),
        }
    }

    /// Stops the batcher: hangs up the admission queue, drains what is
    /// already enqueued, and joins the thread. Idempotent.
    pub fn stop(&self) {
        *lock(&self.tx) = None;
        if let Some(handle) = lock(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batcher: waits for a request, gathers concurrent ones for a short
/// window, fuses the same-matrix prefix-by-arrival into one SpMM pass,
/// and replies to every member.
fn batcher_loop(engine: &ServeEngine, rx: &mpsc::Receiver<Pending>, depth: &AtomicUsize) {
    let cfg = engine.config();
    let max_batch = cfg.max_batch.max(1);
    let mut pending: VecDeque<Pending> = VecDeque::new();
    loop {
        if pending.is_empty() {
            match rx.recv() {
                Ok(p) => pending.push_back(p),
                Err(_) => return, // hung up and fully drained
            }
            // Drain whatever already queued up behind it without waiting.
            while pending.len() < max_batch {
                match rx.try_recv() {
                    Ok(p) => pending.push_back(p),
                    Err(_) => break,
                }
            }
        }
        // Adaptive gather window: when the request arrived to an idle
        // queue there is nothing in flight to fuse with, so waiting the
        // full window would only add latency — use the short idle window.
        // A busy queue keeps the full window to maximize fusion.
        let gather = if pending.len() > 1 { cfg.gather_window } else { cfg.gather_idle };
        let gather_deadline = Instant::now() + gather;
        while pending.len() < max_batch {
            let left = gather_deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(p) => pending.push_back(p),
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        // Fuse: the oldest live request plus every same-matrix request
        // behind it, in arrival order, up to the batch cap. Requests whose
        // deadline already elapsed are cancelled here — explicitly, never
        // silently — and other matrices keep their order for the next pass.
        let now = Instant::now();
        let Some(first) = pending.pop_front() else { continue };
        if first.deadline <= now {
            cancel(engine, depth, first);
            continue;
        }
        let key = first.matrix;
        let mut batch = vec![first];
        let mut rest = VecDeque::with_capacity(pending.len());
        for p in pending.drain(..) {
            if p.deadline <= now {
                cancel(engine, depth, p);
            } else if p.matrix == key && batch.len() < max_batch {
                batch.push(p);
            } else {
                rest.push_back(p);
            }
        }
        pending = rest;
        execute_batch(engine, depth, key, batch, pending.len());
    }
}

/// Cancels one expired request with an explicit coded reply.
fn cancel(engine: &ServeEngine, depth: &AtomicUsize, p: Pending) {
    depth.fetch_sub(1, Ordering::Relaxed);
    let waited_ms = p.enqueued.elapsed().as_millis() as u64;
    engine.note_deadline_miss(waited_ms);
    let _ = p.reply.send(Err(ServeError::DeadlineExceeded { waited_ms }));
}

/// Executes one fused batch — through the chaos hooks and the bounded
/// retry policy — journals the acknowledgments, and distributes replies.
fn execute_batch(
    engine: &ServeEngine,
    depth: &AtomicUsize,
    key: u64,
    mut batch: Vec<Pending>,
    queued_behind: usize,
) {
    // Chaos stall: the longest stall armed for any member delays the whole
    // batch (it is one fused pass). A stall can push members past their
    // deadline; those are cancelled before execution, so a stalled-out
    // request is never answered *and* never silently dropped.
    let stall = batch.iter().filter_map(|p| engine.chaos().request_stall(p.ordinal)).max();
    if let Some(d) = stall {
        std::thread::sleep(d);
        let now = Instant::now();
        let (live, expired): (Vec<_>, Vec<_>) = batch.into_iter().partition(|p| p.deadline > now);
        for p in expired {
            cancel(engine, depth, p);
        }
        batch = live;
        if batch.is_empty() {
            return;
        }
    }
    let k = batch.len();
    let xs: Vec<Vec<f64>> = batch.iter_mut().map(|p| std::mem::take(&mut p.x)).collect();
    let cfg = engine.config();
    let mut attempt: u32 = 0;
    let outcome = loop {
        let result = match engine.chaos().on_batch_attempt() {
            Some(injected) => Err(injected),
            None => engine.run_batch(key, &xs),
        };
        match result {
            Ok(rep) => break Ok(rep),
            // Transient failures get a bounded, deterministically-jittered
            // exponential backoff; hang-class failures are never retryable
            // (ServeError::retryable), so they fall straight through.
            Err(e) if e.retryable() && attempt < cfg.max_retries => {
                attempt += 1;
                engine.note_retry(attempt);
                let base = cfg.retry_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(base.mul_f64(jitter_factor(key, attempt)));
            }
            Err(e) => break Err(e),
        }
    };
    match outcome {
        Ok(rep) => {
            let cycles = rep.report.cycles;
            // Journal first, acknowledge second: the on-disk journal is
            // always a superset of what submitters saw succeed, so a
            // crashed daemon can prove which requests were answered.
            let records: Vec<AckRecord> = xs
                .iter()
                .zip(&rep.outputs)
                .map(|(x, y)| AckRecord {
                    matrix: key,
                    x_hash: vec_hash(x),
                    y_hash: vec_hash(y),
                    batch: k,
                    cycles,
                })
                .collect();
            if let Err(e) = engine.journal().append(&records) {
                // Journal durability is best-effort against I/O failure
                // (disk full); the answer itself is still correct, so the
                // submitter is acknowledged rather than failed over
                // bookkeeping.
                eprintln!("serve: acknowledgment journal append failed: {e}");
            } else {
                engine.note_acked_batch();
            }
            // The batch's oldest member measures admission-queue age: it
            // waited the longest of anything that just left the queue.
            let oldest_us =
                batch.iter().map(|p| p.enqueued.elapsed().as_micros() as u64).max().unwrap_or(0);
            engine.note_queue_age(oldest_us as f64);
            for (p, y) in batch.into_iter().zip(rep.outputs) {
                let queue_wait_us = p.enqueued.elapsed().as_micros() as u64;
                depth.fetch_sub(1, Ordering::Relaxed);
                engine.note_request(queue_wait_us as f64, k, cycles, queued_behind);
                let _ = p.reply.send(Ok(SubmitReply { y, batch: k, cycles, queue_wait_us }));
            }
        }
        Err(e) => {
            for p in batch {
                depth.fetch_sub(1, Ordering::Relaxed);
                let _ = p.reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::engine::ServeConfig;
    use crate::journal::AckJournal;
    use crate::protocol::seeded_vector;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-serve-service-{tag}-{}", std::process::id()))
    }

    #[test]
    fn concurrent_mixed_submits_all_match_the_reference() {
        let dir = tmp_dir("mixed");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let m1 = engine.register_suite(1, 256).unwrap();
        let m2 = engine.register_suite(2, 256).unwrap();
        let service = Arc::new(Service::over(Arc::clone(&engine)));

        let mut handles = Vec::new();
        for t in 0..8u64 {
            let service = Arc::clone(&service);
            let engine = Arc::clone(&engine);
            let info = if t % 2 == 0 { m1 } else { m2 };
            handles.push(std::thread::spawn(move || {
                let x = seeded_vector(info.cols, t);
                let reply = service.submit(info.key, x.clone()).unwrap();
                let expect = engine.matrix(info.key).unwrap().spmv(&x);
                let got: Vec<u64> = reply.y.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "thread {t}: batched reply must be bitwise the solo SpMV");
                assert!(reply.batch >= 1 && reply.cycles > 0);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(stats.batches <= 8, "fusion never multiplies passes");
        service.stop();
        assert_eq!(service.depth(), 0, "every admitted request was finished");
        // Every acknowledgment was journaled before it was sent.
        let load = AckJournal::load(engine.journal().dir());
        assert_eq!(load.records.len(), 8);
        assert_eq!(load.corrupt_files, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_after_stop_fails_cleanly() {
        let dir = tmp_dir("stopped");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        service.stop();
        service.stop(); // idempotent
        let e = service.submit(info.key, seeded_vector(info.cols, 0)).unwrap_err();
        assert_eq!(e, ServeError::Stopped);
        assert_eq!(e.code(), "stopped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_reach_the_submitter() {
        let dir = tmp_dir("err");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(ServeEngine::new(ServeConfig::quick(&dir)));
        let service = Service::over(Arc::clone(&engine));
        let e = service.submit(42, vec![1.0]).unwrap_err();
        assert_eq!(e.code(), "unknown-matrix");
        service.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_with_an_explicit_coded_error() {
        let dir = tmp_dir("shed");
        let _ = std::fs::remove_dir_all(&dir);
        // Shed mark of 1 and a long stall on the first admitted request:
        // while it is in flight, any further submit must be rejected, not
        // queued behind it.
        let cfg = ServeConfig {
            shed_mark: 1,
            chaos: ChaosPlan::parse("stall-req=0@400").unwrap(),
            ..ServeConfig::quick(&dir)
        };
        let engine = Arc::new(ServeEngine::new(cfg));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Arc::new(Service::over(Arc::clone(&engine)));
        let bg = {
            let service = Arc::clone(&service);
            let x = seeded_vector(info.cols, 0);
            std::thread::spawn(move || service.submit(info.key, x))
        };
        // Wait for the first request to be admitted.
        while service.depth() == 0 {
            std::thread::yield_now();
        }
        let e = service.submit(info.key, seeded_vector(info.cols, 1)).unwrap_err();
        assert_eq!(e.code(), "overloaded", "{e}");
        bg.join().unwrap().unwrap();
        service.stop();
        let s = engine.stats();
        assert!(s.shed >= 1, "{s:?}");
        assert!(s.queue_hwm >= 1, "{s:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_exceeded_is_explicit_and_counted() {
        let dir = tmp_dir("deadline");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            chaos: ChaosPlan::parse("stall-req=0@300").unwrap(),
            ..ServeConfig::quick(&dir)
        };
        let engine = Arc::new(ServeEngine::new(cfg));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        let x = seeded_vector(info.cols, 0);
        let start = Instant::now();
        let e = service.submit_within(info.key, x, Duration::from_millis(40)).unwrap_err();
        assert_eq!(e.code(), "deadline-exceeded", "{e}");
        assert!(start.elapsed() < Duration::from_millis(280), "released before the stall ended");
        service.stop(); // joins the batcher, so the cancellation is counted
        let s = engine.stats();
        assert_eq!(s.deadline_miss, 1, "{s:?}");
        assert_eq!(s.requests, 0, "a cancelled request never executed");
        // Nothing was acknowledged, so nothing may be journaled.
        assert!(AckJournal::load(engine.journal().dir()).records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_batch_kill_is_retried_and_still_bitwise_correct() {
        let dir = tmp_dir("retry");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            chaos: ChaosPlan::parse("kill-batch=0").unwrap(),
            retry_backoff: Duration::from_millis(1),
            ..ServeConfig::quick(&dir)
        };
        let engine = Arc::new(ServeEngine::new(cfg));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        let x = seeded_vector(info.cols, 7);
        let reply = service.submit(info.key, x.clone()).unwrap();
        let expect = engine.matrix(info.key).unwrap().spmv(&x);
        assert_eq!(reply.y, expect, "the retried batch answers bitwise correctly");
        service.stop();
        let s = engine.stats();
        assert_eq!(s.retries, 1, "{s:?}");
        assert_eq!(AckJournal::load(engine.journal().dir()).records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedge_class_faults_are_never_retried() {
        let dir = tmp_dir("wedge");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            chaos: ChaosPlan::parse("wedge-batch=0").unwrap(),
            ..ServeConfig::quick(&dir)
        };
        let engine = Arc::new(ServeEngine::new(cfg));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        let e = service.submit(info.key, seeded_vector(info.cols, 0)).unwrap_err();
        assert!(matches!(e, ServeError::Injected { transient: false, .. }), "{e}");
        service.stop();
        let s = engine.stats();
        assert_eq!(s.retries, 0, "wedges must not burn the retry budget");
        assert!(
            AckJournal::load(engine.journal().dir()).records.is_empty(),
            "a failed batch must never be journaled as acknowledged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_queue_uses_the_short_gather_window() {
        let dir = tmp_dir("idle");
        let _ = std::fs::remove_dir_all(&dir);
        // A pathological full window: if the batcher waited it out for a
        // lone request, this test would take > 2 s. The adaptive window
        // must answer an idle-queue submit in a fraction of that.
        let cfg = ServeConfig {
            gather_window: Duration::from_secs(2),
            gather_idle: Duration::from_millis(1),
            ..ServeConfig::quick(&dir)
        };
        let engine = Arc::new(ServeEngine::new(cfg));
        let info = engine.register_suite(1, 256).unwrap();
        let service = Service::over(Arc::clone(&engine));
        let start = Instant::now();
        service.submit(info.key, seeded_vector(info.cols, 0)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "idle submit took {:?}; the adaptive window did not kick in",
            start.elapsed()
        );
        service.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for key in [0u64, 7, u64::MAX] {
            for attempt in 1..=4u32 {
                let a = jitter_factor(key, attempt);
                assert_eq!(a, jitter_factor(key, attempt));
                assert!((0.5..1.5).contains(&a), "{a}");
            }
        }
    }
}
