//! A blocking client for the daemon's line/JSON protocol.

use crate::protocol::{self, Request, PORT_FILE};
use spacea_harness::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// What a successful `register` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterReply {
    /// Content key of the registered matrix.
    pub matrix: u64,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
}

/// What a successful `submit` call returned.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The output vector, decoded bitwise from the wire.
    pub y: Vec<f64>,
    /// Fused batch width of the pass that answered this request.
    pub batch: usize,
    /// Simulated cycles of that pass.
    pub cycles: u64,
    /// Microseconds the request waited in the admission queue.
    pub queue_wait_us: u64,
}

/// Reads the daemon's bound port from `<cache_dir>/serve.port`.
///
/// # Errors
///
/// Returns a message if the file is absent (daemon not up) or malformed.
pub fn read_port(cache_dir: &Path) -> Result<u16, String> {
    let path = cache_dir.join(PORT_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("no daemon port at {}: {e}", path.display()))?;
    text.trim().parse().map_err(|e| format!("bad port file {}: {e}", path.display()))
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon on `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection cannot be established.
    pub fn connect(port: u16) -> Result<Client, String> {
        let stream = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| format!("cannot reach daemon on port {port}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects via the port file a daemon published under `cache_dir`.
    ///
    /// # Errors
    ///
    /// Returns a message if the port file is absent/malformed or the
    /// connection fails.
    pub fn connect_dir(cache_dir: &Path) -> Result<Client, String> {
        Client::connect(read_port(cache_dir)?)
    }

    /// Sends one request and decodes the matching response line.
    ///
    /// # Errors
    ///
    /// Returns a transport error, or the daemon's `error` field when the
    /// response reports `ok: false`.
    pub fn call(&mut self, req: &Request) -> Result<Json, String> {
        writeln!(self.writer, "{}", req.to_line()).map_err(|e| format!("send failed: {e}"))?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("daemon hung up".to_string());
        }
        let v = spacea_harness::json::parse(line.trim())?;
        if protocol::is_ok(&v) {
            Ok(v)
        } else {
            Err(protocol::error_of(&v)
                .unwrap_or("daemon reported an unspecified error")
                .to_string())
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn ping(&mut self) -> Result<(), String> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Registers a suite matrix and returns its content key and shape.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections.
    pub fn register(&mut self, id: u8, scale: usize) -> Result<RegisterReply, String> {
        let v = self.call(&Request::Register { id, scale })?;
        let field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("response lacks {name:?}"))
        };
        Ok(RegisterReply {
            matrix: field("matrix")?,
            rows: field("rows")? as usize,
            cols: field("cols")? as usize,
            nnz: field("nnz")? as usize,
        })
    }

    /// Submits a seeded request vector against a registered matrix and
    /// blocks for the (possibly fused) result.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections.
    pub fn submit(&mut self, matrix: u64, seed: u64) -> Result<SubmitOutcome, String> {
        let v = self.call(&Request::Submit { matrix, seed })?;
        let y = v
            .get("y")
            .and_then(protocol::y_from_bits)
            .ok_or_else(|| "response lacks a decodable \"y\"".to_string())?;
        let field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("response lacks {name:?}"))
        };
        Ok(SubmitOutcome {
            y,
            batch: field("batch")? as usize,
            cycles: field("cycles")?,
            queue_wait_us: field("queue_wait_us")?,
        })
    }

    /// Fetches the daemon's counters as raw JSON.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn stat(&mut self) -> Result<Json, String> {
        self.call(&Request::Stat)
    }

    /// Asks the daemon to stop (it flushes artifacts before exiting).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}
