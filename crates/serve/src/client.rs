//! A blocking client for the daemon's line/JSON protocol.
//!
//! Failures carry the daemon's stable error code ([`CallError::code`]):
//! transport problems use the synthetic `transport` code, daemon-side
//! rejections carry whatever `code` field the response held (see
//! [`crate::error::ServeError::code`]). Connecting via the cache
//! directory retries with backoff: publishing the port file races the
//! daemon's startup, and losing that race is a reason to wait, not fail.

use crate::protocol::{self, Request, PORT_FILE};
use spacea_harness::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Why a client call failed: the daemon's stable error code plus the
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallError {
    /// Stable machine-readable code: a [`crate::error::ServeError::code`]
    /// value from the daemon, or `"transport"` for connection-level
    /// failures that never produced a response.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl CallError {
    fn transport(message: impl Into<String>) -> CallError {
        CallError { code: "transport".into(), message: message.into() }
    }

    /// True for connection-level failures (as opposed to daemon-side
    /// coded rejections) — the class a caller may blindly retry against a
    /// fresh connection.
    pub fn is_transport(&self) -> bool {
        self.code == "transport"
    }
}

impl fmt::Display for CallError {
    // Shows the message and the code, so `unwrap_err` output in scripts
    // and tests names both without extra plumbing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.message, self.code)
    }
}

impl std::error::Error for CallError {}

/// What a successful `register` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterReply {
    /// Content key of the registered matrix.
    pub matrix: u64,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
}

/// What a successful `compact` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReply {
    /// Journal files removed by the pass.
    pub dropped_files: u64,
    /// Acknowledgment records inside the removed files.
    pub dropped_records: u64,
    /// Journal files still on disk after the pass.
    pub retained_files: u64,
}

/// What a successful `submit` call returned.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The output vector, decoded bitwise from the wire.
    pub y: Vec<f64>,
    /// Fused batch width of the pass that answered this request.
    pub batch: usize,
    /// Simulated cycles of that pass.
    pub cycles: u64,
    /// Microseconds the request waited in the admission queue.
    pub queue_wait_us: u64,
}

/// Reads the daemon's bound port from `<cache_dir>/serve.port`.
///
/// # Errors
///
/// Returns a `transport`-coded error if the file is absent (daemon not
/// up yet) or malformed.
pub fn read_port(cache_dir: &Path) -> Result<u16, CallError> {
    let path = cache_dir.join(PORT_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CallError::transport(format!("no daemon port at {}: {e}", path.display())))?;
    text.trim()
        .parse()
        .map_err(|e| CallError::transport(format!("bad port file {}: {e}", path.display())))
}

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon on `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Returns a `transport`-coded error if the connection cannot be
    /// established.
    pub fn connect(port: u16) -> Result<Client, CallError> {
        let stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| {
            CallError::transport(format!("cannot reach daemon on port {port}: {e}"))
        })?;
        let writer = stream
            .try_clone()
            .map_err(|e| CallError::transport(format!("cannot clone stream: {e}")))?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects via the port file a daemon published under `cache_dir`,
    /// retrying for up to five seconds — scripts routinely start the
    /// daemon and connect in the same breath, and the port file appears a
    /// beat after the process does.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's error once patience runs out.
    pub fn connect_dir(cache_dir: &Path) -> Result<Client, CallError> {
        Client::connect_dir_within(cache_dir, Duration::from_secs(5))
    }

    /// [`Client::connect_dir`] with an explicit patience budget. Retries
    /// both the port-file race (file not yet published) and connection
    /// refusal (stale port file from a previous life while the new daemon
    /// binds) with doubling backoff, starting at 2 ms and capped at
    /// 200 ms per wait.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's `transport`-coded error once `patience`
    /// is spent. `Duration::ZERO` makes exactly one attempt.
    pub fn connect_dir_within(cache_dir: &Path, patience: Duration) -> Result<Client, CallError> {
        let start = Instant::now();
        let mut backoff = Duration::from_millis(2);
        loop {
            let attempt = read_port(cache_dir).and_then(Client::connect);
            let err = match attempt {
                Ok(client) => return Ok(client),
                Err(e) => e,
            };
            let left = patience.saturating_sub(start.elapsed());
            if left.is_zero() {
                return Err(err);
            }
            std::thread::sleep(backoff.min(left));
            backoff = (backoff * 2).min(Duration::from_millis(200));
        }
    }

    /// Sends one request and decodes the matching response line.
    ///
    /// # Errors
    ///
    /// Returns a `transport`-coded error for connection failures, or the
    /// daemon's coded error when the response reports `ok: false`.
    pub fn call(&mut self, req: &Request) -> Result<Json, CallError> {
        writeln!(self.writer, "{}", req.to_line())
            .map_err(|e| CallError::transport(format!("send failed: {e}")))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| CallError::transport(format!("recv failed: {e}")))?;
        if n == 0 {
            return Err(CallError::transport("daemon hung up"));
        }
        let v = spacea_harness::json::parse(line.trim()).map_err(CallError::transport)?;
        if protocol::is_ok(&v) {
            Ok(v)
        } else {
            Err(CallError {
                code: protocol::code_of(&v).to_string(),
                message: protocol::error_of(&v)
                    .unwrap_or("daemon reported an unspecified error")
                    .to_string(),
            })
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn ping(&mut self) -> Result<(), CallError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Registers a suite matrix and returns its content key and shape.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections.
    pub fn register(&mut self, id: u8, scale: usize) -> Result<RegisterReply, CallError> {
        let v = self.call(&Request::Register { id, scale })?;
        register_reply(&v)
    }

    /// Registers a matrix from MatrixMarket text and returns its content
    /// key and shape — the same handle space `register` uses, so `submit`
    /// works identically against it.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections
    /// (`bad-request` for unparseable MatrixMarket text).
    pub fn register_mtx(&mut self, text: &str) -> Result<RegisterReply, CallError> {
        let v = self.call(&Request::RegisterMtx { text: text.to_string() })?;
        register_reply(&v)
    }

    /// Compacts the daemon's acknowledgment journal down to the newest
    /// `retain` files.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections.
    pub fn compact(&mut self, retain: usize) -> Result<CompactReply, CallError> {
        let v = self.call(&Request::Compact { retain })?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CallError::transport(format!("response lacks {name:?}")))
        };
        Ok(CompactReply {
            dropped_files: field("dropped_files")?,
            dropped_records: field("dropped_records")?,
            retained_files: field("retained_files")?,
        })
    }

    /// Submits a seeded request vector against a registered matrix and
    /// blocks for the (possibly fused) result, under the daemon's default
    /// deadline.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and daemon-side rejections
    /// (including `overloaded` and `deadline-exceeded`).
    pub fn submit(&mut self, matrix: u64, seed: u64) -> Result<SubmitOutcome, CallError> {
        self.submit_req(&Request::Submit { matrix, seed, deadline_ms: None })
    }

    /// [`Client::submit`] with an explicit per-request deadline.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`]; `deadline-exceeded` once `deadline_ms`
    /// elapses without an answer.
    pub fn submit_within(
        &mut self,
        matrix: u64,
        seed: u64,
        deadline_ms: u64,
    ) -> Result<SubmitOutcome, CallError> {
        self.submit_req(&Request::Submit { matrix, seed, deadline_ms: Some(deadline_ms) })
    }

    fn submit_req(&mut self, req: &Request) -> Result<SubmitOutcome, CallError> {
        let v = self.call(req)?;
        let y = v
            .get("y")
            .and_then(protocol::y_from_bits)
            .ok_or_else(|| CallError::transport("response lacks a decodable \"y\""))?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CallError::transport(format!("response lacks {name:?}")))
        };
        Ok(SubmitOutcome {
            y,
            batch: field("batch")? as usize,
            cycles: field("cycles")?,
            queue_wait_us: field("queue_wait_us")?,
        })
    }

    /// Fetches the daemon's counters as raw JSON.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn stat(&mut self) -> Result<Json, CallError> {
        self.call(&Request::Stat)
    }

    /// Asks the daemon to stop (it flushes artifacts before exiting).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(&mut self) -> Result<(), CallError> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}

/// Decodes the response shape `register` and `register-mtx` share.
fn register_reply(v: &Json) -> Result<RegisterReply, CallError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| CallError::transport(format!("response lacks {name:?}")))
    };
    Ok(RegisterReply {
        matrix: field("matrix")?,
        rows: field("rows")? as usize,
        cols: field("cols")? as usize,
        nnz: field("nnz")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_dir_retries_across_the_port_file_race() {
        let dir =
            std::env::temp_dir().join(format!("spacea-serve-portrace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Nothing listening and no port file: a zero-patience attempt
        // fails once, immediately.
        let start = Instant::now();
        let e = Client::connect_dir_within(&dir, Duration::ZERO).unwrap_err();
        assert!(e.is_transport(), "{e}");
        assert!(start.elapsed() < Duration::from_millis(500));
        // Publish the port file mid-retry; the client must pick it up.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let publisher = {
            let dir = dir.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                std::fs::write(dir.join(PORT_FILE), format!("{port}\n")).unwrap();
            })
        };
        let client = Client::connect_dir_within(&dir, Duration::from_secs(5));
        publisher.join().unwrap();
        assert!(client.is_ok(), "{:?}", client.err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn call_error_displays_message_and_code() {
        let e = CallError { code: "overloaded".into(), message: "queue full".into() };
        assert_eq!(e.to_string(), "queue full [overloaded]");
        assert!(!e.is_transport());
        assert!(CallError::transport("x").is_transport());
    }
}
