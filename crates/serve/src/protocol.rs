//! The line/JSON wire protocol between the `serve` CLI and the daemon.
//!
//! Each request is one line of `spacea_harness::json` text with a `"cmd"`
//! discriminator; each response is one line with an `"ok"` boolean.
//! Floats — the response vectors — travel as IEEE-754 bit patterns
//! (`u64`), so the protocol preserves the simulator's bitwise guarantees
//! end to end: what the client decodes is exactly what the machine
//! produced, including negative zeros.

use spacea_harness::json::Json;

/// Name of the file (under the daemon's cache directory) that holds the
/// bound TCP port, written once the listener is up. Doubles as the
/// "daemon is ready" signal for scripts.
pub const PORT_FILE: &str = "serve.port";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a Table I suite matrix by id and down-scale factor.
    Register {
        /// Suite matrix id (Table I numbering).
        id: u8,
        /// Down-scale factor handed to the generator.
        scale: usize,
    },
    /// Run SpMV of a deterministic seeded vector against a registered
    /// matrix. The daemon derives the vector from the seed so a dense
    /// vector never crosses the wire on the request path.
    Submit {
        /// Content key returned by `Register`.
        matrix: u64,
        /// Seed of the input vector (see [`seeded_vector`]).
        seed: u64,
        /// Per-request deadline override in milliseconds; `None` uses the
        /// daemon's configured default. A request not answered in time is
        /// rejected with the `deadline-exceeded` code.
        deadline_ms: Option<u64>,
    },
    /// Register a matrix from MatrixMarket text (the file body travels
    /// on the wire with newlines JSON-escaped), so serving is not
    /// suite-only.
    RegisterMtx {
        /// The MatrixMarket file contents.
        text: String,
    },
    /// Compact the acknowledgment journal down to the newest `retain`
    /// files (crash-safe watermark + unlink; see
    /// [`crate::journal::AckJournal::compact`]).
    Compact {
        /// How many journal files to keep.
        retain: usize,
    },
    /// Fetch engine counters.
    Stat,
    /// Stop the daemon (it flushes its manifest and telemetry first).
    Shutdown,
}

impl Request {
    /// Encodes the request as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj(vec![("cmd", Json::Str("ping".into()))]),
            Request::Register { id, scale } => Json::obj(vec![
                ("cmd", Json::Str("register".into())),
                ("id", Json::U64(u64::from(*id))),
                ("scale", Json::U64(*scale as u64)),
            ]),
            Request::Submit { matrix, seed, deadline_ms } => {
                let mut fields = vec![
                    ("cmd", Json::Str("submit".into())),
                    ("matrix", Json::U64(*matrix)),
                    ("seed", Json::U64(*seed)),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms", Json::U64(*ms)));
                }
                Json::obj(fields)
            }
            Request::RegisterMtx { text } => Json::obj(vec![
                ("cmd", Json::Str("register-mtx".into())),
                ("text", Json::Str(text.clone())),
            ]),
            Request::Compact { retain } => Json::obj(vec![
                ("cmd", Json::Str("compact".into())),
                ("retain", Json::U64(*retain as u64)),
            ]),
            Request::Stat => Json::obj(vec![("cmd", Json::Str("stat".into()))]),
            Request::Shutdown => Json::obj(vec![("cmd", Json::Str("shutdown".into()))]),
        }
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_text()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, an unknown `cmd`, or missing
    /// fields.
    pub fn parse(text: &str) -> Result<Request, String> {
        let v = spacea_harness::json::parse(text)?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| "request has no \"cmd\" field".to_string())?
            .to_string();
        let need_u64 = |field: &str| {
            v.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("\"{cmd}\" needs a numeric \"{field}\" field"))
        };
        match cmd.as_str() {
            "ping" => Ok(Request::Ping),
            "register" => {
                let id = need_u64("id")?;
                let id = u8::try_from(id).map_err(|_| format!("suite id {id} out of range"))?;
                Ok(Request::Register { id, scale: need_u64("scale")? as usize })
            }
            "submit" => Ok(Request::Submit {
                matrix: need_u64("matrix")?,
                seed: need_u64("seed")?,
                deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            }),
            "register-mtx" => {
                let text = v
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "\"register-mtx\" needs a string \"text\" field".to_string())?;
                Ok(Request::RegisterMtx { text: text.to_string() })
            }
            "compact" => Ok(Request::Compact { retain: need_u64("retain")? as usize }),
            "stat" => Ok(Request::Stat),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// A success response carrying `fields`, with `"ok": true` prepended.
pub fn ok(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// An error response: `{"ok": false, "error": msg}` with the generic
/// `internal` code. Prefer [`err_code`] when a more specific code exists.
pub fn err(msg: &str) -> Json {
    err_code("internal", msg)
}

/// An error response carrying a stable machine-readable code alongside the
/// human-readable message: `{"ok": false, "code": code, "error": msg}`.
/// The codes are [`crate::error::ServeError::code`] values; clients branch
/// on the code (retry `overloaded`, surface `deadline-exceeded`), never on
/// the message text.
pub fn err_code(code: &str, msg: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::Str(code.into())),
        ("error", Json::Str(msg.into())),
    ])
}

/// Whether a response reports success.
pub fn is_ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The error message of a failed response, if present.
pub fn error_of(v: &Json) -> Option<&str> {
    v.get("error").and_then(Json::as_str)
}

/// The machine-readable error code of a failed response. Responses from
/// daemons predating the code field decode as `"internal"`.
pub fn code_of(v: &Json) -> &str {
    v.get("code").and_then(Json::as_str).unwrap_or("internal")
}

/// Encodes an output vector as an array of IEEE-754 bit patterns.
pub fn y_bits(y: &[f64]) -> Json {
    Json::Arr(y.iter().map(|v| Json::U64(v.to_bits())).collect())
}

/// Decodes a [`y_bits`] array back into floats; `None` if the value is
/// not an all-numeric array.
pub fn y_from_bits(v: &Json) -> Option<Vec<f64>> {
    v.as_arr()?.iter().map(|e| e.as_u64().map(f64::from_bits)).collect()
}

/// The deterministic request vector for `seed`: `n` values in `[-1, 1)`
/// from a splitmix64 stream. Client and daemon derive it independently,
/// so only the 8-byte seed crosses the wire.
pub fn seeded_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let all = [
            Request::Ping,
            Request::Register { id: 3, scale: 256 },
            Request::Submit { matrix: 0xDEAD_BEEF_0123_4567, seed: 42, deadline_ms: None },
            Request::Submit { matrix: 7, seed: 0, deadline_ms: Some(250) },
            Request::RegisterMtx {
                text: "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n".into(),
            },
            Request::Compact { retain: 4 },
            Request::Stat,
            Request::Shutdown,
        ];
        for req in all {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_messages() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"submit\",\"matrix\":1}").is_err(), "missing seed");
        assert!(Request::parse("{\"cmd\":\"register\",\"id\":999,\"scale\":1}").is_err());
        assert!(Request::parse("{\"id\":1}").is_err(), "missing cmd");
        assert!(Request::parse("{\"cmd\":\"register-mtx\"}").is_err(), "missing text");
        assert!(Request::parse("{\"cmd\":\"compact\"}").is_err(), "missing retain");
    }

    #[test]
    fn vectors_round_trip_bitwise_including_negative_zero() {
        let y = vec![1.5, -0.0, f64::MIN_POSITIVE, -123.456];
        let back = y_from_bits(&y_bits(&y)).unwrap();
        let got: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        assert!(y_from_bits(&Json::Str("nope".into())).is_none());
    }

    #[test]
    fn seeded_vectors_are_deterministic_and_bounded() {
        let a = seeded_vector(1024, 7);
        let b = seeded_vector(1024, 7);
        assert_eq!(a, b);
        assert_ne!(a, seeded_vector(1024, 8));
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn responses_carry_ok_and_error() {
        let good = ok(vec![("cycles", Json::U64(9))]);
        assert!(is_ok(&good));
        assert_eq!(good.get("cycles").and_then(Json::as_u64), Some(9));
        let bad = err("nope");
        assert!(!is_ok(&bad));
        assert_eq!(error_of(&bad), Some("nope"));
        assert_eq!(code_of(&bad), "internal");
    }

    #[test]
    fn coded_errors_round_trip_their_code() {
        let v = err_code("overloaded", "queue full");
        assert!(!is_ok(&v));
        assert_eq!(code_of(&v), "overloaded");
        assert_eq!(error_of(&v), Some("queue full"));
        // A code-less legacy error decodes as the generic internal code.
        let legacy = Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::Str("x".into()))]);
        assert_eq!(code_of(&legacy), "internal");
    }
}
