//! The daemon: a localhost TCP listener dispatching the line/JSON
//! protocol onto a [`Service`].
//!
//! Startup order is the readiness contract: the engine comes up, the
//! listener binds, and only then is the bound port published to
//! `<cache_dir>/serve.port` — a script that sees the port file can
//! connect immediately. On shutdown the daemon flushes its manifest and
//! telemetry timeline, then removes the port file.
//!
//! When a [`crate::chaos::ChaosPlan`] is configured, its startup faults
//! (mapping-artifact corruption) are applied before the first register
//! warms the cache, and its connection faults (drop/delay by accept
//! ordinal) are applied here at the listener — so the client's connect
//! retry and the mapping store's healing path are exercised against real
//! damage, deterministically.

use crate::chaos::ConnFault;
use crate::engine::{write_atomic, ServeConfig, ServeEngine};
use crate::error::ServeError;
use crate::protocol::{self, Request, PORT_FILE};
use crate::service::Service;
use spacea_harness::json::Json;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs the daemon until a `shutdown` request arrives. `port` 0 binds an
/// ephemeral port; either way the bound port is published to the port
/// file once the listener accepts connections.
///
/// # Errors
///
/// Propagates listener-setup and cache-directory I/O failures. Per-
/// connection errors are logged and never take the daemon down.
pub fn run_daemon(cfg: ServeConfig, port: u16) -> std::io::Result<()> {
    let mappings_dir = cfg.cache_dir.join("mappings");
    let engine = Arc::new(ServeEngine::new(cfg));
    // Chaos startup faults bite before anything warms from disk, so the
    // register path below sees (and heals) the damage.
    engine.chaos().apply_map_corruption(&mappings_dir);
    let service = Service::over(Arc::clone(&engine));
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?.port();
    engine.write_manifest()?;
    let port_path = engine.config().cache_dir.join(PORT_FILE);
    write_atomic(&port_path, &format!("{bound}\n"))?;
    eprintln!(
        "serve: listening on 127.0.0.1:{bound} (cache {})",
        engine.config().cache_dir.display()
    );
    if !engine.chaos().plan().is_empty() {
        eprintln!("serve: chaos plan armed: {}", engine.chaos().plan());
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let fault = engine.chaos().on_connection();
                    if fault == Some(ConnFault::Drop) {
                        // Close before reading a byte: the client sees a
                        // hangup on a connection that acknowledged nothing.
                        drop(stream);
                        continue;
                    }
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || {
                        if let Some(ConnFault::Delay(d)) = fault {
                            std::thread::sleep(d);
                        }
                        handle_connection(stream, service, stop);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });

    service.stop();
    engine.write_manifest()?;
    engine.write_timeline()?;
    let _ = std::fs::remove_file(&port_path);
    eprintln!("serve: stopped");
    Ok(())
}

/// Serves one connection: a loop of request lines, one response line
/// each, until EOF, a protocol-level hangup, or daemon shutdown.
fn handle_connection(stream: TcpStream, service: &Service, stop: &AtomicBool) {
    let Ok(writer) = stream.try_clone() else { return };
    let mut writer = writer;
    // A finite read timeout lets handler threads notice daemon shutdown
    // instead of pinning the scope join on an idle client.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(line.trim()) {
            Ok(req) => dispatch(req, service, stop),
            Err(e) => protocol::err_code("bad-request", &e),
        };
        if writeln!(writer, "{}", response.to_text()).is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// A wire error response from a [`ServeError`]: stable code plus message.
fn err_of(e: &ServeError) -> Json {
    protocol::err_code(e.code(), &e.to_string())
}

/// Executes one request against the service and builds the response.
fn dispatch(req: Request, service: &Service, stop: &AtomicBool) -> Json {
    let engine = service.engine();
    match req {
        Request::Ping => protocol::ok(vec![]),
        Request::Register { id, scale } => match engine.register_suite(id, scale) {
            Ok(info) => {
                note_flush(engine);
                protocol::ok(vec![
                    ("matrix", Json::U64(info.key)),
                    ("rows", Json::U64(info.rows as u64)),
                    ("cols", Json::U64(info.cols as u64)),
                    ("nnz", Json::U64(info.nnz as u64)),
                ])
            }
            Err(e) => err_of(&e),
        },
        Request::Submit { matrix, seed, deadline_ms } => {
            let Some(a) = engine.matrix(matrix) else {
                return err_of(&ServeError::UnknownMatrix(matrix));
            };
            let x = protocol::seeded_vector(a.cols(), seed);
            let deadline = deadline_ms.map_or(engine.config().deadline, Duration::from_millis);
            match service.submit_within(matrix, x, deadline) {
                Ok(reply) => {
                    note_flush(engine);
                    protocol::ok(vec![
                        ("y", protocol::y_bits(&reply.y)),
                        ("batch", Json::U64(reply.batch as u64)),
                        ("cycles", Json::U64(reply.cycles)),
                        ("queue_wait_us", Json::U64(reply.queue_wait_us)),
                    ])
                }
                Err(e) => err_of(&e),
            }
        }
        Request::RegisterMtx { text } => match spacea_matrix::Csr::from_mtx(&text) {
            Ok(a) => {
                let info = engine.register(a);
                note_flush(engine);
                protocol::ok(vec![
                    ("matrix", Json::U64(info.key)),
                    ("rows", Json::U64(info.rows as u64)),
                    ("cols", Json::U64(info.cols as u64)),
                    ("nnz", Json::U64(info.nnz as u64)),
                ])
            }
            Err(e) => protocol::err_code("bad-request", &format!("mtx: {e}")),
        },
        Request::Compact { retain } => match engine.compact_journal(retain) {
            Ok(c) => protocol::ok(vec![
                ("dropped_files", Json::U64(c.dropped_files as u64)),
                ("dropped_records", Json::U64(c.dropped_records as u64)),
                ("retained_files", Json::U64(c.retained_files as u64)),
            ]),
            Err(e) => protocol::err(&format!("journal compaction failed: {e}")),
        },
        Request::Stat => {
            let s = engine.stats();
            let (journal_records, journal_files) = engine.journal_counts();
            protocol::ok(vec![
                ("registered", Json::U64(s.registered)),
                ("requests", Json::U64(s.requests)),
                ("batches", Json::U64(s.batches)),
                ("fused_max", Json::U64(s.fused_max)),
                ("shed", Json::U64(s.shed)),
                ("deadline_miss", Json::U64(s.deadline_miss)),
                ("retries", Json::U64(s.retries)),
                ("acked", Json::U64(s.acked)),
                ("queue_depth", Json::U64(service.depth() as u64)),
                ("queue_hwm", Json::U64(s.queue_hwm)),
                ("mappings_computed", Json::U64(s.mappings.computed)),
                ("mappings_disk_hits", Json::U64(s.mappings.disk_hits)),
                ("mappings_healed", Json::U64(s.mappings.healed)),
                ("journal_records", Json::U64(journal_records)),
                ("journal_files", Json::U64(journal_files)),
            ])
        }
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            protocol::ok(vec![("stopping", Json::Bool(true))])
        }
    }
}

/// Keeps the on-disk manifest current after state-changing requests so a
/// crash (or an impatient script) still sees up-to-date counters.
fn note_flush(engine: &ServeEngine) {
    if let Err(e) = engine.write_manifest() {
        eprintln!("serve: manifest write failed: {e}");
    }
}
