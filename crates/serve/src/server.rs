//! The daemon: a localhost TCP listener dispatching the line/JSON
//! protocol onto a [`Service`].
//!
//! Startup order is the readiness contract: the engine comes up, the
//! listener binds, and only then is the bound port published to
//! `<cache_dir>/serve.port` — a script that sees the port file can
//! connect immediately. On shutdown the daemon flushes its manifest and
//! telemetry timeline, then removes the port file.

use crate::engine::{write_atomic, ServeConfig, ServeEngine};
use crate::protocol::{self, Request, PORT_FILE};
use crate::service::Service;
use spacea_harness::json::Json;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs the daemon until a `shutdown` request arrives. `port` 0 binds an
/// ephemeral port; either way the bound port is published to the port
/// file once the listener accepts connections.
///
/// # Errors
///
/// Propagates listener-setup and cache-directory I/O failures. Per-
/// connection errors are logged and never take the daemon down.
pub fn run_daemon(cfg: ServeConfig, port: u16) -> std::io::Result<()> {
    let engine = Arc::new(ServeEngine::new(cfg));
    let service = Service::over(Arc::clone(&engine));
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?.port();
    engine.write_manifest()?;
    let port_path = engine.config().cache_dir.join(PORT_FILE);
    write_atomic(&port_path, &format!("{bound}\n"))?;
    eprintln!(
        "serve: listening on 127.0.0.1:{bound} (cache {})",
        engine.config().cache_dir.display()
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || handle_connection(stream, service, stop));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });

    service.stop();
    engine.write_manifest()?;
    engine.write_timeline()?;
    let _ = std::fs::remove_file(&port_path);
    eprintln!("serve: stopped");
    Ok(())
}

/// Serves one connection: a loop of request lines, one response line
/// each, until EOF, a protocol-level hangup, or daemon shutdown.
fn handle_connection(stream: TcpStream, service: &Service, stop: &AtomicBool) {
    let Ok(writer) = stream.try_clone() else { return };
    let mut writer = writer;
    // A finite read timeout lets handler threads notice daemon shutdown
    // instead of pinning the scope join on an idle client.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(line.trim()) {
            Ok(req) => dispatch(req, service, stop),
            Err(e) => protocol::err(&e),
        };
        if writeln!(writer, "{}", response.to_text()).is_err() {
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Executes one request against the service and builds the response.
fn dispatch(req: Request, service: &Service, stop: &AtomicBool) -> Json {
    let engine = service.engine();
    match req {
        Request::Ping => protocol::ok(vec![]),
        Request::Register { id, scale } => match engine.register_suite(id, scale) {
            Ok(info) => {
                note_flush(engine);
                protocol::ok(vec![
                    ("matrix", Json::U64(info.key)),
                    ("rows", Json::U64(info.rows as u64)),
                    ("cols", Json::U64(info.cols as u64)),
                    ("nnz", Json::U64(info.nnz as u64)),
                ])
            }
            Err(e) => protocol::err(&e),
        },
        Request::Submit { matrix, seed } => {
            let Some(a) = engine.matrix(matrix) else {
                return protocol::err(&format!("unknown matrix {matrix:016x}"));
            };
            let x = protocol::seeded_vector(a.cols(), seed);
            match service.submit(matrix, x) {
                Ok(reply) => {
                    note_flush(engine);
                    protocol::ok(vec![
                        ("y", protocol::y_bits(&reply.y)),
                        ("batch", Json::U64(reply.batch as u64)),
                        ("cycles", Json::U64(reply.cycles)),
                        ("queue_wait_us", Json::U64(reply.queue_wait_us)),
                    ])
                }
                Err(e) => protocol::err(&e),
            }
        }
        Request::Stat => {
            let s = engine.stats();
            protocol::ok(vec![
                ("registered", Json::U64(s.registered)),
                ("requests", Json::U64(s.requests)),
                ("batches", Json::U64(s.batches)),
                ("fused_max", Json::U64(s.fused_max)),
                ("mappings_computed", Json::U64(s.mappings.computed)),
                ("mappings_disk_hits", Json::U64(s.mappings.disk_hits)),
            ])
        }
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            protocol::ok(vec![("stopping", Json::Bool(true))])
        }
    }
}

/// Keeps the on-disk manifest current after state-changing requests so a
/// crash (or an impatient script) still sees up-to-date counters.
fn note_flush(engine: &ServeEngine) {
    if let Err(e) = engine.write_manifest() {
        eprintln!("serve: manifest write failed: {e}");
    }
}
