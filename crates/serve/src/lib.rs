//! SpMV as a long-lived service: a resident matrix registry, a persistent
//! warm-mapping cache, and multi-vector request batching.
//!
//! Every experiment binary in this workspace pays the Phase I/II mapping
//! precompute (`spacea-mapping`) from scratch and exits. A production
//! accelerator amortizes exactly the opposite way: the matrix is resident,
//! its mapping is computed once, and *vectors* stream through (Serpens
//! frames SpMV as such a service; SparseP reuses one matrix across many
//! kernel invocations on real PIM). This crate is that deployment shape for
//! the SpaceA simulator:
//!
//! * [`engine::ServeEngine`] — a matrix registry keyed by content hash
//!   ([`spacea_harness::mapstore::matrix_key`]) whose mappings persist under
//!   `<cache-dir>/mappings/<key>.json`, so Phase I/II is paid once per
//!   matrix *ever*, not once per process. Restarting the daemon performs
//!   zero mapping computations for previously seen matrices.
//! * [`service::Service`] — a bounded admission queue plus a batcher thread
//!   that fuses concurrent requests against the same matrix into one
//!   simulated SpMM pass ([`spacea_arch::RunSpec::spmm`]). Fusing is
//!   safe because each fused output vector is bitwise-identical to the
//!   corresponding solo SpMV result, independent of batch composition
//!   and arrival order.
//! * [`protocol`] / [`server`] / [`client`] — a tiny line/JSON protocol
//!   (the `spacea_harness::json` dialect: floats travel as IEEE-754 bit
//!   patterns) over localhost TCP, with `serve start/submit/stat/shutdown`
//!   CLI verbs in `spacea-bench`.
//!
//! Per-request telemetry — queue wait, fused batch width, cycles per
//! request, queue depth, plus the shed/retry/deadline fault counters — is
//! recorded under registered `spacea-obs` metric keys and exported as a
//! Chrome-trace timeline both periodically and on shutdown, next to a
//! `serve-manifest.json` whose `mappings.computed` counter is the
//! warm-cache acceptance check.
//!
//! # Robustness
//!
//! The service layer carries the PR 3 fault-injection philosophy up from
//! the simulator: [`chaos::ChaosPlan`] is a deterministic, seed-replayable
//! fault plan (dropped/delayed connections, killed or wedged batches,
//! stalled requests, corrupted mapping artifacts) injected via
//! `serve start --chaos`, and the request-lifecycle guarantees in
//! [`service::Service`] — explicit [`error::ServeError`] codes for
//! overload and deadline rejection, bounded jittered retry of transient
//! faults, and the write-ahead [`journal::AckJournal`] — are what make
//! every fault survivable. The `serve_chaos` bench bin soaks seeded plans
//! against a live daemon and enforces the core invariant: an acknowledged
//! request is bitwise-correct and journaled; an accepted request is never
//! silently lost.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod engine;
pub mod error;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod service;

pub use chaos::{ChaosPlan, ChaosState};
pub use client::{CallError, Client, CompactReply};
pub use engine::{EngineStats, RegisterInfo, ServeConfig, ServeEngine};
pub use error::ServeError;
pub use journal::{vec_hash, AckJournal, AckRecord, CompactionStats, JournalLoad};
pub use protocol::{seeded_vector, Request, PORT_FILE};
pub use server::run_daemon;
pub use service::{Service, SubmitReply};
