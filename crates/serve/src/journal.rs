//! The write-ahead acknowledgment journal: proof of every answered
//! request that survives a daemon crash.
//!
//! Before the batcher sends a success reply to any submitter, it appends
//! one journal entry per fused member to `<cache-dir>/journal/` — a
//! single `ack-<seq>.json` file per batch, written tmp-file + atomic
//! rename. The ordering is the contract: **journal first, acknowledge
//! second**, so the set of journaled requests is always a superset of the
//! acknowledged ones. A daemon that is SIGKILLed mid-batch therefore
//! leaves a journal from which a restarted daemon (or the chaos soak's
//! invariant checker) can prove exactly which requests were answered, and
//! — because each entry carries FNV content hashes of the input and
//! output vectors — *what* was answered, bitwise.
//!
//! Each record holds `(matrix, x_hash, y_hash, batch, cycles)`. The
//! checker recomputes the offline [`spacea_matrix::Csr::spmv`] for the
//! request whose input hashes to `x_hash` and fails if the journaled
//! `y_hash` differs: a journal can prove an answer lost, late, or
//! rejected, but never wrong.

use crate::engine::write_atomic;
use spacea_harness::job::Fnv;
use spacea_harness::json::{parse, Json};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV content hash of a float vector over exact IEEE-754 bit patterns —
/// the identity requests and responses are journaled under.
pub fn vec_hash(v: &[f64]) -> u64 {
    let mut h = Fnv::new();
    h.str("spacea-vec-v1");
    h.usize(v.len());
    for &x in v {
        h.f64(x);
    }
    h.finish()
}

/// One acknowledged request: what was asked, what was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// Content key of the matrix the request ran against.
    pub matrix: u64,
    /// [`vec_hash`] of the input vector.
    pub x_hash: u64,
    /// [`vec_hash`] of the output vector that was acknowledged.
    pub y_hash: u64,
    /// Width of the fused batch that answered this request.
    pub batch: usize,
    /// Simulated cycles of that batch.
    pub cycles: u64,
}

impl AckRecord {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("matrix", Json::U64(self.matrix)),
            ("x_hash", Json::U64(self.x_hash)),
            ("y_hash", Json::U64(self.y_hash)),
            ("batch", Json::U64(self.batch as u64)),
            ("cycles", Json::U64(self.cycles)),
        ])
    }

    fn from_json(v: &Json) -> Option<AckRecord> {
        let field = |name: &str| v.get(name).and_then(Json::as_u64);
        Some(AckRecord {
            matrix: field("matrix")?,
            x_hash: field("x_hash")?,
            y_hash: field("y_hash")?,
            batch: field("batch")? as usize,
            cycles: field("cycles")?,
        })
    }
}

/// What loading a journal directory found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalLoad {
    /// Every decodable record, in batch-sequence order.
    pub records: Vec<AckRecord>,
    /// Files that were present but unreadable or undecodable. A nonzero
    /// count after a *graceful* shutdown is a bug; after a crash it can
    /// only be 0 — torn writes never survive the tmp+rename protocol.
    pub corrupt_files: usize,
}

/// An append-only acknowledgment journal over one directory.
#[derive(Debug)]
pub struct AckJournal {
    dir: PathBuf,
    seq: AtomicU64,
    acked: AtomicU64,
}

impl AckJournal {
    /// Name of the journal directory under the daemon's cache directory.
    pub const DIR: &'static str = "journal";

    /// Opens (or starts) a journal in `dir`, continuing after the highest
    /// existing sequence number so restarts never overwrite prior proof.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let next = match std::fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| seq_of(&e.path()))
                .max()
                .map_or(0, |max| max + 1),
            Err(_) => 0,
        };
        AckJournal { dir, seq: AtomicU64::new(next), acked: AtomicU64::new(0) }
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records acknowledged through this handle (restart-local; the disk
    /// journal itself accumulates across lives).
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Appends one batch worth of acknowledgments as a single atomic
    /// file. Call this *before* sending any of the batch's replies.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures; on error nothing
    /// was journaled (the tmp file never became visible).
    pub fn append(&self, records: &[AckRecord]) -> std::io::Result<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("ack-{seq:08}.json"));
        let body = Json::obj(vec![
            ("version", Json::U64(1)),
            ("seq", Json::U64(seq)),
            ("acks", Json::Arr(records.iter().map(|r| r.to_json()).collect())),
        ]);
        write_atomic(&path, &body.to_text())?;
        self.acked.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(path)
    }

    /// Loads every journal file under `dir`, in sequence order. Missing
    /// directory means an empty journal, not an error.
    pub fn load(dir: &Path) -> JournalLoad {
        let mut out = JournalLoad::default();
        let Ok(entries) = std::fs::read_dir(dir) else { return out };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| seq_of(p).is_some())
            .collect();
        files.sort();
        for path in files {
            match std::fs::read_to_string(&path).ok().and_then(|t| decode_file(&t)) {
                Some(mut records) => out.records.append(&mut records),
                None => out.corrupt_files += 1,
            }
        }
        out
    }
}

/// The sequence number of an `ack-<seq>.json` path, if it is one.
fn seq_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("ack-")?.strip_suffix(".json")?;
    digits.parse().ok()
}

fn decode_file(text: &str) -> Option<Vec<AckRecord>> {
    let v = parse(text).ok()?;
    if v.get("version")?.as_u64()? != 1 {
        return None;
    }
    v.get("acks")?.as_arr()?.iter().map(AckRecord::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-journal-{tag}-{}", std::process::id()))
    }

    fn rec(matrix: u64, x: u64) -> AckRecord {
        AckRecord { matrix, x_hash: x, y_hash: x ^ 0xABCD, batch: 2, cycles: 1000 + x }
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let dir = tmp_dir("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        j.append(&[rec(1, 10), rec(1, 11)]).unwrap();
        j.append(&[rec(2, 20)]).unwrap();
        assert_eq!(j.acked(), 3);
        let load = AckJournal::load(&dir);
        assert_eq!(load.corrupt_files, 0);
        assert_eq!(load.records, vec![rec(1, 10), rec(1, 11), rec(2, 20)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_continues_the_sequence() {
        let dir = tmp_dir("seq");
        let _ = std::fs::remove_dir_all(&dir);
        let first = AckJournal::open(&dir);
        first.append(&[rec(1, 1)]).unwrap();
        first.append(&[rec(1, 2)]).unwrap();
        // A restarted daemon must append after, never over, prior proof.
        let second = AckJournal::open(&dir);
        second.append(&[rec(9, 9)]).unwrap();
        let load = AckJournal::load(&dir);
        assert_eq!(load.records.len(), 3);
        assert_eq!(load.records[2], rec(9, 9));
        assert_eq!(second.acked(), 1, "acked counter is restart-local");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_counted_not_fatal() {
        let dir = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        j.append(&[rec(1, 1)]).unwrap();
        std::fs::write(dir.join("ack-00000099.json"), "{ torn").unwrap();
        std::fs::write(dir.join("not-a-journal.txt"), "ignored").unwrap();
        let load = AckJournal::load(&dir);
        assert_eq!(load.records, vec![rec(1, 1)]);
        assert_eq!(load.corrupt_files, 1);
        // And open() skips past the corrupt file's sequence number.
        let next = AckJournal::open(&dir);
        let path = next.append(&[rec(2, 2)]).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().contains("00000100"), "{path:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_journal() {
        let dir = tmp_dir("absent").join("never-created");
        let load = AckJournal::load(&dir);
        assert_eq!(load, JournalLoad::default());
    }

    #[test]
    fn vec_hash_tracks_bit_content() {
        assert_eq!(vec_hash(&[1.0, -0.0]), vec_hash(&[1.0, -0.0]));
        assert_ne!(vec_hash(&[1.0, -0.0]), vec_hash(&[1.0, 0.0]), "negative zero is distinct");
        assert_ne!(vec_hash(&[]), vec_hash(&[0.0]));
    }
}
