//! The write-ahead acknowledgment journal: proof of every answered
//! request that survives a daemon crash.
//!
//! Before the batcher sends a success reply to any submitter, it appends
//! one journal entry per fused member to `<cache-dir>/journal/` — a
//! single `ack-<seq>.json` file per batch, written tmp-file + atomic
//! rename. The ordering is the contract: **journal first, acknowledge
//! second**, so the set of journaled requests is always a superset of the
//! acknowledged ones. A daemon that is SIGKILLed mid-batch therefore
//! leaves a journal from which a restarted daemon (or the chaos soak's
//! invariant checker) can prove exactly which requests were answered, and
//! — because each entry carries FNV content hashes of the input and
//! output vectors — *what* was answered, bitwise.
//!
//! Each record holds `(matrix, x_hash, y_hash, batch, cycles)`. The
//! checker recomputes the offline [`spacea_matrix::Csr::spmv`] for the
//! request whose input hashes to `x_hash` and fails if the journaled
//! `y_hash` differs: a journal can prove an answer lost, late, or
//! rejected, but never wrong.

use crate::engine::write_atomic;
use spacea_harness::job::Fnv;
use spacea_harness::json::{parse, Json};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV content hash of a float vector over exact IEEE-754 bit patterns —
/// the identity requests and responses are journaled under.
pub fn vec_hash(v: &[f64]) -> u64 {
    let mut h = Fnv::new();
    h.str("spacea-vec-v1");
    h.usize(v.len());
    for &x in v {
        h.f64(x);
    }
    h.finish()
}

/// One acknowledged request: what was asked, what was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// Content key of the matrix the request ran against.
    pub matrix: u64,
    /// [`vec_hash`] of the input vector.
    pub x_hash: u64,
    /// [`vec_hash`] of the output vector that was acknowledged.
    pub y_hash: u64,
    /// Width of the fused batch that answered this request.
    pub batch: usize,
    /// Simulated cycles of that batch.
    pub cycles: u64,
}

impl AckRecord {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("matrix", Json::U64(self.matrix)),
            ("x_hash", Json::U64(self.x_hash)),
            ("y_hash", Json::U64(self.y_hash)),
            ("batch", Json::U64(self.batch as u64)),
            ("cycles", Json::U64(self.cycles)),
        ])
    }

    fn from_json(v: &Json) -> Option<AckRecord> {
        let field = |name: &str| v.get(name).and_then(Json::as_u64);
        Some(AckRecord {
            matrix: field("matrix")?,
            x_hash: field("x_hash")?,
            y_hash: field("y_hash")?,
            batch: field("batch")? as usize,
            cycles: field("cycles")?,
        })
    }
}

/// What loading a journal directory found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalLoad {
    /// Every decodable record, in batch-sequence order.
    pub records: Vec<AckRecord>,
    /// Files that were present but unreadable or undecodable. A nonzero
    /// count after a *graceful* shutdown is a bug; after a crash it can
    /// only be 0 — torn writes never survive the tmp+rename protocol.
    pub corrupt_files: usize,
    /// Records dropped by prior compaction passes (carried in the
    /// watermark file, so the all-time acknowledgment count is
    /// `dropped + records.len()` even after retention kicked in).
    pub dropped: u64,
}

/// What one [`AckJournal::compact`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Journal files removed by this pass.
    pub dropped_files: usize,
    /// Acknowledgment records inside the removed files.
    pub dropped_records: usize,
    /// Journal files still on disk after the pass.
    pub retained_files: usize,
}

/// An append-only acknowledgment journal over one directory.
#[derive(Debug)]
pub struct AckJournal {
    dir: PathBuf,
    seq: AtomicU64,
    acked: AtomicU64,
}

impl AckJournal {
    /// Name of the journal directory under the daemon's cache directory.
    pub const DIR: &'static str = "journal";

    /// Name of the compaction watermark file inside the journal directory.
    /// It records the highest sequence number dropped by compaction (and
    /// how many records went with it); loaders skip any `ack-*.json` file
    /// at or below the watermark, which is what makes compaction
    /// crash-safe — the watermark is written atomically *before* any file
    /// is unlinked.
    pub const COMPACTED_FILE: &'static str = "compacted.json";

    /// Opens (or starts) a journal in `dir`, continuing after the highest
    /// existing sequence number — or the compaction watermark, whichever
    /// is higher — so restarts never overwrite prior proof, even when
    /// compaction emptied the directory.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let floor = watermark(&dir).map_or(0, |(seq, _)| seq + 1);
        let next = match std::fs::read_dir(&dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| seq_of(&e.path()))
                .max()
                .map_or(0, |max| max + 1),
            Err(_) => 0,
        };
        AckJournal { dir, seq: AtomicU64::new(next.max(floor)), acked: AtomicU64::new(0) }
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records acknowledged through this handle (restart-local; the disk
    /// journal itself accumulates across lives).
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Appends one batch worth of acknowledgments as a single atomic
    /// file. Call this *before* sending any of the batch's replies.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures; on error nothing
    /// was journaled (the tmp file never became visible).
    pub fn append(&self, records: &[AckRecord]) -> std::io::Result<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("ack-{seq:08}.json"));
        let body = Json::obj(vec![
            ("version", Json::U64(1)),
            ("seq", Json::U64(seq)),
            ("acks", Json::Arr(records.iter().map(|r| r.to_json()).collect())),
        ]);
        write_atomic(&path, &body.to_text())?;
        self.acked.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(path)
    }

    /// Loads every live journal file under `dir`, in sequence order.
    /// Missing directory means an empty journal, not an error. Files at
    /// or below the compaction watermark are skipped (a crash between
    /// the watermark write and the unlinks can leave some behind) and
    /// their records are already accounted for in [`JournalLoad::dropped`].
    pub fn load(dir: &Path) -> JournalLoad {
        let mut out = JournalLoad::default();
        let wm = watermark(dir);
        out.dropped = wm.map_or(0, |(_, records)| records);
        let floor = wm.map(|(seq, _)| seq);
        let Ok(entries) = std::fs::read_dir(dir) else { return out };
        let mut files: Vec<(u64, PathBuf)> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| seq_of(&p).map(|seq| (seq, p)))
            .filter(|&(seq, _)| floor.is_none_or(|through| seq > through))
            .collect();
        files.sort();
        for (_, path) in files {
            match std::fs::read_to_string(&path).ok().and_then(|t| decode_file(&t)) {
                Some(mut records) => out.records.append(&mut records),
                None => out.corrupt_files += 1,
            }
        }
        out
    }

    /// The live journal footprint on disk: `(records, files)` past the
    /// compaction watermark — what the `stat` verb reports.
    pub fn disk_counts(&self) -> (u64, u64) {
        let load = AckJournal::load(&self.dir);
        let floor = watermark(&self.dir).map(|(seq, _)| seq);
        let files = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| seq_of(&e.path()))
                .filter(|&seq| floor.is_none_or(|through| seq > through))
                .count(),
            Err(_) => 0,
        };
        (load.records.len() as u64, files as u64)
    }

    /// Drops acked journal files beyond a retention budget, keeping the
    /// newest `retain` files. Crash-safe ordering: the watermark file is
    /// written (tmp + atomic rename) *first*, the stale `ack-*.json`
    /// files are unlinked *second* — a crash in between leaves files that
    /// [`AckJournal::load`] already skips and that the next compaction
    /// sweeps without recounting.
    ///
    /// # Errors
    ///
    /// Propagates the watermark write failure; on error no journal file
    /// was removed.
    pub fn compact(&self, retain: usize) -> std::io::Result<CompactionStats> {
        let prior = watermark(&self.dir);
        let floor = prior.map(|(seq, _)| seq);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Ok(CompactionStats::default());
        };
        let mut files: Vec<(u64, PathBuf)> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| seq_of(&p).map(|seq| (seq, p)))
            .collect();
        files.sort();
        // Leftovers from a crashed pass sit at or below the old watermark:
        // already counted there, so sweep them without recounting.
        let live_from =
            files.partition_point(|&(seq, _)| floor.is_some_and(|through| seq <= through));
        let (leftovers, live) = files.split_at(live_from);
        let keep_from = live.len().saturating_sub(retain);
        let (stale, kept) = live.split_at(keep_from);
        let mut stats = CompactionStats {
            dropped_files: stale.len(),
            dropped_records: 0,
            retained_files: kept.len(),
        };
        if let Some(&(through, _)) = stale.last() {
            for (_, path) in stale {
                if let Some(records) =
                    std::fs::read_to_string(path).ok().and_then(|t| decode_file(&t))
                {
                    stats.dropped_records += records.len();
                }
            }
            let carried = prior.map_or(0, |(_, records)| records);
            let body = Json::obj(vec![
                ("version", Json::U64(1)),
                ("dropped_through_seq", Json::U64(through)),
                ("dropped_records", Json::U64(carried + stats.dropped_records as u64)),
            ]);
            write_atomic(&self.dir.join(Self::COMPACTED_FILE), &body.to_text())?;
            for (_, path) in stale {
                let _ = std::fs::remove_file(path);
            }
        }
        for (_, path) in leftovers {
            let _ = std::fs::remove_file(path);
        }
        Ok(stats)
    }
}

/// The compaction watermark of a journal directory, if one was ever
/// written: `(dropped_through_seq, dropped_records)`.
fn watermark(dir: &Path) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(dir.join(AckJournal::COMPACTED_FILE)).ok()?;
    let v = parse(&text).ok()?;
    if v.get("version")?.as_u64()? != 1 {
        return None;
    }
    Some((v.get("dropped_through_seq")?.as_u64()?, v.get("dropped_records")?.as_u64()?))
}

/// The sequence number of an `ack-<seq>.json` path, if it is one.
fn seq_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("ack-")?.strip_suffix(".json")?;
    digits.parse().ok()
}

fn decode_file(text: &str) -> Option<Vec<AckRecord>> {
    let v = parse(text).ok()?;
    if v.get("version")?.as_u64()? != 1 {
        return None;
    }
    v.get("acks")?.as_arr()?.iter().map(AckRecord::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spacea-journal-{tag}-{}", std::process::id()))
    }

    fn rec(matrix: u64, x: u64) -> AckRecord {
        AckRecord { matrix, x_hash: x, y_hash: x ^ 0xABCD, batch: 2, cycles: 1000 + x }
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let dir = tmp_dir("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        j.append(&[rec(1, 10), rec(1, 11)]).unwrap();
        j.append(&[rec(2, 20)]).unwrap();
        assert_eq!(j.acked(), 3);
        let load = AckJournal::load(&dir);
        assert_eq!(load.corrupt_files, 0);
        assert_eq!(load.records, vec![rec(1, 10), rec(1, 11), rec(2, 20)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_continues_the_sequence() {
        let dir = tmp_dir("seq");
        let _ = std::fs::remove_dir_all(&dir);
        let first = AckJournal::open(&dir);
        first.append(&[rec(1, 1)]).unwrap();
        first.append(&[rec(1, 2)]).unwrap();
        // A restarted daemon must append after, never over, prior proof.
        let second = AckJournal::open(&dir);
        second.append(&[rec(9, 9)]).unwrap();
        let load = AckJournal::load(&dir);
        assert_eq!(load.records.len(), 3);
        assert_eq!(load.records[2], rec(9, 9));
        assert_eq!(second.acked(), 1, "acked counter is restart-local");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_counted_not_fatal() {
        let dir = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        j.append(&[rec(1, 1)]).unwrap();
        std::fs::write(dir.join("ack-00000099.json"), "{ torn").unwrap();
        std::fs::write(dir.join("not-a-journal.txt"), "ignored").unwrap();
        let load = AckJournal::load(&dir);
        assert_eq!(load.records, vec![rec(1, 1)]);
        assert_eq!(load.corrupt_files, 1);
        // And open() skips past the corrupt file's sequence number.
        let next = AckJournal::open(&dir);
        let path = next.append(&[rec(2, 2)]).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().contains("00000100"), "{path:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_keeps_the_newest_files_and_restart_respects_the_watermark() {
        let dir = tmp_dir("compact");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        for i in 0..5 {
            j.append(&[rec(1, i), rec(1, 100 + i)]).unwrap();
        }
        assert_eq!(j.disk_counts(), (10, 5));

        let stats = j.compact(2).unwrap();
        assert_eq!(
            stats,
            CompactionStats { dropped_files: 3, dropped_records: 6, retained_files: 2 }
        );
        assert_eq!(j.disk_counts(), (4, 2));
        let load = AckJournal::load(&dir);
        assert_eq!(load.dropped, 6, "the watermark carries the dropped-record count");
        assert_eq!(load.records, vec![rec(1, 3), rec(1, 103), rec(1, 4), rec(1, 104)]);

        // A second pass over an already-tight journal is a no-op.
        let again = j.compact(2).unwrap();
        assert_eq!(
            again,
            CompactionStats { dropped_files: 0, dropped_records: 0, retained_files: 2 }
        );

        // Compacting everything away must not let a restart reuse seqs.
        j.compact(0).unwrap();
        assert_eq!(j.disk_counts(), (0, 0));
        let restarted = AckJournal::open(&dir);
        let path = restarted.append(&[rec(7, 7)]).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().contains("00000005"), "{path:?}");
        let load = AckJournal::load(&dir);
        assert_eq!((load.dropped, load.records.len()), (10, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crash_between_watermark_and_unlink_is_harmless() {
        let dir = tmp_dir("crash");
        let _ = std::fs::remove_dir_all(&dir);
        let j = AckJournal::open(&dir);
        for i in 0..4 {
            j.append(&[rec(1, i)]).unwrap();
        }
        // Simulate the crash: write the watermark covering seqs 0..=1 by
        // hand and leave their files on disk.
        std::fs::write(
            dir.join(AckJournal::COMPACTED_FILE),
            "{\"version\":1,\"dropped_through_seq\":1,\"dropped_records\":2}",
        )
        .unwrap();
        let load = AckJournal::load(&dir);
        assert_eq!(load.records, vec![rec(1, 2), rec(1, 3)], "stale files are skipped");
        assert_eq!(load.dropped, 2);
        assert_eq!(j.disk_counts(), (2, 2));

        // The next pass sweeps the leftovers without recounting them.
        let stats = j.compact(1).unwrap();
        assert_eq!(
            stats,
            CompactionStats { dropped_files: 1, dropped_records: 1, retained_files: 1 }
        );
        let load = AckJournal::load(&dir);
        assert_eq!(load.records, vec![rec(1, 3)]);
        assert_eq!(load.dropped, 3, "2 carried + 1 newly dropped");
        assert!(!dir.join("ack-00000000.json").exists(), "leftover swept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_journal() {
        let dir = tmp_dir("absent").join("never-created");
        let load = AckJournal::load(&dir);
        assert_eq!(load, JournalLoad::default());
    }

    #[test]
    fn vec_hash_tracks_bit_content() {
        assert_eq!(vec_hash(&[1.0, -0.0]), vec_hash(&[1.0, -0.0]));
        assert_ne!(vec_hash(&[1.0, -0.0]), vec_hash(&[1.0, 0.0]), "negative zero is distinct");
        assert_ne!(vec_hash(&[]), vec_hash(&[0.0]));
    }
}
