//! Structured service errors with stable wire codes.
//!
//! Every way a request can fail maps to exactly one [`ServeError`], and
//! every `ServeError` carries a machine-readable [`ServeError::code`] that
//! travels in the wire response's `"code"` field. The chaos soak harness
//! (`serve_chaos`) enforces the lifecycle contract on top of these codes:
//! a request is either acknowledged with a bitwise-correct result or
//! rejected with an explicit coded error — never silently dropped.

use spacea_arch::SimError;
use std::fmt;

/// Why a service request failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The matrix key was never registered with this daemon.
    UnknownMatrix(u64),
    /// The request itself is malformed (bad suite id, bad field, ...).
    BadRequest(String),
    /// The admission queue was at or above its high-water mark; the
    /// request was shed instead of queued. Retry later, with backoff.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The request's deadline elapsed before its batch produced a result.
    /// The submitter has been cancelled; the batch may still complete, in
    /// which case its acknowledgment journal entry proves the answer.
    DeadlineExceeded {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
    },
    /// The service has been stopped (daemon shutting down).
    Stopped,
    /// The simulator failed; hang-class errors arrive here without retry,
    /// transient ones only after the retry budget is exhausted.
    Sim(SimError),
    /// A chaos-plan fault injected at the service layer (testing only).
    Injected {
        /// Transient faults are retried by the batcher; wedges are not.
        transient: bool,
        /// Which directive fired.
        what: String,
    },
    /// The batcher disappeared while the request was in flight. This is
    /// the one code that should never be seen in a healthy daemon: the
    /// lifecycle guarantee is that every admitted request gets a reply.
    Lost,
}

impl ServeError {
    /// The stable machine-readable code carried in wire responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownMatrix(_) => "unknown-matrix",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::Stopped => "stopped",
            ServeError::Sim(e) => match e {
                SimError::DimensionMismatch { .. }
                | SimError::EmptyBatch
                | SimError::BadConfig(_)
                | SimError::MappingMismatch(_) => "bad-request",
                _ => "internal",
            },
            ServeError::Injected { .. } => "internal",
            ServeError::Lost => "internal",
        }
    }

    /// True when a bounded retry may succeed: transient injected faults
    /// and non-hang simulator errors. Hang-class failures (deadlock,
    /// livelock, cycle budget) are deterministic — retrying one burns the
    /// same budget again — so they are never retried, mirroring the PR 3
    /// supervision policy in `spacea-harness`.
    pub fn retryable(&self) -> bool {
        match self {
            ServeError::Injected { transient, .. } => *transient,
            ServeError::Sim(e) => !e.is_hang(),
            _ => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownMatrix(key) => write!(f, "unknown matrix {key:016x}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { depth } => {
                write!(f, "admission queue overloaded ({depth} requests waiting); retry later")
            }
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms}ms in the service")
            }
            ServeError::Stopped => write!(f, "service is stopped"),
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
            ServeError::Injected { transient, what } => {
                let kind = if *transient { "transient" } else { "wedge" };
                write!(f, "chaos-injected {kind} fault: {what}")
            }
            ServeError::Lost => write!(f, "request lost in the service (batcher died)"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_cover_the_lifecycle() {
        assert_eq!(ServeError::UnknownMatrix(7).code(), "unknown-matrix");
        assert_eq!(ServeError::Overloaded { depth: 9 }.code(), "overloaded");
        assert_eq!(ServeError::DeadlineExceeded { waited_ms: 5 }.code(), "deadline-exceeded");
        assert_eq!(ServeError::Stopped.code(), "stopped");
        assert_eq!(ServeError::Lost.code(), "internal");
        assert_eq!(ServeError::BadRequest("x".into()).code(), "bad-request");
        assert_eq!(
            ServeError::Sim(SimError::DimensionMismatch { expected: 4, actual: 3 }).code(),
            "bad-request"
        );
        assert_eq!(ServeError::Sim(SimError::CounterInvariant("x".into())).code(), "internal");
    }

    #[test]
    fn only_transient_failures_are_retryable() {
        assert!(ServeError::Injected { transient: true, what: "kill".into() }.retryable());
        assert!(!ServeError::Injected { transient: false, what: "wedge".into() }.retryable());
        assert!(ServeError::Sim(SimError::CounterInvariant("x".into())).retryable());
        assert!(!ServeError::Overloaded { depth: 1 }.retryable());
        assert!(!ServeError::DeadlineExceeded { waited_ms: 1 }.retryable());
        assert!(!ServeError::Stopped.retryable());
    }

    #[test]
    fn hang_class_is_never_retryable() {
        use spacea_arch::StallDiagnosis;
        let d = StallDiagnosis {
            cycle: 1,
            entries_left: 1,
            y_left: 0,
            pending_events: 0,
            suspect_vault: None,
            vaults: vec![],
            history: vec![],
        };
        assert!(!ServeError::Sim(SimError::Deadlock(d.clone())).retryable());
        assert!(!ServeError::Sim(SimError::NoProgress { window: 5, diagnosis: d }).retryable());
    }

    #[test]
    fn display_names_the_cause() {
        let e = ServeError::Overloaded { depth: 64 };
        assert!(e.to_string().contains("64"), "{e}");
        let e = ServeError::Injected { transient: true, what: "kill-batch=2".into() };
        assert!(e.to_string().contains("kill-batch=2"), "{e}");
    }
}
