//! Deterministic, seed-replayable fault injection for the service layer.
//!
//! [`ChaosPlan`] extends the PR 3 simulator fault-injection philosophy
//! ([`spacea_arch::FaultPlan`]) one layer up: instead of dropping NoC
//! packets inside the machine, a chaos plan drops connections at the
//! listener, kills or wedges the batcher mid-batch, stalls individual
//! admitted requests, and corrupts persisted mapping artifacts at daemon
//! startup. Like `FaultPlan`, every fault is addressed by an ordinal
//! counter, never a probability, so a plan replays exactly: the Nth
//! accepted connection, the Nth batch attempt, the Nth admitted request.
//!
//! Plans exist to *prove* the request-lifecycle guarantees, and the
//! invariant they must never be able to break is the serving analogue of
//! PR 3's "single fault is never wrong-but-successful": an acknowledged
//! request's output is bitwise the offline [`spacea_matrix::Csr::spmv`],
//! and an accepted request is never silently lost — chaos may slow,
//! reject, or error a request, but never corrupt or swallow one.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One splitmix64 step (the same mixer the request vectors and the
/// harness's backoff jitter use), so seed-derived plans are stable across
/// platforms and processes.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic service-layer fault plan. The default (empty) plan
/// injects nothing and costs a few atomic loads per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// Close the Nth accepted connection (0-based) before reading a byte.
    /// The client sees a hangup on a connection that never acknowledged
    /// anything — its connect/call retry absorbs it.
    pub drop_conn: Option<u64>,
    /// Delay handling of the Nth accepted connection by this many
    /// milliseconds before the first read (a slow-start client).
    pub delay_conn: Option<(u64, u64)>,
    /// Fail the Nth batch execution attempt (0-based) with a *transient*
    /// fault before the simulator runs — the batcher's bounded retry must
    /// absorb it and still answer every member correctly.
    pub kill_batch: Option<u64>,
    /// Fail the Nth batch execution attempt with a *hang-class* fault.
    /// Hangs are never retried, so every member receives an explicit
    /// coded error instead.
    pub wedge_batch: Option<u64>,
    /// Stall the batch containing the Nth admitted request (0-based) by
    /// this many milliseconds before execution. Long stalls push members
    /// past their deadline, exercising cancellation.
    pub stall_req: Option<(u64, u64)>,
    /// At daemon startup, overwrite the Nth persisted mapping artifact
    /// (sorted order) with garbage. The mapping store must heal it by
    /// recomputing.
    pub corrupt_map: Option<u64>,
    /// At daemon startup, truncate the Nth persisted mapping artifact to
    /// half its length (a torn write from a crashed peer). Must also heal.
    pub truncate_map: Option<u64>,
}

impl ChaosPlan {
    /// True when the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        *self == ChaosPlan::default()
    }

    /// Parses a comma-separated list of chaos directives:
    ///
    /// * `drop-conn=N` — close the Nth accepted connection immediately
    /// * `delay-conn=N@MS` — delay connection N's handling by MS ms
    /// * `kill-batch=N` — transient fault on the Nth batch attempt
    /// * `wedge-batch=N` — hang-class fault on the Nth batch attempt
    /// * `stall-req=N@MS` — stall request N's batch by MS ms
    /// * `corrupt-map=N` — garbage the Nth persisted mapping at startup
    /// * `truncate-map=N` — truncate the Nth persisted mapping at startup
    ///
    /// Directives never contain `:`, matching the `FaultPlan` grammar.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending directive when one is
    /// unknown or malformed.
    pub fn parse(s: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for directive in s.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            match directive.split_once('=') {
                Some(("drop-conn", n)) => plan.drop_conn = Some(parse_u64("drop-conn", n)?),
                Some(("delay-conn", v)) => plan.delay_conn = Some(parse_at("delay-conn", v)?),
                Some(("kill-batch", n)) => plan.kill_batch = Some(parse_u64("kill-batch", n)?),
                Some(("wedge-batch", n)) => plan.wedge_batch = Some(parse_u64("wedge-batch", n)?),
                Some(("stall-req", v)) => plan.stall_req = Some(parse_at("stall-req", v)?),
                Some(("corrupt-map", n)) => plan.corrupt_map = Some(parse_u64("corrupt-map", n)?),
                Some(("truncate-map", n)) => {
                    plan.truncate_map = Some(parse_u64("truncate-map", n)?)
                }
                _ => {
                    return Err(format!(
                        "unknown chaos directive '{directive}' (expected drop-conn=N, \
                         delay-conn=N@MS, kill-batch=N, wedge-batch=N, stall-req=N@MS, \
                         corrupt-map=N, or truncate-map=N)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// A pseudo-random plan derived deterministically from `seed`: the
    /// same seed always yields the same plan (the chaos soak's replay
    /// guarantee). Every seed injects at least one fault, and ordinals are
    /// kept small so short request streams actually hit them.
    pub fn from_seed(seed: u64) -> ChaosPlan {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5103_87D8_A380_17E5;
        let mut plan = ChaosPlan::default();
        // Draw until non-empty so no seed degenerates to a fault-free run.
        while plan.is_empty() {
            let picks = splitmix(&mut s);
            if picks & 0x01 != 0 {
                plan.drop_conn = Some(splitmix(&mut s) % 4);
            }
            if picks & 0x02 != 0 {
                plan.delay_conn = Some((splitmix(&mut s) % 4, 5 + splitmix(&mut s) % 40));
            }
            if picks & 0x04 != 0 {
                plan.kill_batch = Some(splitmix(&mut s) % 3);
            }
            if picks & 0x08 != 0 {
                plan.wedge_batch = Some(2 + splitmix(&mut s) % 3);
            }
            if picks & 0x10 != 0 {
                plan.stall_req = Some((splitmix(&mut s) % 6, 10 + splitmix(&mut s) % 60));
            }
            if picks & 0x20 != 0 {
                plan.corrupt_map = Some(splitmix(&mut s) % 2);
            }
            if picks & 0x40 != 0 {
                plan.truncate_map = Some(splitmix(&mut s) % 2);
            }
        }
        // A plan that both kills and wedges the same attempt ordinal would
        // be ambiguous; wedge wins at runtime, so keep them distinct for
        // readability when both were drawn.
        if let (Some(k), Some(w)) = (plan.kill_batch, plan.wedge_batch) {
            if k == w {
                plan.kill_batch = Some(k + 1);
            }
        }
        plan
    }
}

impl std::fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut part = |f: &mut std::fmt::Formatter<'_>, s: String| {
            let r = write!(f, "{sep}{s}");
            sep = ",";
            r
        };
        if let Some(n) = self.drop_conn {
            part(f, format!("drop-conn={n}"))?;
        }
        if let Some((n, ms)) = self.delay_conn {
            part(f, format!("delay-conn={n}@{ms}"))?;
        }
        if let Some(n) = self.kill_batch {
            part(f, format!("kill-batch={n}"))?;
        }
        if let Some(n) = self.wedge_batch {
            part(f, format!("wedge-batch={n}"))?;
        }
        if let Some((n, ms)) = self.stall_req {
            part(f, format!("stall-req={n}@{ms}"))?;
        }
        if let Some(n) = self.corrupt_map {
            part(f, format!("corrupt-map={n}"))?;
        }
        if let Some(n) = self.truncate_map {
            part(f, format!("truncate-map={n}"))?;
        }
        if sep.is_empty() {
            write!(f, "none")?;
        }
        Ok(())
    }
}

fn parse_u64(what: &str, v: &str) -> Result<u64, String> {
    v.trim().parse().map_err(|_| format!("{what} needs an unsigned integer, got '{v}'"))
}

fn parse_at(what: &str, v: &str) -> Result<(u64, u64), String> {
    let (a, b) =
        v.split_once('@').ok_or_else(|| format!("{what} needs the form N@M, got '{v}'"))?;
    Ok((parse_u64(what, a)?, parse_u64(what, b)?))
}

/// What a chaos plan does to one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Close the connection before reading anything.
    Drop,
    /// Sleep this long before handling the connection.
    Delay(Duration),
}

/// Runtime state of a chaos plan: the plan plus the ordinal counters the
/// faults are addressed against. Counters only advance when the matching
/// directive is armed, so an empty plan never allocates or contends.
#[derive(Debug, Default)]
pub struct ChaosState {
    plan: ChaosPlan,
    conns: AtomicU64,
    attempts: AtomicU64,
}

impl ChaosState {
    /// Runtime state over `plan`.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosState { plan, conns: AtomicU64::new(0), attempts: AtomicU64::new(0) }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Called once per accepted connection; returns the fault to apply to
    /// it, if any.
    pub fn on_connection(&self) -> Option<ConnFault> {
        if self.plan.drop_conn.is_none() && self.plan.delay_conn.is_none() {
            return None;
        }
        let ordinal = self.conns.fetch_add(1, Ordering::Relaxed);
        if self.plan.drop_conn == Some(ordinal) {
            return Some(ConnFault::Drop);
        }
        if let Some((n, ms)) = self.plan.delay_conn {
            if n == ordinal {
                return Some(ConnFault::Delay(Duration::from_millis(ms)));
            }
        }
        None
    }

    /// Called once per batch execution *attempt* (retries count); returns
    /// the injected failure, if any. A transient kill on attempt N leaves
    /// attempt N+1 (the retry) healthy, which is exactly what makes the
    /// bounded-retry path provable.
    pub fn on_batch_attempt(&self) -> Option<crate::error::ServeError> {
        if self.plan.kill_batch.is_none() && self.plan.wedge_batch.is_none() {
            return None;
        }
        let ordinal = self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.plan.wedge_batch == Some(ordinal) {
            return Some(crate::error::ServeError::Injected {
                transient: false,
                what: format!("wedge-batch={ordinal}"),
            });
        }
        if self.plan.kill_batch == Some(ordinal) {
            return Some(crate::error::ServeError::Injected {
                transient: true,
                what: format!("kill-batch={ordinal}"),
            });
        }
        None
    }

    /// The stall to apply to the batch containing admit-ordinal `req`.
    pub fn request_stall(&self, req: u64) -> Option<Duration> {
        match self.plan.stall_req {
            Some((n, ms)) if n == req => Some(Duration::from_millis(ms)),
            _ => None,
        }
    }

    /// Applies the startup mapping-store corruptions to `mappings_dir`:
    /// the Nth artifact in sorted filename order is overwritten with
    /// garbage (`corrupt-map`) or truncated to half (`truncate-map`).
    /// Missing directories and out-of-range ordinals are no-ops — the
    /// plan is a standing order, not a precondition.
    pub fn apply_map_corruption(&self, mappings_dir: &Path) {
        if self.plan.corrupt_map.is_none() && self.plan.truncate_map.is_none() {
            return;
        }
        let Ok(entries) = std::fs::read_dir(mappings_dir) else { return };
        let mut files: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        if let Some(n) = self.plan.corrupt_map {
            if let Some(path) = files.get(n as usize) {
                if let Err(e) = std::fs::write(path, "{ chaos: corrupted") {
                    eprintln!("serve: chaos corrupt-map failed on {}: {e}", path.display());
                }
            }
        }
        if let Some(n) = self.plan.truncate_map {
            if let Some(path) = files.get(n as usize) {
                if let Ok(text) = std::fs::read_to_string(path) {
                    let half = &text[..text.len() / 2];
                    if let Err(e) = std::fs::write(path, half) {
                        eprintln!("serve: chaos truncate-map failed on {}: {e}", path.display());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;

    #[test]
    fn empty_plan_parses_and_is_empty() {
        let plan = ChaosPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "none");
        let state = ChaosState::new(plan);
        assert_eq!(state.on_connection(), None);
        assert!(state.on_batch_attempt().is_none());
        assert_eq!(state.request_stall(0), None);
    }

    #[test]
    fn directives_parse_into_the_right_fields() {
        let plan = ChaosPlan::parse(
            "drop-conn=1, delay-conn=2@30, kill-batch=0, wedge-batch=3, stall-req=4@250, \
             corrupt-map=0, truncate-map=1",
        )
        .unwrap();
        assert_eq!(plan.drop_conn, Some(1));
        assert_eq!(plan.delay_conn, Some((2, 30)));
        assert_eq!(plan.kill_batch, Some(0));
        assert_eq!(plan.wedge_batch, Some(3));
        assert_eq!(plan.stall_req, Some((4, 250)));
        assert_eq!(plan.corrupt_map, Some(0));
        assert_eq!(plan.truncate_map, Some(1));
        assert!(!plan.is_empty());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in ["kill-batch=2,corrupt-map=0", "drop-conn=0,stall-req=3@100", "wedge-batch=1"] {
            let plan = ChaosPlan::parse(spec).unwrap();
            assert_eq!(ChaosPlan::parse(&plan.to_string()).unwrap(), plan, "{spec}");
        }
    }

    #[test]
    fn malformed_directives_are_named_in_the_error() {
        for bad in ["drop-conn=x", "stall-req=5", "warp-core-breach", "kill-batch"] {
            let err = ChaosPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "no message for '{bad}'");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_nonempty_and_varied() {
        for seed in 0..64u64 {
            let a = ChaosPlan::from_seed(seed);
            let b = ChaosPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert!(!a.is_empty(), "seed {seed} must inject something");
            // Seeded plans must survive their own grammar (the CLI replay
            // path goes through Display + parse).
            assert_eq!(ChaosPlan::parse(&a.to_string()).unwrap(), a, "seed {seed}");
            if let (Some(k), Some(w)) = (a.kill_batch, a.wedge_batch) {
                assert_ne!(k, w, "seed {seed}: kill and wedge on the same attempt");
            }
        }
        let distinct: std::collections::BTreeSet<String> =
            (0..64u64).map(|s| ChaosPlan::from_seed(s).to_string()).collect();
        assert!(distinct.len() > 16, "seeds should spread over many plans: {}", distinct.len());
    }

    #[test]
    fn connection_faults_hit_their_ordinal_only() {
        let state = ChaosState::new(ChaosPlan::parse("drop-conn=1,delay-conn=2@15").unwrap());
        assert_eq!(state.on_connection(), None, "conn 0 healthy");
        assert_eq!(state.on_connection(), Some(ConnFault::Drop), "conn 1 dropped");
        assert_eq!(
            state.on_connection(),
            Some(ConnFault::Delay(Duration::from_millis(15))),
            "conn 2 delayed"
        );
        assert_eq!(state.on_connection(), None, "conn 3 healthy");
    }

    #[test]
    fn batch_faults_classify_transient_vs_wedge() {
        let state = ChaosState::new(ChaosPlan::parse("kill-batch=0,wedge-batch=1").unwrap());
        let kill = state.on_batch_attempt().unwrap();
        assert!(kill.retryable(), "{kill}");
        assert!(matches!(kill, ServeError::Injected { transient: true, .. }));
        let wedge = state.on_batch_attempt().unwrap();
        assert!(!wedge.retryable(), "{wedge}");
        assert!(state.on_batch_attempt().is_none(), "attempt 2 healthy");
    }

    #[test]
    fn map_corruption_targets_the_sorted_nth_artifact() {
        let dir = std::env::temp_dir().join(format!("spacea-chaos-map-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("aaaa.json"), "{\"a\":1}").unwrap();
        std::fs::write(dir.join("bbbb.json"), "{\"b\":22222222}").unwrap();
        let state = ChaosState::new(ChaosPlan::parse("corrupt-map=0,truncate-map=1").unwrap());
        state.apply_map_corruption(&dir);
        let a = std::fs::read_to_string(dir.join("aaaa.json")).unwrap();
        assert!(a.contains("chaos"), "{a}");
        let b = std::fs::read_to_string(dir.join("bbbb.json")).unwrap();
        assert_eq!(b.len(), "{\"b\":22222222}".len() / 2, "{b}");
        // A missing directory is a no-op, not an error.
        state.apply_map_corruption(&dir.join("nope"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
