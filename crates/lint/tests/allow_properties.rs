//! Property tests for `lint:allow` suppression: a directive must suppress
//! exactly the rules it names, on exactly the lines it covers.

use proptest::prelude::*;
use spacea_lint::check_source;
use spacea_lint::rules::{FileKind, FileMeta, RuleId};
use std::collections::BTreeSet;

/// A one-entry registry so the S1 fixture below ("tvs" for "tsv") is a typo.
const METRICS: [(&str, &str); 1] = [("tsv", "bytes")];

/// A `sim` library file: the one place every rule applies at once.
fn meta() -> FileMeta {
    FileMeta { rel: "crates/sim/src/x.rs".into(), krate: "sim".into(), kind: FileKind::Lib }
}

/// The rules with a per-site (token-level) trigger. D5 is graph-level —
/// it only fires from `lint_scans`/`check_taint`, never `check_source` —
/// so it is out of scope for these properties.
const PER_SITE: [RuleId; 6] =
    [RuleId::D1, RuleId::D2, RuleId::D3, RuleId::D4, RuleId::R1, RuleId::S1];

/// One violating statement per rule.
fn violation_line(rule: RuleId) -> &'static str {
    match rule {
        RuleId::D1 => "    let m: HashMap<u32, u32> = Default::default();",
        RuleId::D2 => "    let t = Instant::now();",
        RuleId::D3 => "    let c = RefCell::new(0u32);",
        RuleId::D4 => "    let s = xs.iter().sum::<f64>();",
        RuleId::D5 => unreachable!("D5 has no per-site trigger"),
        RuleId::R1 => "    let v = m.get(&0).unwrap();",
        RuleId::S1 => "    ledger.bump(MetricKey::vault(\"tvs\", 0, \"bytes\"), 1);",
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every violation line sits under a directive naming an arbitrary rule
    /// subset: exactly the named rules go quiet, every other rule still
    /// fires through the directive.
    #[test]
    fn allow_suppresses_exactly_the_named_rules(
        allowed in proptest::collection::vec(any::<bool>(), 6..=6),
        reason_ix in 0usize..3,
    ) {
        let reason = ["", "why not", "see DESIGN.md"][reason_ix];
        let names: Vec<&str> = PER_SITE
            .iter()
            .zip(&allowed)
            .filter(|(_, &on)| on)
            .map(|(r, _)| r.name())
            .collect();
        let mut src = String::from("fn f() {\n");
        for rule in PER_SITE {
            if !names.is_empty() {
                src.push_str(&format!("    // lint:allow({}) {}\n", names.join(", "), reason));
            }
            src.push_str(violation_line(rule));
            src.push('\n');
        }
        src.push_str("}\n");

        let fired: BTreeSet<&str> =
            check_source(&meta(), &src, &METRICS).iter().map(|v| v.rule.name()).collect();
        for rule in PER_SITE {
            let expected = !names.contains(&rule.name());
            prop_assert_eq!(
                fired.contains(rule.name()),
                expected,
                "rule {} (allowed: {:?})",
                rule.name(),
                names
            );
        }
    }

    /// A directive reaches its own line and the immediately following line —
    /// never further. Any blank line in between re-arms the rule.
    #[test]
    fn allow_reaches_only_the_next_line(gap in 0usize..4) {
        let mut src = String::from("fn f() {\n    // lint:allow(R1) scoped\n");
        for _ in 0..gap {
            src.push('\n');
        }
        src.push_str("    let v = m.get(&0).unwrap();\n}\n");
        let fired = check_source(&meta(), &src, &METRICS);
        prop_assert_eq!(fired.is_empty(), gap == 0, "gap {}: {:?}", gap, &fired);
    }

    /// Directives never suppress across files or leak into unrelated code:
    /// a file whose only content is allow directives plus clean lines
    /// reports nothing, whatever the directives name.
    #[test]
    fn allow_on_clean_code_is_inert(
        allowed in proptest::collection::vec(any::<bool>(), 6..=6),
    ) {
        let mut names: Vec<&str> = PER_SITE
            .iter()
            .zip(&allowed)
            .filter(|(_, &on)| on)
            .map(|(r, _)| r.name())
            .collect();
        if names.is_empty() {
            names.push("R1");
        }
        let src = format!(
            "// lint:allow({}) nothing to suppress here\nfn f() -> u32 {{\n    41 + 1\n}}\n",
            names.join(", ")
        );
        let fired = check_source(&meta(), &src, &METRICS);
        prop_assert!(fired.is_empty(), "{:?}", &fired);
    }
}
