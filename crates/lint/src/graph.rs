//! Workspace symbol graph: item structure, call resolution, and the
//! transitive-taint analysis behind rules D3/D4/D5.
//!
//! The token [`crate::scanner`] is enough for the per-site rules (D1–D4),
//! but the PDES proof obligation — *nothing reachable from the event loop
//! touches the outside world* — needs to see **through** calls. This module
//! parses item structure (`mod` / `impl` / `trait` / `fn` spans) on top of
//! the token stream, resolves calls into a deterministic cross-crate call
//! graph over the deterministic crates ([`crate::rules::PDES_CRATES`]), and
//! runs reachability from the parallel-engine roots:
//!
//! - `Machine::run` (the simulator entry point in `arch`),
//! - every `impl DesQueue` method (the event-queue engines in `sim`),
//! - every `Backend::run` impl (the scenario-matrix executors in `backend`).
//!
//! Any function reachable from a root that uses a *taint sink* — file or
//! socket I/O, wall clock, ambient RNG, console output, or thread APIs —
//! is a D5 violation, reported with the full call chain from the root.
//!
//! # Call-resolution limits (documented, deliberate)
//!
//! This is a name-level resolver, not a type checker:
//!
//! - **Method calls** (`x.f()`) resolve to *every* `impl`/`trait` function
//!   named `f` in the graphed crates — an over-approximation that errs
//!   toward reporting (more reachability, never less).
//! - **Bare calls** (`f()`) prefer free functions in the caller's module,
//!   then its crate, then anywhere in the graphed crates.
//! - **Qualified calls** (`T::f()`, `m::f()`) match the last path segment
//!   against impl types, trait names, module names, and crate names;
//!   `Self::f()` uses the enclosing `impl`'s type. Unresolvable qualifiers
//!   (`Vec::new`) produce no edge.
//! - **Dynamic dispatch through closures and `dyn` trait objects is not
//!   traced.** An injected callback (e.g. `RunSpec::flushing`'s flush
//!   hook) executes with the *caller's* obligations: the crate that builds
//!   the closure owns its effects, and that crate's own rules cover it.
//! - Macro-generated code is invisible; the workspace bans such codegen in
//!   deterministic crates anyway.

use crate::rules::{FileMeta, RuleId, Violation, PDES_CRATES};
use crate::scanner::{Allow, ScanOutput, TokKind, Token};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One function (free, inherent, trait decl, or trait impl) found in the
/// graphed source set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Short crate name (`sim`, `arch`, …).
    pub krate: String,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// The `impl` block's type, when this is an inherent or trait-impl fn.
    pub self_ty: Option<String>,
    /// The trait being implemented (or declared), when any.
    pub trait_name: Option<String>,
    /// The function's own name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
}

impl FnDef {
    /// Short display name: `Type::name`, `Trait::name`, or `name`.
    pub fn display(&self) -> String {
        match (&self.self_ty, &self.trait_name) {
            (Some(ty), _) => format!("{ty}::{}", self.name),
            (None, Some(tr)) => format!("{tr}::{}", self.name),
            (None, None) => self.name.clone(),
        }
    }

    /// Fully qualified name: `crate::module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![self.krate.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        let owner = self.self_ty.as_deref().or(self.trait_name.as_deref());
        if let Some(o) = owner {
            parts.push(o);
        }
        parts.push(self.name.as_str());
        parts.join("::")
    }
}

/// One taint-sink use inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkUse {
    /// What was touched, e.g. `Instant::now (wall clock)`.
    pub what: String,
    /// 1-based line of the sink token.
    pub line: u32,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    /// `f(..)`.
    Bare,
    /// `Q::f(..)` with a known last qualifier segment.
    Qualified,
    /// `x.f(..)` or `<T as Tr>::f(..)` — name-only resolution.
    Method,
}

#[derive(Debug, Clone)]
struct RawCall {
    kind: CallKind,
    qualifier: Option<String>,
    name: String,
    line: u32,
}

/// The resolved, deterministic workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function definition, in (file, line) order.
    pub defs: Vec<FnDef>,
    /// Outgoing edges per def: `(callee def index, call-site line)`,
    /// deduplicated and sorted.
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Taint-sink uses per def.
    pub sinks: Vec<Vec<SinkUse>>,
    /// Root def indices (PDES entry points), sorted.
    pub roots: Vec<usize>,
    /// BFS parent (`defs` index) for every root-reachable def; roots map
    /// to themselves.
    parent: BTreeMap<usize, usize>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 18] = [
    "as", "box", "const", "dyn", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "move", "mut", "ref", "return", "while",
];

fn is_keyword(name: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&name)
}

/// Module path derived from a workspace-relative file path:
/// `crates/sim/src/ldq.rs` → `["ldq"]`, `crates/matrix/src/gen/mod.rs` →
/// `["gen"]`, `crates/sim/src/lib.rs` → `[]`.
fn module_of(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("/src/") else { return Vec::new() };
    let tail = &rel[pos + "/src/".len()..];
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<&str> = tail.split('/').collect();
    match parts.last().copied() {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts.into_iter().map(str::to_string).collect()
}

/// What one file contributes before cross-file resolution.
#[derive(Debug, Default)]
struct FileItems {
    defs: Vec<FnDef>,
    calls: Vec<Vec<RawCall>>,
    sinks: Vec<Vec<SinkUse>>,
}

fn ident_at<'t>(tokens: &'t [Token], i: usize) -> Option<&'t str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

/// If `i` sits on a `::` turbofish opener (`:: < … >`), returns the index
/// one past the closing `>` (arrow-aware: `->` never closes).
fn skip_turbofish(tokens: &[Token], i: usize) -> Option<usize> {
    if !(punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, '<')) {
        return None;
    }
    let mut depth = 0i32;
    let mut j = i + 2;
    while j < tokens.len() {
        if punct_at(tokens, j, '<') {
            depth += 1;
        } else if punct_at(tokens, j, '>') && !punct_at(tokens, j - 1, '-') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Parses one `impl`/`trait` header starting at the keyword token; returns
/// `(self_ty, trait_name, index of the body '{' or terminating ';')`.
fn parse_impl_header(tokens: &[Token], kw: usize) -> (Option<String>, Option<String>, usize) {
    let is_trait_decl = ident_at(tokens, kw) == Some("trait");
    let mut j = kw + 1;
    let mut angle = 0i32;
    let mut before_for: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut saw_for = false;
    let mut in_where = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('{') | TokKind::Punct(';') if angle == 0 => break,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !punct_at(tokens, j - 1, '-') => angle -= 1,
            TokKind::Ident(name) if angle == 0 => match name.as_str() {
                "for" => saw_for = true,
                "where" => in_where = true,
                n if !in_where => {
                    if saw_for {
                        after_for.push(n);
                    } else {
                        before_for.push(n);
                    }
                }
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    if is_trait_decl {
        // `trait Name { … }`: the name is the first header ident.
        (None, before_for.first().map(|s| s.to_string()), j)
    } else if saw_for {
        // `impl Trait for Type`: last segment on each side.
        (after_for.last().map(|s| s.to_string()), before_for.last().map(|s| s.to_string()), j)
    } else {
        // `impl Type`.
        (before_for.last().map(|s| s.to_string()), None, j)
    }
}

/// Matches taint-sink token patterns at `i`; returns the sink label.
fn sink_at(tokens: &[Token], i: usize) -> Option<String> {
    let name = ident_at(tokens, i)?;
    let path_next = |k: usize| -> Option<&str> {
        if punct_at(tokens, k + 1, ':') && punct_at(tokens, k + 2, ':') {
            ident_at(tokens, k + 3)
        } else {
            None
        }
    };
    match name {
        "Instant" | "SystemTime" if path_next(i) == Some("now") => {
            Some(format!("{name}::now (wall clock)"))
        }
        "thread_rng" | "from_entropy" => Some(format!("{name} (ambient RNG)")),
        "fs" => path_next(i).map(|f| format!("fs::{f} (file I/O)")),
        "File" if matches!(path_next(i), Some("open" | "create" | "options")) => {
            Some(format!("File::{} (file I/O)", path_next(i).unwrap_or_default()))
        }
        "OpenOptions" => Some("OpenOptions (file I/O)".into()),
        "TcpStream" | "TcpListener" | "UdpSocket" => Some(format!("{name} (socket I/O)")),
        "stdin" | "stdout" | "stderr" if punct_at(tokens, i + 1, '(') => {
            Some(format!("{name}() (console I/O)"))
        }
        "println" | "print" | "eprintln" | "eprint" | "dbg" if punct_at(tokens, i + 1, '!') => {
            Some(format!("{name}! (console I/O)"))
        }
        "thread" if matches!(path_next(i), Some("spawn")) => {
            Some("thread::spawn (thread API)".into())
        }
        "JoinHandle" => Some("JoinHandle (thread API)".into()),
        "mpsc" => Some("mpsc channel (thread API)".into()),
        "env" if matches!(path_next(i), Some("var" | "vars" | "var_os")) => {
            Some(format!("env::{} (ambient environment)", path_next(i).unwrap_or_default()))
        }
        _ => None,
    }
}

/// Parses one file's items, raw call candidates, and sink uses.
fn parse_file(meta: &FileMeta, scan: &ScanOutput) -> FileItems {
    let tokens = &scan.tokens;
    let masked = crate::rules::mark_test_regions(tokens);
    let base_module = module_of(&meta.rel);

    #[derive(Debug, Clone)]
    enum Scope {
        Mod(String),
        Container { self_ty: Option<String>, trait_name: Option<String> },
        Fn,
        Block,
    }
    #[derive(Debug, Clone)]
    enum Pend {
        Mod(String),
        Container { self_ty: Option<String>, trait_name: Option<String> },
        Fn(usize),
    }

    let mut out = FileItems::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut pending: Option<Pend> = None;
    // Bracket depth while a pending item waits for its body: a `;` inside
    // `fn f(x: [u8; 4])`'s brackets must not cancel the pending fn.
    let mut pend_depth = 0i32;

    let mut i = 0usize;
    while i < tokens.len() {
        if masked[i] {
            i += 1;
            continue;
        }
        let in_fn = fn_stack.last().copied();

        // Item structure.
        match &tokens[i].kind {
            TokKind::Ident(kw) if kw == "mod" && in_fn.is_none() => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    if punct_at(tokens, i + 2, '{') {
                        pending = Some(Pend::Mod(name.to_string()));
                        pend_depth = 0;
                    }
                    i += 2;
                    continue;
                }
            }
            TokKind::Ident(kw) if (kw == "impl" || kw == "trait") && in_fn.is_none() => {
                let (self_ty, trait_name, body) = parse_impl_header(tokens, i);
                if punct_at(tokens, body, '{') {
                    pending = Some(Pend::Container { self_ty, trait_name });
                    pend_depth = 0;
                }
                i = body;
                continue;
            }
            TokKind::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    // Owner context: the nearest Container unless a Fn
                    // intervenes (a nested fn is free-standing).
                    let mut self_ty = None;
                    let mut trait_name = None;
                    let mut module = base_module.clone();
                    for s in &stack {
                        if let Scope::Mod(m) = s {
                            module.push(m.clone());
                        }
                    }
                    for s in stack.iter().rev() {
                        match s {
                            Scope::Container { self_ty: ty, trait_name: tr } => {
                                self_ty = ty.clone();
                                trait_name = tr.clone();
                                break;
                            }
                            Scope::Fn => break,
                            _ => {}
                        }
                    }
                    let id = out.defs.len();
                    out.defs.push(FnDef {
                        krate: meta.krate.clone(),
                        module,
                        self_ty,
                        trait_name,
                        name: name.to_string(),
                        file: meta.rel.clone(),
                        line: tokens[i + 1].line,
                    });
                    out.calls.push(Vec::new());
                    out.sinks.push(Vec::new());
                    pending = Some(Pend::Fn(id));
                    pend_depth = 0;
                    i += 2;
                    continue;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') if pending.is_some() => pend_depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') if pending.is_some() => pend_depth -= 1,
            TokKind::Punct(';') if pending.is_some() && pend_depth == 0 => {
                // Declaration without a body (trait method, `mod x;`).
                pending = None;
            }
            TokKind::Punct('{') => {
                let scope = match pending.take() {
                    Some(Pend::Mod(m)) => Scope::Mod(m),
                    Some(Pend::Container { self_ty, trait_name }) => {
                        Scope::Container { self_ty, trait_name }
                    }
                    Some(Pend::Fn(id)) => {
                        fn_stack.push(id);
                        Scope::Fn
                    }
                    None => Scope::Block,
                };
                stack.push(scope);
            }
            TokKind::Punct('}') => {
                if let Some(Scope::Fn) = stack.last() {
                    fn_stack.pop();
                }
                stack.pop();
            }
            _ => {}
        }

        // Call candidates and sink uses inside function bodies.
        if let Some(def) = in_fn {
            if let Some(what) = sink_at(tokens, i) {
                out.sinks[def].push(SinkUse { what, line: tokens[i].line });
            }
            if let TokKind::Ident(name) = &tokens[i].kind {
                if !is_keyword(name) {
                    let after = skip_turbofish(tokens, i + 1).unwrap_or(i + 1);
                    if punct_at(tokens, after, '(') {
                        let call = if punct_at(tokens, i.wrapping_sub(1), '.') {
                            Some(RawCall {
                                kind: CallKind::Method,
                                qualifier: None,
                                name: name.clone(),
                                line: tokens[i].line,
                            })
                        } else if punct_at(tokens, i.wrapping_sub(1), ':')
                            && punct_at(tokens, i.wrapping_sub(2), ':')
                        {
                            match ident_at(tokens, i.wrapping_sub(3)) {
                                Some(q) => Some(RawCall {
                                    kind: CallKind::Qualified,
                                    qualifier: Some(q.to_string()),
                                    name: name.clone(),
                                    line: tokens[i].line,
                                }),
                                // `<T as Tr>::f(..)` — name-only resolution.
                                None => Some(RawCall {
                                    kind: CallKind::Method,
                                    qualifier: None,
                                    name: name.clone(),
                                    line: tokens[i].line,
                                }),
                            }
                        } else {
                            Some(RawCall {
                                kind: CallKind::Bare,
                                qualifier: None,
                                name: name.clone(),
                                line: tokens[i].line,
                            })
                        };
                        if let Some(c) = call {
                            out.calls[def].push(c);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

impl CallGraph {
    /// Builds the graph over the given scanned files. Only files from
    /// [`PDES_CRATES`] contribute (the Cargo dependency direction already
    /// prevents deterministic crates from calling into supervision crates,
    /// so graphing the supervision layer would only add resolution noise).
    pub fn build(files: &[(FileMeta, ScanOutput)]) -> CallGraph {
        let mut defs: Vec<FnDef> = Vec::new();
        let mut raw_calls: Vec<Vec<RawCall>> = Vec::new();
        let mut sinks: Vec<Vec<SinkUse>> = Vec::new();
        for (meta, scan) in files {
            if !PDES_CRATES.contains(&meta.krate.as_str()) {
                continue;
            }
            let items = parse_file(meta, scan);
            for ((d, c), s) in items.defs.into_iter().zip(items.calls).zip(items.sinks) {
                defs.push(d);
                raw_calls.push(c);
                sinks.push(s);
            }
        }

        // Name indexes for resolution, all deterministic.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, d) in defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(id);
        }

        let resolve = |caller: &FnDef, call: &RawCall| -> Vec<usize> {
            let Some(cands) = by_name.get(call.name.as_str()) else { return Vec::new() };
            match call.kind {
                CallKind::Bare => {
                    let free: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&id| defs[id].self_ty.is_none() && defs[id].trait_name.is_none())
                        .collect();
                    let same_mod: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&id| {
                            defs[id].krate == caller.krate && defs[id].module == caller.module
                        })
                        .collect();
                    if !same_mod.is_empty() {
                        return same_mod;
                    }
                    let same_crate: Vec<usize> =
                        free.iter().copied().filter(|&id| defs[id].krate == caller.krate).collect();
                    if !same_crate.is_empty() {
                        return same_crate;
                    }
                    free
                }
                CallKind::Qualified => {
                    let q = call.qualifier.as_deref().unwrap_or_default();
                    let q = if q == "Self" { caller.self_ty.as_deref().unwrap_or(q) } else { q };
                    cands
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let d = &defs[id];
                            d.self_ty.as_deref() == Some(q)
                                || d.trait_name.as_deref() == Some(q)
                                || d.module.last().map(String::as_str) == Some(q)
                                || d.krate == q
                                || format!("spacea_{}", d.krate) == q
                        })
                        .collect()
                }
                CallKind::Method => cands
                    .iter()
                    .copied()
                    .filter(|&id| defs[id].self_ty.is_some() || defs[id].trait_name.is_some())
                    .collect(),
            }
        };

        let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); defs.len()];
        for (id, calls) in raw_calls.iter().enumerate() {
            let mut out: BTreeMap<usize, u32> = BTreeMap::new();
            for call in calls {
                for target in resolve(&defs[id], call) {
                    if target != id {
                        out.entry(target).or_insert(call.line);
                    }
                }
            }
            edges[id] = out.into_iter().collect();
        }

        // Roots: Machine::run, every DesQueue impl/decl method, every
        // Backend::run impl.
        let mut roots: Vec<usize> = defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                (d.krate == "arch" && d.self_ty.as_deref() == Some("Machine") && d.name == "run")
                    || d.trait_name.as_deref() == Some("DesQueue")
                    || (d.trait_name.as_deref() == Some("Backend") && d.name == "run")
            })
            .map(|(id, _)| id)
            .collect();
        roots.sort_unstable();
        roots.dedup();

        // BFS with first-discovered parents (deterministic: sorted roots,
        // sorted adjacency).
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in &roots {
            if !parent.contains_key(&r) {
                parent.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &(next, _) in &edges[at] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(at);
                    queue.push_back(next);
                }
            }
        }

        CallGraph { defs, edges, sinks, roots, parent }
    }

    /// True when `def` is reachable from any root.
    pub fn reachable(&self, def: usize) -> bool {
        self.parent.contains_key(&def)
    }

    /// The call chain from a root to `def` (inclusive), as display names.
    /// `None` when `def` is unreachable.
    pub fn chain_to(&self, def: usize) -> Option<Vec<String>> {
        self.parent.get(&def)?;
        let mut chain = vec![def];
        let mut at = def;
        while self.parent[&at] != at {
            at = self.parent[&at];
            chain.push(at);
        }
        chain.reverse();
        Some(chain.into_iter().map(|id| self.defs[id].display()).collect())
    }

    /// Def indices whose name (or `Owner::name`) matches `symbol`.
    pub fn find(&self, symbol: &str) -> Vec<usize> {
        let (owner, name) = match symbol.rsplit_once("::") {
            Some((o, n)) => (Some(o), n),
            None => (None, symbol),
        };
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.name == name
                    && owner.is_none_or(|o| {
                        d.self_ty.as_deref() == Some(o)
                            || d.trait_name.as_deref() == Some(o)
                            || d.module.last().map(String::as_str) == Some(o)
                            || d.krate == o
                    })
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Exports the graph as GraphViz DOT. Roots are boxes, sink-bearing
    /// defs are shaded, reachable defs carry the `reachable` class.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph spacea_calls {\n  rankdir=LR;\n  node [fontsize=9];\n");
        for (id, d) in self.defs.iter().enumerate() {
            let mut attrs = vec![format!("label=\"{}\"", d.qualified())];
            if self.roots.contains(&id) {
                attrs.push("shape=box".into());
                attrs.push("style=bold".into());
            }
            if !self.sinks[id].is_empty() {
                attrs.push("style=filled".into());
                attrs.push("fillcolor=lightcoral".into());
            } else if self.reachable(id) {
                attrs.push("color=blue".into());
            }
            let _ = writeln!(out, "  n{id} [{}];", attrs.join(", "));
        }
        for (from, outs) in self.edges.iter().enumerate() {
            for &(to, _) in outs {
                let _ = writeln!(out, "  n{from} -> n{to};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Exports the graph as JSON (nodes with reachability and sinks, then
    /// edges), parseable by `spacea_obs::json`.
    pub fn to_json(&self) -> String {
        use spacea_obs::json::escape;
        let mut out = String::from("{\n  \"schema\": \"spacea-lint-graph-v1\",\n");
        let _ = writeln!(out, "  \"nodes\": {},", self.defs.len());
        out.push_str("  \"defs\": [\n");
        for (id, d) in self.defs.iter().enumerate() {
            let sinks: Vec<String> =
                self.sinks[id].iter().map(|s| format!("\"{}\"", escape(&s.what))).collect();
            let _ = write!(
                out,
                "    {{\"id\": {id}, \"name\": \"{}\", \"crate\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"root\": {}, \"reachable\": {}, \"sinks\": [{}]}}",
                escape(&d.qualified()),
                escape(&d.krate),
                escape(&d.file),
                d.line,
                self.roots.contains(&id),
                self.reachable(id),
                sinks.join(", ")
            );
            out.push_str(if id + 1 < self.defs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"edges\": [\n");
        let flat: Vec<(usize, usize)> = self
            .edges
            .iter()
            .enumerate()
            .flat_map(|(from, outs)| outs.iter().map(move |&(to, _)| (from, to)))
            .collect();
        for (i, (from, to)) in flat.iter().enumerate() {
            let _ = write!(out, "    {{\"from\": {from}, \"to\": {to}}}");
            out.push_str(if i + 1 < flat.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the D5 transitive-taint rule: every sink use in a root-reachable
/// function is a violation carrying the full call chain. `allows` maps each
/// file's workspace-relative path to its `lint:allow` directives.
pub fn check_taint(graph: &CallGraph, allows: &BTreeMap<String, Vec<Allow>>) -> Vec<Violation> {
    let empty: Vec<Allow> = Vec::new();
    let mut out = Vec::new();
    for (id, def) in graph.defs.iter().enumerate() {
        if graph.sinks[id].is_empty() || !graph.reachable(id) {
            continue;
        }
        let chain = graph.chain_to(id).unwrap_or_default().join(" -> ");
        let file_allows = allows.get(&def.file).unwrap_or(&empty);
        for sink in &graph.sinks[id] {
            let suppressed = file_allows.iter().any(|a| {
                (a.line == sink.line || a.line + 1 == sink.line)
                    && a.rules.iter().any(|r| r == RuleId::D5.name())
            });
            if !suppressed {
                out.push(Violation {
                    rule: RuleId::D5,
                    file: def.file.clone(),
                    line: sink.line,
                    what: format!("{} reachable via {chain}", sink.what),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::scanner::scan;

    fn meta(rel: &str, krate: &str) -> FileMeta {
        FileMeta { rel: rel.into(), krate: krate.into(), kind: FileKind::Lib }
    }

    fn graph_of(files: &[(&str, &str, &str)]) -> CallGraph {
        let scanned: Vec<(FileMeta, ScanOutput)> =
            files.iter().map(|(rel, krate, src)| (meta(rel, krate), scan(src))).collect();
        CallGraph::build(&scanned)
    }

    const ENGINE_SRC: &str = "
        pub trait DesQueue<E> {
            fn schedule(&mut self, t: u64, e: E);
        }
        pub struct EventQueue;
        impl<E> DesQueue<E> for EventQueue {
            fn schedule(&mut self, t: u64, e: E) { helper(t); }
        }
        fn helper(t: u64) -> u64 { t + 1 }
    ";

    #[test]
    fn defs_and_owners_are_parsed() {
        let g = graph_of(&[("crates/sim/src/engine.rs", "sim", ENGINE_SRC)]);
        let names: Vec<String> = g.defs.iter().map(FnDef::display).collect();
        assert_eq!(
            names,
            vec!["DesQueue::schedule", "EventQueue::schedule", "helper"],
            "{:?}",
            g.defs
        );
        assert_eq!(g.defs[1].self_ty.as_deref(), Some("EventQueue"));
        assert_eq!(g.defs[1].trait_name.as_deref(), Some("DesQueue"));
        assert_eq!(g.defs[2].qualified(), "sim::engine::helper");
    }

    #[test]
    fn desqueue_impls_are_roots_and_reach_helpers() {
        let g = graph_of(&[("crates/sim/src/engine.rs", "sim", ENGINE_SRC)]);
        // The trait decl (no body) and the impl method are both roots.
        assert_eq!(g.roots.len(), 2, "{:?}", g.roots);
        let helper = g.find("helper")[0];
        assert!(g.reachable(helper));
        assert_eq!(
            g.chain_to(helper).unwrap(),
            vec!["EventQueue::schedule".to_string(), "helper".to_string()]
        );
    }

    #[test]
    fn machine_run_is_a_root_and_taint_flows_through_methods() {
        let machine = "
            pub struct Machine;
            impl Machine {
                pub fn run(&self) { let s = Sim::new(); s.go(); }
            }
            pub struct Sim;
            impl Sim {
                pub fn new() -> Sim { Sim }
                pub fn go(&self) { let t = std::time::Instant::now(); let _ = t; }
            }
        ";
        let g = graph_of(&[("crates/arch/src/machine.rs", "arch", machine)]);
        let run = g.find("Machine::run");
        assert_eq!(run.len(), 1);
        assert!(g.roots.contains(&run[0]));
        let violations = check_taint(&g, &BTreeMap::new());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, RuleId::D5);
        assert!(violations[0].what.contains("Instant::now"), "{}", violations[0].what);
        assert!(
            violations[0].what.contains("Machine::run -> Sim::go"),
            "chain must be complete: {}",
            violations[0].what
        );
    }

    #[test]
    fn unreachable_sinks_are_not_violations() {
        let src = "
            pub struct Machine;
            impl Machine { pub fn run(&self) {} }
            pub fn offline_loader() -> String { fs::read_to_string(\"x\") }
        ";
        let g = graph_of(&[("crates/arch/src/machine.rs", "arch", src)]);
        let loader = g.find("offline_loader")[0];
        assert!(!g.sinks[loader].is_empty(), "sink must be detected");
        assert!(!g.reachable(loader));
        assert!(check_taint(&g, &BTreeMap::new()).is_empty());
    }

    #[test]
    fn lint_allow_d5_suppresses_at_the_sink_line() {
        let src = "
pub struct Machine;
impl Machine {
    pub fn run(&self) {
        // lint:allow(D5) documented measurement
        let t = std::time::Instant::now();
        let _ = t;
    }
}
";
        let m = meta("crates/arch/src/machine.rs", "arch");
        let scanned = scan(src);
        let mut allows = BTreeMap::new();
        allows.insert(m.rel.clone(), scanned.allows.clone());
        let g = CallGraph::build(&[(m, scanned)]);
        assert!(check_taint(&g, &allows).is_empty());
        // Without the allow table the same graph reports it.
        assert_eq!(check_taint(&g, &BTreeMap::new()).len(), 1);
    }

    #[test]
    fn backend_run_impls_are_roots() {
        let backend = "
            pub trait Backend {
                fn run(&self, spec: &u32) -> Result<u32, String>;
            }
            pub struct GpuBackend;
            impl Backend for GpuBackend {
                fn run(&self, spec: &u32) -> Result<u32, String> { Ok(*spec) }
            }
        ";
        let g = graph_of(&[("crates/backend/src/lib.rs", "backend", backend)]);
        let ids = g.find("Backend::run");
        assert!(!ids.is_empty());
        for id in g.find("GpuBackend::run") {
            assert!(g.roots.contains(&id), "impl Backend::run must be a root");
        }
    }

    #[test]
    fn test_code_contributes_no_defs() {
        let src = "
            pub struct Machine;
            impl Machine { pub fn run(&self) {} }
            #[cfg(test)]
            mod tests {
                fn helper_with_clock() { let _ = std::time::Instant::now(); }
            }
        ";
        let g = graph_of(&[("crates/arch/src/machine.rs", "arch", src)]);
        assert!(g.find("helper_with_clock").is_empty());
    }

    #[test]
    fn qualified_and_turbofish_calls_resolve() {
        let src = "
            pub struct Machine;
            impl Machine {
                pub fn run(&self) {
                    reduce::canon::<u64>(3);
                    Helper::assist();
                }
            }
            pub struct Helper;
            impl Helper { pub fn assist() {} }
            pub mod reduce { pub fn canon<T>(x: T) -> T { x } }
        ";
        let g = graph_of(&[("crates/arch/src/machine.rs", "arch", src)]);
        let canon = g.find("canon")[0];
        let assist = g.find("assist")[0];
        assert!(g.reachable(canon), "turbofish module call must resolve");
        assert!(g.reachable(assist), "Type::assoc call must resolve");
    }

    #[test]
    fn cross_crate_method_calls_link() {
        let sim = "
            pub struct LoadQueue;
            impl LoadQueue {
                pub fn push_stamped(&mut self) { let _ = std::time::Instant::now(); }
            }
        ";
        let arch = "
            pub struct Machine;
            impl Machine {
                pub fn run(&self, q: &mut u32) { q.push_stamped(); }
            }
        ";
        let g = graph_of(&[
            ("crates/sim/src/ldq.rs", "sim", sim),
            ("crates/arch/src/machine.rs", "arch", arch),
        ]);
        let v = check_taint(&g, &BTreeMap::new());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].file, "crates/sim/src/ldq.rs");
        assert!(v[0].what.contains("Machine::run -> LoadQueue::push_stamped"), "{}", v[0].what);
    }

    #[test]
    fn non_pdes_crates_are_out_of_scope() {
        let g = graph_of(&[(
            "crates/harness/src/exec.rs",
            "harness",
            "pub fn run_jobs() { let _ = std::time::Instant::now(); }",
        )]);
        assert!(g.defs.is_empty());
    }

    #[test]
    fn dot_and_json_exports_are_well_formed() {
        let g = graph_of(&[("crates/sim/src/engine.rs", "sim", ENGINE_SRC)]);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph spacea_calls {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("n1 -> n2;"), "{dot}");
        let json = g.to_json();
        let parsed = spacea_obs::json::parse(&json).expect("graph JSON must parse");
        assert_eq!(
            parsed.get("schema").and_then(spacea_obs::json::Value::as_str),
            Some("spacea-lint-graph-v1")
        );
        let defs = parsed.get("defs").and_then(spacea_obs::json::Value::as_arr).unwrap();
        assert_eq!(defs.len(), g.defs.len());
    }

    #[test]
    fn module_paths_derive_from_file_layout() {
        assert_eq!(module_of("crates/sim/src/ldq.rs"), vec!["ldq".to_string()]);
        assert_eq!(module_of("crates/matrix/src/gen/mod.rs"), vec!["gen".to_string()]);
        assert!(module_of("crates/sim/src/lib.rs").is_empty());
        assert_eq!(
            module_of("crates/core/src/experiments/fig2.rs"),
            vec!["experiments".to_string(), "fig2".to_string()]
        );
    }
}
