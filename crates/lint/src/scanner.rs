//! A hand-rolled Rust token scanner.
//!
//! The lint rules only need a faithful *token stream* — identifiers, string
//! literals, punctuation — with comments and string contents kept out of the
//! way so `// uses HashMap` or `"panic!"` never match a rule. The scanner
//! therefore handles the lexical shapes that matter for correctness:
//!
//! - line comments (`//`) and **nested** block comments (`/* /* */ */`),
//! - normal strings with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any number of hashes, plus `br…` forms),
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - raw identifiers (`r#type`),
//! - numeric literals (so `0..5` stays three tokens, not a float).
//!
//! It is deliberately *not* a full lexer: numeric suffixes, float exponents
//! and the like are folded into a single `Num` token because no rule cares.
//! Suppression directives (`// lint:allow(RULE) reason`) are collected from
//! line comments during the same pass.

/// What a token is. String/char contents are dropped except for string
/// literals, whose text the S1 rule needs to resolve metric names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `r#type` → `type`).
    Ident(String),
    /// A string literal's contents (normal, byte, or raw; escapes are left
    /// unprocessed — rules only compare simple ASCII names).
    Str(String),
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct(char),
    /// A numeric literal, with its raw text (the D4 rule needs to tell a
    /// float seed like `0.0` from an integer one like `0u64`).
    Num(String),
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One `lint:allow(RULE[, RULE…]) reason` directive found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule names listed inside the parentheses, as written.
    pub rules: Vec<String>,
    /// 1-based line the directive sits on. The directive suppresses matching
    /// violations on this line and the immediately following line (so it can
    /// ride above the offending statement).
    pub line: u32,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Suppression directives in source order.
    pub allows: Vec<Allow>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and `lint:allow` directives.
pub fn scan(src: &str) -> ScanOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = ScanOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! peek {
        ($off:expr) => {
            chars.get(i + $off).copied()
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if peek!(1) == Some('/') => {
                // Line comment: collect its text for lint:allow parsing.
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if let Some(allow) = parse_allow(&text, line) {
                    out.allows.push(allow);
                }
                i = j;
            }
            '/' if peek!(1) == Some('*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && peek!(1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && peek!(1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                let (contents, next, nl) = cooked_string(&chars, i + 1);
                out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                line += nl;
                i = next;
            }
            '\'' => {
                let tok_line = line;
                // Lifetime: 'ident not followed by a closing quote.
                if peek!(1).is_some_and(is_ident_start) && peek!(2) != Some('\'') {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Lifetime, line: tok_line });
                    i = j;
                } else {
                    // Char literal: '\n', 'x', '🎈'.
                    let mut j = i + 1;
                    if peek!(1) == Some('\\') {
                        j += 2; // skip the escaped char
                                // \u{…} escapes: run to the closing brace.
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                    } else if j < chars.len() {
                        j += 1;
                    }
                    if j < chars.len() && chars[j] == '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Char, line: tok_line });
                    i = j;
                }
            }
            _ if is_ident_start(c) => {
                let tok_line = line;
                // Raw identifier r#name (but not a raw string r#"…").
                if c == 'r' && peek!(1) == Some('#') && peek!(2).is_some_and(is_ident_start) {
                    let mut j = i + 2;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    let name: String = chars[i + 2..j].iter().collect();
                    out.tokens.push(Token { kind: TokKind::Ident(name), line: tok_line });
                    i = j;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", br", br#", b".
                let raw_after = match c {
                    'r' => Some(i + 1),
                    'b' if peek!(1) == Some('r') => Some(i + 2),
                    _ => None,
                };
                if let Some(after) = raw_after {
                    let mut hashes = 0usize;
                    let mut j = after;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        let (contents, next, nl) = raw_string(&chars, j + 1, hashes);
                        out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                        line += nl;
                        i = next;
                        continue;
                    }
                }
                if c == 'b' && peek!(1) == Some('"') {
                    let (contents, next, nl) = cooked_string(&chars, i + 2);
                    out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                    line += nl;
                    i = next;
                    continue;
                }
                // Plain identifier / keyword.
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let name: String = chars[i..j].iter().collect();
                out.tokens.push(Token { kind: TokKind::Ident(name), line: tok_line });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // Only consume the dot of a true float so `0..5`
                        // stays `0`, `.`, `.`, `5`.
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                out.tokens.push(Token { kind: TokKind::Num(text), line: tok_line });
                i = j;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.tokens.push(Token { kind: TokKind::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a cooked (escape-processing) string body starting *after* the
/// opening quote. Returns `(contents, index past closing quote, newlines)`.
fn cooked_string(chars: &[char], start: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut newlines = 0u32;
    let mut contents = String::new();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // Keep the escape verbatim; rules never need it decoded.
                contents.push(chars[j]);
                if let Some(&e) = chars.get(j + 1) {
                    contents.push(e);
                    if e == '\n' {
                        newlines += 1;
                    }
                }
                j += 2;
            }
            '"' => return (contents, j + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                contents.push(c);
                j += 1;
            }
        }
    }
    (contents, j, newlines)
}

/// Consumes a raw string body starting *after* the opening quote, closed by
/// `"` followed by `hashes` `#`s. Returns `(contents, next index, newlines)`.
fn raw_string(chars: &[char], start: usize, hashes: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut newlines = 0u32;
    let mut contents = String::new();
    while j < chars.len() {
        if chars[j] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(j + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (contents, j + 1 + hashes, newlines);
            }
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        contents.push(chars[j]);
        j += 1;
    }
    (contents, j, newlines)
}

/// True when a numeric literal's raw text is a floating-point literal
/// (`0.0`, `2f64`, `1e3`), as opposed to an integer (`3`, `0xFF`, `1_000u64`).
///
/// The scanner never consumes a sign, so `1e-9` arrives as `1e` + `-` + `9`;
/// a bare trailing exponent head like `1e` therefore counts as float too.
pub fn is_float_literal(text: &str) -> bool {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    if t.ends_with("f32") || t.ends_with("f64") || t.contains('.') {
        return true;
    }
    if let Some(pos) = t.find(['e', 'E']) {
        let (mant, exp) = t.split_at(pos);
        return !mant.is_empty()
            && mant.bytes().all(|b| b.is_ascii_digit())
            && exp[1..].bytes().all(|b| b.is_ascii_digit());
    }
    false
}

/// Parses a `lint:allow(R1, D2) reason` directive out of a line comment's
/// text, if present.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> =
        rest[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return None;
    }
    Some(Allow { rules, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comments_hide_keywords() {
        let src = "let a = 1; // HashMap::new().unwrap()\nlet b = a;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"b".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner HashMap */ still comment unwrap */ let live = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "live"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_rest() {
        let src = "/* /* never closed */ HashMap";
        assert!(idents(src).is_empty());
    }

    #[test]
    fn string_embedded_keywords_do_not_become_idents() {
        let src = r#"let msg = "call unwrap() on HashMap"; let x = msg;"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec!["call unwrap() on HashMap"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "she said \"HashMap\""; let t = s;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"embedded "quote" and unwrap()"#; let u = s;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"u".to_string()));
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec![r#"embedded "quote" and unwrap()"#]);
    }

    #[test]
    fn raw_string_two_hashes_ignores_single_hash_close() {
        let src = r###"let s = r##"has "# inside"##;"###;
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec![r##"has "# inside"##]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"bytes unwrap"; let b2 = br#"raw bytes"#;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"b2".to_string()));
    }

    #[test]
    fn raw_identifiers_unwrap_to_plain_names() {
        let src = "let r#type = 1; fn r#match() {}";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"match".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
        let out = scan(src);
        let lifetimes = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let charlits = out.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(charlits, 3);
    }

    #[test]
    fn range_literal_is_not_a_float() {
        let src = "for i in 0..5 { }";
        let out = scan(src);
        let dots = out.tokens.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 2, "0..5 keeps both range dots: {:?}", out.tokens);
    }

    #[test]
    fn line_numbers_advance_through_strings_and_comments() {
        let src = "a\n/* two\nlines */\nb\n\"str\nin\"\nc";
        let out = scan(src);
        let find = |name: &str| {
            out.tokens.iter().find(|t| t.kind == TokKind::Ident(name.to_string())).map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn allow_directives_are_collected_with_lines() {
        let src = "x\n// lint:allow(R1) documented panic\ny // lint:allow(D1, D2) both\n";
        let out = scan(src);
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].rules, vec!["R1"]);
        assert_eq!(out.allows[0].line, 2);
        assert_eq!(out.allows[1].rules, vec!["D1", "D2"]);
        assert_eq!(out.allows[1].line, 3);
    }

    #[test]
    fn allow_inside_string_is_not_a_directive() {
        let src = r#"let s = "// lint:allow(R1)";"#;
        assert!(scan(src).allows.is_empty());
    }

    #[test]
    fn empty_allow_list_is_ignored() {
        let src = "// lint:allow() nothing named\n";
        assert!(scan(src).allows.is_empty());
    }

    #[test]
    fn numeric_literals_keep_their_text() {
        let out = scan("let a = 1_000u64; let b = 0.5; let c = 2f64; let d = 0xFF;");
        let nums: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1_000u64", "0.5", "2f64", "0xFF"]);
    }

    #[test]
    fn float_literal_classification() {
        for float in ["0.0", "1.5", "2f64", "3f32", "1e3", "1e", "1_000.25", "9E4"] {
            assert!(is_float_literal(float), "{float} must classify as float");
        }
        for int in ["0", "3", "1_000u64", "0xFF", "0b1010", "0o17", "3usize", "255u8"] {
            assert!(!is_float_literal(int), "{int} must classify as integer");
        }
    }

    #[test]
    fn block_comment_nested_inside_doc_comment() {
        // `/**` opens an (outer) block doc comment; a `/*` nested inside it
        // must not terminate the doc comment at the inner `*/`.
        let src = "/** doc /* inner HashMap */ tail unwrap */ fn live() {}";
        assert_eq!(idents(src), vec!["fn", "live"]);
        // Line doc comments swallow block-comment openers to end of line.
        let src = "/// doc with /* unclosed opener\nfn live() {}";
        assert_eq!(idents(src), vec!["fn", "live"]);
    }

    #[test]
    fn lifetimes_inside_generic_bounds() {
        // 'a as a bound and 'a' as a char literal in the same generic
        // context must not be confused.
        let src = "fn f<'a, T: Iterator<Item = &'a str> + 'a>(x: &'a T) -> char { 'a' }";
        let out = scan(src);
        let lifetimes = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = out.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 4, "{:?}", out.tokens);
        assert_eq!(chars, 1);
        // 'static in a where clause is a lifetime, not a char.
        let out = scan("fn g<T>() where T: 'static {}");
        assert_eq!(out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary printable-ASCII body with `"` excluded (a quote could
        /// form the closing delimiter early, which is correct scanner
        /// behavior but not what the round-trip property asserts).
        fn body_strategy() -> impl Strategy<Value = String> {
            proptest::collection::vec(32u8..127, 0..25).prop_map(|bytes| {
                bytes.into_iter().map(|b| if b == b'"' { '_' } else { b as char }).collect()
            })
        }

        proptest! {
            /// Raw strings close at exactly their own delimiter: for any
            /// body and any hash count 0..=4, the scanner recovers the body
            /// verbatim and keeps scanning after it.
            #[test]
            fn raw_string_any_hash_count_round_trips(
                body in body_strategy(),
                hashes in 0usize..5,
            ) {
                let fence = "#".repeat(hashes);
                let src = format!("let s = r{fence}\"{body}\"{fence}; let tail = s;");
                let out = scan(&src);
                let strings: Vec<&str> = out.tokens.iter().filter_map(|t| match &t.kind {
                    TokKind::Str(s) => Some(s.as_str()),
                    _ => None,
                }).collect();
                prop_assert_eq!(strings, vec![body.as_str()]);
                prop_assert!(out.tokens.iter().any(|t| t.kind == TokKind::Ident("tail".into())));
            }

            /// A raw string fenced with n+1 hashes must ignore any embedded
            /// `"` + n-hash close candidates.
            #[test]
            fn raw_string_ignores_shorter_close(inner in 0usize..4) {
                let outer = inner + 1;
                let body = format!("x\"{}y", "#".repeat(inner));
                let src = format!(
                    "let s = r{f}\"{body}\"{f}; let tail = s;",
                    f = "#".repeat(outer)
                );
                let out = scan(&src);
                let strings: Vec<&str> = out.tokens.iter().filter_map(|t| match &t.kind {
                    TokKind::Str(s) => Some(s.as_str()),
                    _ => None,
                }).collect();
                prop_assert_eq!(strings, vec![body.as_str()]);
            }

            /// Block comments nested to any depth (including inside doc
            /// block comments) hide every identifier and resume scanning
            /// exactly at the matching close.
            #[test]
            fn nested_block_comments_any_depth(depth in 1usize..6, doc in any::<bool>()) {
                let open = if doc { "/**" } else { "/*" };
                let mut src = String::from(open);
                for _ in 0..depth {
                    src.push_str(" /* HashMap unwrap ");
                }
                for _ in 0..depth {
                    src.push_str(" */ still_hidden ");
                }
                src.push_str("*/ fn live() {}");
                prop_assert_eq!(idents(&src), vec!["fn", "live"]);
            }

            /// `'x'` is always a char literal and `'x` always a lifetime,
            /// for every ASCII identifier-start character, including inside
            /// a generic-bound context.
            #[test]
            fn lifetime_vs_char_for_any_ident_char(ix in 0usize..53) {
                const CHARS: &[u8; 53] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
                let c = CHARS[ix] as char;
                let lt = format!("'{c}");
                let src = format!("fn f<{lt}, T: Tr<{lt}> + {lt}>(x: &{lt} T) {{ let v = '{c}'; }}");
                let out = scan(&src);
                let lifetimes = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
                let chars = out.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
                prop_assert_eq!(lifetimes, 4, "src: {}", src);
                prop_assert_eq!(chars, 1, "src: {}", src);
            }
        }
    }
}
