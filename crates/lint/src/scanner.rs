//! A hand-rolled Rust token scanner.
//!
//! The lint rules only need a faithful *token stream* — identifiers, string
//! literals, punctuation — with comments and string contents kept out of the
//! way so `// uses HashMap` or `"panic!"` never match a rule. The scanner
//! therefore handles the lexical shapes that matter for correctness:
//!
//! - line comments (`//`) and **nested** block comments (`/* /* */ */`),
//! - normal strings with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any number of hashes, plus `br…` forms),
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - raw identifiers (`r#type`),
//! - numeric literals (so `0..5` stays three tokens, not a float).
//!
//! It is deliberately *not* a full lexer: numeric suffixes, float exponents
//! and the like are folded into a single `Num` token because no rule cares.
//! Suppression directives (`// lint:allow(RULE) reason`) are collected from
//! line comments during the same pass.

/// What a token is. String/char contents are dropped except for string
/// literals, whose text the S1 rule needs to resolve metric names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `r#type` → `type`).
    Ident(String),
    /// A string literal's contents (normal, byte, or raw; escapes are left
    /// unprocessed — rules only compare simple ASCII names).
    Str(String),
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct(char),
    /// A numeric literal.
    Num,
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// One `lint:allow(RULE[, RULE…]) reason` directive found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule names listed inside the parentheses, as written.
    pub rules: Vec<String>,
    /// 1-based line the directive sits on. The directive suppresses matching
    /// violations on this line and the immediately following line (so it can
    /// ride above the offending statement).
    pub line: u32,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Suppression directives in source order.
    pub allows: Vec<Allow>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and `lint:allow` directives.
pub fn scan(src: &str) -> ScanOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = ScanOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! peek {
        ($off:expr) => {
            chars.get(i + $off).copied()
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if peek!(1) == Some('/') => {
                // Line comment: collect its text for lint:allow parsing.
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if let Some(allow) = parse_allow(&text, line) {
                    out.allows.push(allow);
                }
                i = j;
            }
            '/' if peek!(1) == Some('*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && peek!(1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && peek!(1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                let (contents, next, nl) = cooked_string(&chars, i + 1);
                out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                line += nl;
                i = next;
            }
            '\'' => {
                let tok_line = line;
                // Lifetime: 'ident not followed by a closing quote.
                if peek!(1).is_some_and(is_ident_start) && peek!(2) != Some('\'') {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Lifetime, line: tok_line });
                    i = j;
                } else {
                    // Char literal: '\n', 'x', '🎈'.
                    let mut j = i + 1;
                    if peek!(1) == Some('\\') {
                        j += 2; // skip the escaped char
                                // \u{…} escapes: run to the closing brace.
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                    } else if j < chars.len() {
                        j += 1;
                    }
                    if j < chars.len() && chars[j] == '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Char, line: tok_line });
                    i = j;
                }
            }
            _ if is_ident_start(c) => {
                let tok_line = line;
                // Raw identifier r#name (but not a raw string r#"…").
                if c == 'r' && peek!(1) == Some('#') && peek!(2).is_some_and(is_ident_start) {
                    let mut j = i + 2;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    let name: String = chars[i + 2..j].iter().collect();
                    out.tokens.push(Token { kind: TokKind::Ident(name), line: tok_line });
                    i = j;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", br", br#", b".
                let raw_after = match c {
                    'r' => Some(i + 1),
                    'b' if peek!(1) == Some('r') => Some(i + 2),
                    _ => None,
                };
                if let Some(after) = raw_after {
                    let mut hashes = 0usize;
                    let mut j = after;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        let (contents, next, nl) = raw_string(&chars, j + 1, hashes);
                        out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                        line += nl;
                        i = next;
                        continue;
                    }
                }
                if c == 'b' && peek!(1) == Some('"') {
                    let (contents, next, nl) = cooked_string(&chars, i + 2);
                    out.tokens.push(Token { kind: TokKind::Str(contents), line: tok_line });
                    line += nl;
                    i = next;
                    continue;
                }
                // Plain identifier / keyword.
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let name: String = chars[i..j].iter().collect();
                out.tokens.push(Token { kind: TokKind::Ident(name), line: tok_line });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // Only consume the dot of a true float so `0..5`
                        // stays `0`, `.`, `.`, `5`.
                        j += 2;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Num, line: tok_line });
                i = j;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.tokens.push(Token { kind: TokKind::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a cooked (escape-processing) string body starting *after* the
/// opening quote. Returns `(contents, index past closing quote, newlines)`.
fn cooked_string(chars: &[char], start: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut newlines = 0u32;
    let mut contents = String::new();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // Keep the escape verbatim; rules never need it decoded.
                contents.push(chars[j]);
                if let Some(&e) = chars.get(j + 1) {
                    contents.push(e);
                    if e == '\n' {
                        newlines += 1;
                    }
                }
                j += 2;
            }
            '"' => return (contents, j + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                contents.push(c);
                j += 1;
            }
        }
    }
    (contents, j, newlines)
}

/// Consumes a raw string body starting *after* the opening quote, closed by
/// `"` followed by `hashes` `#`s. Returns `(contents, next index, newlines)`.
fn raw_string(chars: &[char], start: usize, hashes: usize) -> (String, usize, u32) {
    let mut j = start;
    let mut newlines = 0u32;
    let mut contents = String::new();
    while j < chars.len() {
        if chars[j] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(j + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (contents, j + 1 + hashes, newlines);
            }
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        contents.push(chars[j]);
        j += 1;
    }
    (contents, j, newlines)
}

/// Parses a `lint:allow(R1, D2) reason` directive out of a line comment's
/// text, if present.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> =
        rest[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return None;
    }
    Some(Allow { rules, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comments_hide_keywords() {
        let src = "let a = 1; // HashMap::new().unwrap()\nlet b = a;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"b".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner HashMap */ still comment unwrap */ let live = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "live"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_rest() {
        let src = "/* /* never closed */ HashMap";
        assert!(idents(src).is_empty());
    }

    #[test]
    fn string_embedded_keywords_do_not_become_idents() {
        let src = r#"let msg = "call unwrap() on HashMap"; let x = msg;"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec!["call unwrap() on HashMap"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "she said \"HashMap\""; let t = s;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"embedded "quote" and unwrap()"#; let u = s;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"u".to_string()));
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec![r#"embedded "quote" and unwrap()"#]);
    }

    #[test]
    fn raw_string_two_hashes_ignores_single_hash_close() {
        let src = r###"let s = r##"has "# inside"##;"###;
        let out = scan(src);
        let strings: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec![r##"has "# inside"##]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"bytes unwrap"; let b2 = br#"raw bytes"#;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"b2".to_string()));
    }

    #[test]
    fn raw_identifiers_unwrap_to_plain_names() {
        let src = "let r#type = 1; fn r#match() {}";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"match".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
        let out = scan(src);
        let lifetimes = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let charlits = out.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(charlits, 3);
    }

    #[test]
    fn range_literal_is_not_a_float() {
        let src = "for i in 0..5 { }";
        let out = scan(src);
        let dots = out.tokens.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 2, "0..5 keeps both range dots: {:?}", out.tokens);
    }

    #[test]
    fn line_numbers_advance_through_strings_and_comments() {
        let src = "a\n/* two\nlines */\nb\n\"str\nin\"\nc";
        let out = scan(src);
        let find = |name: &str| {
            out.tokens.iter().find(|t| t.kind == TokKind::Ident(name.to_string())).map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn allow_directives_are_collected_with_lines() {
        let src = "x\n// lint:allow(R1) documented panic\ny // lint:allow(D1, D2) both\n";
        let out = scan(src);
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].rules, vec!["R1"]);
        assert_eq!(out.allows[0].line, 2);
        assert_eq!(out.allows[1].rules, vec!["D1", "D2"]);
        assert_eq!(out.allows[1].line, 3);
    }

    #[test]
    fn allow_inside_string_is_not_a_directive() {
        let src = r#"let s = "// lint:allow(R1)";"#;
        assert!(scan(src).allows.is_empty());
    }

    #[test]
    fn empty_allow_list_is_ignored() {
        let src = "// lint:allow() nothing named\n";
        assert!(scan(src).allows.is_empty());
    }
}
