//! `spacea-lint` — determinism & robustness static analysis for the SpaceA
//! workspace.
//!
//! The simulator's claims (Section V tables/figures) rest on bit-exact
//! reproducibility, and the harness stack (content-addressed cache, shard
//! merges, deterministic fault injection) silently assumes nothing
//! nondeterministic ever leaks into a model run. This crate enforces that
//! statically, with no external dependencies: a hand-rolled token
//! [`scanner`] (comments, raw strings, lifetimes) feeds a [`rules`] engine
//! over every workspace crate, and pre-existing debt is carried in a
//! ratcheting [`baseline`] that CI only lets shrink.
//!
//! Rules (see `spacea-lint --explain RULE`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 | no `HashMap`/`HashSet` in `sim`/`arch`/`mapping`/`matrix`/`model` |
//! | D2 | no `Instant::now`/`SystemTime::now`/ambient RNG outside `harness`/`bench` |
//! | R1 | no `unwrap`/`expect`/`panic!` family in non-test code |
//! | S1 | every `MetricKey` literal in `arch`/`sim` is a registered metric |

pub mod baseline;
pub mod rules;
pub mod scanner;

use rules::{FileKind, FileMeta, Violation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The production S1 registry: the `(component, name)` pairs from
/// [`spacea_obs::registry::METRICS`].
pub fn known_metrics() -> Vec<(&'static str, &'static str)> {
    spacea_obs::registry::METRICS.to_vec()
}

/// Lints one in-memory source file. This is the whole pipeline minus I/O —
/// scan, mask test regions, run every applicable rule, apply `lint:allow`.
pub fn check_source(meta: &FileMeta, src: &str, metrics: &[(&str, &str)]) -> Vec<Violation> {
    rules::check_file(meta, &scanner::scan(src), metrics)
}

/// Recursively collects `.rs` files under `dir` in sorted order, skipping
/// directories that are out of scope (`tests`, `benches`, build output).
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<fs::DirEntry> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    // read_dir order is filesystem-dependent; the lint itself must be
    // deterministic, so sort by name.
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let file_type = e.file_type()?;
        let name = e.file_name();
        let name = name.to_string_lossy();
        if file_type.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "target" | ".git") {
                continue;
            }
            walk(&e.path(), out)?;
        } else if name.ends_with(".rs") {
            out.push(e.path());
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Workspace-relative, '/'-separated — stable baseline keys on any host.
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Enumerates every lintable source file of the workspace rooted at `root`:
/// each `crates/<name>` member's `src/` and `examples/`, plus the root
/// package's. `vendor/` (third-party stand-ins), `tests/`, and `benches/`
/// are out of scope.
pub fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileMeta)>> {
    let mut out = Vec::new();
    let push_tree =
        |out: &mut Vec<(PathBuf, FileMeta)>, dir: PathBuf, krate: &str, kind: FileKind| {
            if !dir.is_dir() {
                return Ok::<(), io::Error>(());
            }
            let mut files = Vec::new();
            walk(&dir, &mut files)?;
            for path in files {
                let rel = rel_to(root, &path);
                let kind = if kind == FileKind::Lib && rel.contains("/src/bin/") {
                    FileKind::Bin
                } else {
                    kind
                };
                out.push((path, FileMeta { rel, krate: krate.to_string(), kind }));
            }
            Ok(())
        };

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<fs::DirEntry> =
            fs::read_dir(&crates_dir)?.collect::<io::Result<_>>()?;
        members.sort_by_key(|e| e.file_name());
        for m in members {
            if !m.file_type()?.is_dir() {
                continue;
            }
            let name = m.file_name().to_string_lossy().into_owned();
            push_tree(&mut out, m.path().join("src"), &name, FileKind::Lib)?;
            push_tree(&mut out, m.path().join("examples"), &name, FileKind::Example)?;
        }
    }
    push_tree(&mut out, root.join("src"), "spacea", FileKind::Lib)?;
    push_tree(&mut out, root.join("examples"), "spacea", FileKind::Example)?;
    Ok(out)
}

/// Lints every workspace source file under `root` against the production
/// metric registry. Violations come back sorted by `(file, line, rule)`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let metrics = known_metrics();
    let mut violations = Vec::new();
    for (path, meta) in collect_files(root)? {
        let src = fs::read_to_string(&path)?;
        violations.extend(check_source(&meta, &src, &metrics));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_nonempty_and_known() {
        let metrics = known_metrics();
        assert!(metrics.len() >= 9);
        assert!(metrics.contains(&("tsv", "bytes")));
    }

    #[test]
    fn workspace_walk_finds_this_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("workspace walk");
        assert!(files.iter().any(|(_, m)| m.rel == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|(_, m)| m.krate == "sim"));
        assert!(files.iter().all(|(_, m)| !m.rel.starts_with("vendor/")));
        assert!(files.iter().all(|(_, m)| !m.rel.contains("/tests/")));
        // Sorted and duplicate-free: required for stable baselines.
        let rels: Vec<&str> = files.iter().map(|(_, m)| m.rel.as_str()).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(rels.len(), sorted.len());
    }

    #[test]
    fn bin_files_are_classified() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("workspace walk");
        for (_, m) in &files {
            if m.rel.contains("/src/bin/") {
                assert_eq!(m.kind, rules::FileKind::Bin, "{}", m.rel);
            }
        }
    }
}
