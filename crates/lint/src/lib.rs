//! `spacea-lint` — determinism & robustness static analysis for the SpaceA
//! workspace.
//!
//! The simulator's claims (Section V tables/figures) rest on bit-exact
//! reproducibility, and the harness stack (content-addressed cache, shard
//! merges, deterministic fault injection) silently assumes nothing
//! nondeterministic ever leaks into a model run. This crate enforces that
//! statically, with no external dependencies: a hand-rolled token
//! [`scanner`] (comments, raw strings, lifetimes) feeds a [`rules`] engine
//! over every workspace crate, and pre-existing debt is carried in a
//! ratcheting [`baseline`] that CI only lets shrink.
//!
//! Since the PDES-readiness work, the per-site rules are joined by a
//! workspace-level [`graph`] pass: item structure is parsed on top of the
//! token stream, calls are resolved into a deterministic cross-crate call
//! graph, and transitive taint is traced from the event-loop roots.
//!
//! Rules (see `spacea-lint --explain RULE`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 | no `HashMap`/`HashSet` in `sim`/`arch`/`mapping`/`matrix`/`model` |
//! | D2 | no `Instant::now`/`SystemTime::now`/ambient RNG outside `harness`/`bench`/`serve` |
//! | D3 | no shared-mutable-state primitives in the PDES crates |
//! | D4 | no raw float iterator reductions outside `spacea_matrix::reduce` |
//! | D5 | nothing reachable from `Machine::run`/`DesQueue`/`Backend::run` touches the outside world |
//! | R1 | no `unwrap`/`expect`/`panic!` family in non-test code |
//! | S1 | every `MetricKey` literal in `arch`/`sim` is a registered metric |

pub mod baseline;
pub mod graph;
pub mod rules;
pub mod scanner;

use rules::{FileKind, FileMeta, Violation};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The production S1 registry: the `(component, name)` pairs from
/// [`spacea_obs::registry::METRICS`].
pub fn known_metrics() -> Vec<(&'static str, &'static str)> {
    spacea_obs::registry::METRICS.to_vec()
}

/// Lints one in-memory source file. This is the whole pipeline minus I/O —
/// scan, mask test regions, run every applicable rule, apply `lint:allow`.
pub fn check_source(meta: &FileMeta, src: &str, metrics: &[(&str, &str)]) -> Vec<Violation> {
    rules::check_file(meta, &scanner::scan(src), metrics)
}

/// Recursively collects `.rs` files under `dir` in sorted order, skipping
/// directories that are out of scope (`tests`, `benches`, build output).
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<fs::DirEntry> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    // read_dir order is filesystem-dependent; the lint itself must be
    // deterministic, so sort by name.
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let file_type = e.file_type()?;
        let name = e.file_name();
        let name = name.to_string_lossy();
        if file_type.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "target" | ".git") {
                continue;
            }
            walk(&e.path(), out)?;
        } else if name.ends_with(".rs") {
            out.push(e.path());
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Workspace-relative, '/'-separated — stable baseline keys on any host.
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Enumerates every lintable source file of the workspace rooted at `root`:
/// each `crates/<name>` member's `src/` and `examples/`, plus the root
/// package's. `vendor/` (third-party stand-ins), `tests/`, and `benches/`
/// are out of scope.
pub fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileMeta)>> {
    let mut out = Vec::new();
    let push_tree =
        |out: &mut Vec<(PathBuf, FileMeta)>, dir: PathBuf, krate: &str, kind: FileKind| {
            if !dir.is_dir() {
                return Ok::<(), io::Error>(());
            }
            let mut files = Vec::new();
            walk(&dir, &mut files)?;
            for path in files {
                let rel = rel_to(root, &path);
                let kind = if kind == FileKind::Lib && rel.contains("/src/bin/") {
                    FileKind::Bin
                } else {
                    kind
                };
                out.push((path, FileMeta { rel, krate: krate.to_string(), kind }));
            }
            Ok(())
        };

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<fs::DirEntry> =
            fs::read_dir(&crates_dir)?.collect::<io::Result<_>>()?;
        members.sort_by_key(|e| e.file_name());
        for m in members {
            if !m.file_type()?.is_dir() {
                continue;
            }
            let name = m.file_name().to_string_lossy().into_owned();
            push_tree(&mut out, m.path().join("src"), &name, FileKind::Lib)?;
            push_tree(&mut out, m.path().join("examples"), &name, FileKind::Example)?;
        }
    }
    push_tree(&mut out, root.join("src"), "spacea", FileKind::Lib)?;
    push_tree(&mut out, root.join("examples"), "spacea", FileKind::Example)?;
    Ok(out)
}

/// Scans every workspace source file under `root` once; the scans feed
/// both the per-file rules and the call-graph pass.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<(FileMeta, scanner::ScanOutput)>> {
    let mut out = Vec::new();
    for (path, meta) in collect_files(root)? {
        let src = fs::read_to_string(&path)?;
        out.push((meta, scanner::scan(&src)));
    }
    Ok(out)
}

/// Builds the deterministic workspace call graph (the D5 substrate and the
/// `--graph`/`--why` export) from pre-scanned files.
pub fn build_graph(scans: &[(FileMeta, scanner::ScanOutput)]) -> graph::CallGraph {
    graph::CallGraph::build(scans)
}

/// Lints every workspace source file under `root` against the production
/// metric registry: the per-file rules (D1–D4, R1, S1) plus the
/// graph-level transitive-taint rule (D5). Violations come back sorted by
/// `(file, line, rule)`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let scans = scan_workspace(root)?;
    Ok(lint_scans(&scans))
}

/// The I/O-free core of [`lint_workspace`]: per-file rules plus D5 over
/// pre-scanned files.
pub fn lint_scans(scans: &[(FileMeta, scanner::ScanOutput)]) -> Vec<Violation> {
    let metrics = known_metrics();
    let mut violations = Vec::new();
    let mut allows: BTreeMap<String, Vec<scanner::Allow>> = BTreeMap::new();
    for (meta, scan) in scans {
        violations.extend(rules::check_file(meta, scan, &metrics));
        allows.insert(meta.rel.clone(), scan.allows.clone());
    }
    let call_graph = graph::CallGraph::build(scans);
    violations.extend(graph::check_taint(&call_graph, &allows));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_nonempty_and_known() {
        let metrics = known_metrics();
        assert!(metrics.len() >= 9);
        assert!(metrics.contains(&("tsv", "bytes")));
    }

    #[test]
    fn workspace_walk_finds_this_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("workspace walk");
        assert!(files.iter().any(|(_, m)| m.rel == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|(_, m)| m.krate == "sim"));
        assert!(files.iter().all(|(_, m)| !m.rel.starts_with("vendor/")));
        assert!(files.iter().all(|(_, m)| !m.rel.contains("/tests/")));
        // Sorted and duplicate-free: required for stable baselines.
        let rels: Vec<&str> = files.iter().map(|(_, m)| m.rel.as_str()).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(rels.len(), sorted.len());
    }

    #[test]
    fn bin_files_are_classified() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("workspace walk");
        for (_, m) in &files {
            if m.rel.contains("/src/bin/") {
                assert_eq!(m.kind, rules::FileKind::Bin, "{}", m.rel);
            }
        }
    }

    #[test]
    fn workspace_graph_has_the_pdes_roots() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let scans = scan_workspace(&root).expect("workspace scan");
        let g = build_graph(&scans);
        assert!(!g.defs.is_empty());

        // Machine::run is a root.
        let runs = g.find("Machine::run");
        assert!(!runs.is_empty(), "Machine::run must exist in the graph");
        assert!(runs.iter().any(|id| g.roots.contains(id)), "Machine::run must be a root");

        // The event-queue engines are roots (trait decl + >=2 impls).
        let desqueue_roots = g
            .roots
            .iter()
            .filter(|&&id| g.defs[id].trait_name.as_deref() == Some("DesQueue"))
            .count();
        assert!(desqueue_roots >= 2, "expected DesQueue impl roots, got {desqueue_roots}");

        // The Backend executors are roots (>=4 impls: spacea/gpu/cpu/hbm).
        let backend_roots = g
            .roots
            .iter()
            .filter(|&&id| {
                g.defs[id].trait_name.as_deref() == Some("Backend") && g.defs[id].name == "run"
            })
            .count();
        assert!(backend_roots >= 4, "expected Backend::run roots, got {backend_roots}");
    }

    #[test]
    fn workspace_graph_chains_are_complete() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let scans = scan_workspace(&root).expect("workspace scan");
        let g = build_graph(&scans);
        // A known event-loop symbol is reachable with a chain that starts
        // at a root and ends at the symbol itself.
        let ids = g.find("EventQueue::schedule");
        assert!(!ids.is_empty(), "EventQueue::schedule must exist");
        let reachable =
            ids.iter().copied().find(|&id| g.reachable(id)).expect("schedule must be reachable");
        let chain = g.chain_to(reachable).expect("chain");
        assert_eq!(chain.last().map(String::as_str), Some("EventQueue::schedule"));
        let first = g.find(&chain[0]);
        assert!(
            first.iter().any(|id| g.roots.contains(id)),
            "chain must start at a root: {chain:?}"
        );
    }

    #[test]
    fn workspace_lint_is_deterministic_across_runs() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = lint_workspace(&root).expect("lint");
        let b = lint_workspace(&root).expect("lint");
        assert_eq!(a, b);
    }
}
