//! The ratcheting baseline: pre-existing debt, committed and only shrinking.
//!
//! A baseline is a JSON file mapping `(rule, file)` to a violation count.
//! Keying on counts rather than line numbers keeps the file stable under
//! unrelated edits (adding a line above an old unwrap must not fail CI)
//! while still catching every *new* violation: a check fails as soon as any
//! `(rule, file)` count exceeds its baselined value, or a violation appears
//! in a file with no baseline entry. [`compare`] implements the CI ratchet:
//! the committed baseline may never grow between revisions.

use crate::rules::Violation;
use spacea_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format marker written into every baseline file.
pub const SCHEMA: &str = "spacea-lint-baseline-v1";

/// A committed (or freshly scanned) violation census.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule name, file)` → violation count. Sorted, so serialization is
    /// byte-stable.
    pub entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// Builds a baseline from a scan's violations.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for v in violations {
            *entries.entry((v.rule.name().to_string(), v.file.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Total violation count across all entries.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// The baselined count for `(rule, file)`.
    pub fn count(&self, rule: &str, file: &str) -> u64 {
        self.entries.get(&(rule.to_string(), file.to_string())).copied().unwrap_or(0)
    }

    /// Serializes to the committed JSON format (sorted entries, trailing
    /// newline, byte-stable for identical censuses).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"total\": {},", self.total());
        let _ = writeln!(out, "  \"entries\": [");
        let n = self.entries.len();
        for (i, ((rule, file), count)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"count\": {}}}{}",
                json::escape(rule),
                json::escape(file),
                count,
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a baseline document produced by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        match root.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unknown baseline schema {other:?}")),
            None => return Err("missing \"schema\" field".into()),
        }
        let list = root.get("entries").and_then(Value::as_arr).ok_or("missing \"entries\"")?;
        let mut entries = BTreeMap::new();
        for (i, e) in list.iter().enumerate() {
            let rule = e
                .get("rule")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"rule\""))?;
            let file = e
                .get("file")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"file\""))?;
            let count = e
                .get("count")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("entry {i}: missing \"count\""))?;
            if count < 1.0 || count != count.trunc() {
                return Err(format!("entry {i}: count must be a positive integer"));
            }
            if entries.insert((rule.to_string(), file.to_string()), count as u64).is_some() {
                return Err(format!("entry {i}: duplicate key ({rule}, {file})"));
            }
        }
        let parsed = Baseline { entries };
        if let Some(total) = root.get("total").and_then(Value::as_num) {
            if total as u64 != parsed.total() {
                return Err(format!(
                    "total {} does not match the sum of entries ({})",
                    total,
                    parsed.total()
                ));
            }
        }
        Ok(parsed)
    }
}

/// The verdict of checking a scan against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Violations beyond the baselined count, grouped per `(rule, file)`:
    /// `(rule, file, current, baselined)`. Any entry fails the check.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// Baseline entries whose current count shrank (or vanished):
    /// `(rule, file, current, baselined)`. Informational — run
    /// `--update-baseline` to ratchet them down.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl CheckReport {
    /// True when no `(rule, file)` count grew past its baseline.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Checks `current` violations against `baseline`.
pub fn check_against(current: &[Violation], baseline: &Baseline) -> CheckReport {
    let now = Baseline::from_violations(current);
    let mut report = CheckReport::default();
    for (key, &count) in &now.entries {
        let base = baseline.entries.get(key).copied().unwrap_or(0);
        if count > base {
            report.regressions.push((key.0.clone(), key.1.clone(), count, base));
        }
    }
    for (key, &base) in &baseline.entries {
        let count = now.entries.get(key).copied().unwrap_or(0);
        if count < base {
            report.stale.push((key.0.clone(), key.1.clone(), count, base));
        }
    }
    report
}

/// The CI ratchet: `new` may not grow relative to `old` — no new `(rule,
/// file)` keys, no per-key count increases, no total increase. Returns the
/// violated constraints.
pub fn compare(old: &Baseline, new: &Baseline) -> Vec<String> {
    let mut problems = Vec::new();
    for (key, &count) in &new.entries {
        match old.entries.get(key) {
            None => problems
                .push(format!("new baseline entry ({}, {}) with count {count}", key.0, key.1)),
            Some(&base) if count > base => problems
                .push(format!("baseline entry ({}, {}) grew {base} -> {count}", key.0, key.1)),
            Some(_) => {}
        }
    }
    if new.total() > old.total() {
        problems.push(format!("baseline total grew {} -> {}", old.total(), new.total()));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn v(rule: RuleId, file: &str, line: u32) -> Violation {
        Violation { rule, file: file.into(), line, what: "x".into() }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let vs = vec![
            v(RuleId::R1, "crates/a/src/lib.rs", 3),
            v(RuleId::R1, "crates/a/src/lib.rs", 9),
            v(RuleId::D1, "crates/b/src/lib.rs", 1),
        ];
        let b = Baseline::from_violations(&vs);
        assert_eq!(b.total(), 3);
        assert_eq!(b.count("R1", "crates/a/src/lib.rs"), 2);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        // Byte-stable: same census, same serialization.
        assert_eq!(parsed.to_json(), b.to_json());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"schema\": \"wrong\", \"entries\": []}").is_err());
        let bad_total = format!(
            "{{\"schema\": \"{SCHEMA}\", \"total\": 9, \"entries\": [{{\"rule\": \"R1\", \"file\": \"f\", \"count\": 1}}]}}"
        );
        assert!(Baseline::parse(&bad_total).is_err());
        let dup = format!(
            "{{\"schema\": \"{SCHEMA}\", \"entries\": [{{\"rule\": \"R1\", \"file\": \"f\", \"count\": 1}}, {{\"rule\": \"R1\", \"file\": \"f\", \"count\": 2}}]}}"
        );
        assert!(Baseline::parse(&dup).is_err());
    }

    #[test]
    fn check_flags_only_counts_beyond_baseline() {
        let base = Baseline::from_violations(&[v(RuleId::R1, "f.rs", 1), v(RuleId::R1, "f.rs", 2)]);
        // Same count, different lines: still covered (line churn tolerated).
        let moved = [v(RuleId::R1, "f.rs", 10), v(RuleId::R1, "f.rs", 20)];
        assert!(check_against(&moved, &base).ok());
        // One extra in the same file: regression.
        let extra = [v(RuleId::R1, "f.rs", 1), v(RuleId::R1, "f.rs", 2), v(RuleId::R1, "f.rs", 3)];
        let report = check_against(&extra, &base);
        assert!(!report.ok());
        assert_eq!(report.regressions, vec![("R1".into(), "f.rs".into(), 3, 2)]);
        // A new file is a regression even with an empty current file list.
        let fresh = [v(RuleId::D1, "g.rs", 1)];
        assert!(!check_against(&fresh, &base).ok());
    }

    #[test]
    fn check_reports_shrunk_entries_as_stale() {
        let base = Baseline::from_violations(&[v(RuleId::R1, "f.rs", 1), v(RuleId::R1, "f.rs", 2)]);
        let report = check_against(&[v(RuleId::R1, "f.rs", 1)], &base);
        assert!(report.ok());
        assert_eq!(report.stale, vec![("R1".into(), "f.rs".into(), 1, 2)]);
    }

    #[test]
    fn ratchet_rejects_growth() {
        let old = Baseline::from_violations(&[v(RuleId::R1, "f.rs", 1), v(RuleId::R1, "f.rs", 2)]);
        let shrunk = Baseline::from_violations(&[v(RuleId::R1, "f.rs", 1)]);
        assert!(compare(&old, &shrunk).is_empty());
        assert!(compare(&old, &old).is_empty());
        let grown = Baseline::from_violations(&[
            v(RuleId::R1, "f.rs", 1),
            v(RuleId::R1, "f.rs", 2),
            v(RuleId::R1, "f.rs", 3),
        ]);
        assert!(!compare(&old, &grown).is_empty());
        let new_file =
            Baseline::from_violations(&[v(RuleId::R1, "f.rs", 1), v(RuleId::D1, "g.rs", 1)]);
        assert!(!compare(&old, &new_file).is_empty());
    }
}
