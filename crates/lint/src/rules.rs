//! The rule engine: walks a scanned token stream and reports violations.
//!
//! Four repo-specific invariants are enforced (see [`RuleId::explain`] for
//! the contributor-facing docs):
//!
//! - **D1** — no hash-ordered collections in the deterministic crates,
//! - **D2** — no wall clock / ambient randomness outside supervision code,
//! - **D3** — no shared-mutable-state primitives in the PDES crates,
//! - **D4** — no raw float iterator reductions in the PDES crates (order
//!   must be canonical: route through `spacea_matrix::reduce`),
//! - **D5** — transitive taint: nothing reachable from the event-loop
//!   roots touches I/O, wall clock, RNG, or threads (see [`crate::graph`]),
//! - **R1** — no `unwrap`/`expect`/`panic!` family in non-test library code,
//! - **S1** — every `MetricKey` constructed in `arch`/`sim` must name a
//!   metric in the registered set ([`spacea_obs::registry`]).
//!
//! Test code never counts: `#[cfg(test)]` / `#[test]` items are masked out
//! of the token stream, and `tests/` / `benches/` directories are not
//! walked at all. Remaining deliberate sites carry
//! `// lint:allow(RULE) reason` or live in the ratcheting baseline.

use crate::scanner::{is_float_literal, Allow, ScanOutput, TokKind, Token};

/// The rules `spacea-lint` knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Hash-ordered collections in deterministic crates.
    D1,
    /// Wall clock / ambient randomness outside supervision code.
    D2,
    /// Shared-mutable-state primitives in PDES crates.
    D3,
    /// Raw float iterator reductions in PDES crates.
    D4,
    /// Transitive taint from the event-loop roots.
    D5,
    /// `unwrap`/`expect`/`panic!` family in non-test code.
    R1,
    /// Unregistered metric-key names.
    S1,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] =
        [RuleId::D1, RuleId::D2, RuleId::D3, RuleId::D4, RuleId::D5, RuleId::R1, RuleId::S1];

    /// The rule's short name as used in reports, baselines, and
    /// `lint:allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::R1 => "R1",
            RuleId::S1 => "S1",
        }
    }

    /// Parses a rule name (case-sensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line summary for report headers.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => "hash-ordered collection in a deterministic crate",
            RuleId::D2 => "wall clock or ambient randomness outside supervision code",
            RuleId::D3 => "shared-mutable-state primitive in a PDES crate",
            RuleId::D4 => "raw float reduction outside the canonical helper",
            RuleId::D5 => "event-loop-reachable function touches the outside world",
            RuleId::R1 => "unwrap/expect/panic in non-test code",
            RuleId::S1 => "metric key not in the registered set",
        }
    }

    /// The contributor-facing documentation shown by `--explain`.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1: no HashMap/HashSet in deterministic crates\n\
                 \n\
                 The simulator's results must be bit-reproducible: the harness's\n\
                 content-addressed cache, shard merges, and fault injection all assume\n\
                 two runs of the same JobSpec produce identical cycles and stats.\n\
                 HashMap/HashSet iteration order is randomized per process, so any\n\
                 iteration over them inside the model can silently reorder event\n\
                 processing or float accumulation. Statically deciding whether a given\n\
                 map is ever iterated is not tractable for a token scanner, so the rule\n\
                 bans the types outright in the deterministic crates (sim, arch,\n\
                 mapping, matrix, model).\n\
                 \n\
                 Fix: use BTreeMap/BTreeSet, or collect-and-sort before iterating.\n\
                 If a hash container is genuinely order-safe (e.g. only get/insert,\n\
                 never iterated), suppress with `// lint:allow(D1) reason`."
            }
            RuleId::D2 => {
                "D2: no wall clock or ambient randomness outside harness/bench/serve\n\
                 \n\
                 Instant::now / SystemTime::now / thread_rng / from_entropy make a\n\
                 run's outputs depend on when and where it executed. Inside the model\n\
                 and solver crates that breaks reproducibility; timing and entropy\n\
                 belong to the supervision layer (harness, bench) and the service\n\
                 layer (serve), which measure real runs, own seeds, and time real\n\
                 sockets and queues.\n\
                 \n\
                 Fix: thread simulated time (Cycle) or an explicit seed through the\n\
                 API instead. Deliberate host-time measurements outside the exempt\n\
                 crates carry `// lint:allow(D2) reason`."
            }
            RuleId::D3 => {
                "D3: no shared-mutable-state primitives in PDES crates\n\
                 \n\
                 The parallel simulation engine will run per-vault step code on\n\
                 worker threads with conservative lookahead; that is only safe if\n\
                 the deterministic crates (sim, arch, mapping, matrix, model,\n\
                 backend, gpu, graph) are free of shared mutable state by\n\
                 construction. The rule bans the primitives that create it:\n\
                 `static mut`, Mutex/RwLock/RefCell/Condvar, Atomic* types,\n\
                 thread::spawn, and mpsc/sync_channel channels. Interior\n\
                 mutability also hides ordering effects the determinism suite\n\
                 cannot see.\n\
                 \n\
                 Fix: pass &mut state explicitly, or move the concurrency into\n\
                 the supervision layer (harness, serve). A genuinely local,\n\
                 never-shared cell carries `// lint:allow(D3) reason`."
            }
            RuleId::D4 => {
                "D4: no raw f32/f64 iterator reductions in PDES crates\n\
                 \n\
                 Float addition is not associative: `.sum()`, `.product()`, and\n\
                 float-seeded `.fold(..)` produce answers that depend on the\n\
                 iteration order of the container feeding them. Under the\n\
                 parallel engine, per-vault partial results arrive in worker\n\
                 order, so every float reduction in the deterministic crates\n\
                 must go through spacea_matrix::reduce, whose helpers fix a\n\
                 canonical (index-ascending) order regardless of source.\n\
                 \n\
                 Fix: route through spacea_matrix::reduce::{sum_f64, sum_f32,\n\
                 product_f64, max_f64, min_f64} (crates/matrix/src/reduce.rs is\n\
                 the one file exempt from this rule). Integer reductions are\n\
                 exact and out of scope. A provably order-free site carries\n\
                 `// lint:allow(D4) reason`."
            }
            RuleId::D5 => {
                "D5: transitive taint from the event-loop roots\n\
                 \n\
                 Everything reachable from Machine::run, the DesQueue impls, and\n\
                 the Backend::run impls must be a pure function of its inputs:\n\
                 no file or socket I/O, no wall clock, no ambient RNG, no console\n\
                 output, no thread APIs. D2 checks sites; D5 checks *reachability*\n\
                 — a pure-looking helper that calls into fs::read is caught here,\n\
                 with the full call chain from the root in the report. The graph\n\
                 is name-resolved (methods over-approximate to every same-named\n\
                 impl fn), so it errs toward reporting; see DESIGN.md for the\n\
                 resolution limits.\n\
                 \n\
                 Fix: hoist the effect out of the reachable path (load files\n\
                 before run, write artifacts after), or break the false edge by\n\
                 renaming the colliding method. A deliberate boundary crossing\n\
                 carries `// lint:allow(D5) reason` on the sink line."
            }
            RuleId::R1 => {
                "R1: no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!\n\
                 in non-test code\n\
                 \n\
                 A panic in library code kills the whole sweep worker and poisons\n\
                 shared locks; the harness already has SimError/Result plumbing and a\n\
                 crash-isolated supervisor, so recoverable errors must flow through\n\
                 Result. Test modules (#[cfg(test)], #[test]) are exempt, and so are\n\
                 examples/ demos, whose error reporting *is* a loud panic.\n\
                 \n\
                 Fix: propagate with `?` and a SimError (or a local error enum).\n\
                 By-construction invariants that genuinely cannot fail carry\n\
                 `// lint:allow(R1) reason`, and pre-existing debt lives in\n\
                 lint-baseline.json, which only ratchets downward."
            }
            RuleId::S1 => {
                "S1: every metric key must be registered\n\
                 \n\
                 Stat-ledger conservation: gauges are registered under\n\
                 MetricKey::{vault,global}(component, .., name) string pairs. A typo\n\
                 in either string silently creates a new ledger entry and drops the\n\
                 sample from every consumer keyed on the real name (timeline export,\n\
                 observability assertions). The rule cross-checks each literal\n\
                 (component, name) pair constructed in arch/sim against the\n\
                 registered-metric table in spacea_obs::registry::METRICS.\n\
                 \n\
                 Fix: correct the typo, or add the new metric to METRICS in the same\n\
                 change that introduces the gauge."
            }
        }
    }
}

/// Where a file lives, for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/`.
    Lib,
    /// A `src/bin/*.rs` binary.
    Bin,
    /// An `examples/*.rs` program.
    Example,
}

/// Per-file metadata the rules scope on.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path, `/`-separated (stable across platforms).
    pub rel: String,
    /// Short crate name: the `crates/<name>` directory, or `spacea` for the
    /// root crate.
    pub krate: String,
    /// File role.
    pub kind: FileKind,
}

/// Crates whose model state must be iteration-order deterministic (D1).
pub const DETERMINISTIC_CRATES: [&str; 5] = ["sim", "arch", "mapping", "matrix", "model"];

/// Crates the parallel-simulation readiness rules (D3/D4) and the call
/// graph behind D5 cover: the D1 set plus the executors layered on it.
/// The Cargo dependency direction already prevents these crates from
/// calling into the supervision layer, so the graph is closed over them.
pub const PDES_CRATES: [&str; 8] =
    ["sim", "arch", "mapping", "matrix", "model", "backend", "gpu", "graph"];

/// The one file exempt from D4: the canonical-order reduction helpers
/// themselves.
pub const D4_HELPER_FILE: &str = "crates/matrix/src/reduce.rs";

/// Crates allowed to read the wall clock / ambient entropy (D2 exempt).
///
/// `serve` is exempt for the same reason `harness` is: it lives at the
/// boundary with the real world. Socket read timeouts, queue-wait
/// telemetry, and the batcher's gather window are *measurements of host
/// time*, not simulation inputs — every simulated result it returns is
/// still a pure function of (matrix, vector, mapping, hw).
pub const SUPERVISION_CRATES: [&str; 3] = ["harness", "bench", "serve"];

/// Crates whose `MetricKey` constructions S1 cross-checks.
///
/// `serve` mints its own per-request gauge keys (`serve/queue-wait-us`
/// etc.), so it is in scope: a typo'd key there would silently vanish
/// from dashboards instead of failing the build. `backend` publishes the
/// HBM model's per-channel gauges (`hbm/channel-bytes` etc.) and is held
/// to the same registry.
pub const LEDGER_CRATES: [&str; 4] = ["arch", "sim", "serve", "backend"];

/// One rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Short description of the offending token(s).
    pub what: String,
}

/// Marks every token that belongs to a test region: an item annotated
/// `#[test]` / `#[cfg(test)]` (including everything nested inside, so one
/// `#[cfg(test)] mod tests { … }` masks the whole module).
pub fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = test_attr_end(tokens, i) {
            // Skip any further attributes stacked on the same item.
            let mut j = attr_end;
            loop {
                if tokens.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('#'))
                    && tokens.get(j + 1).map(|t| &t.kind) == Some(&TokKind::Punct('['))
                {
                    j = match matching(tokens, j + 1, '[', ']') {
                        Some(end) => end + 1,
                        None => tokens.len(),
                    };
                } else {
                    break;
                }
            }
            // The item body runs to the matching `}` of its first top-level
            // brace, or to a `;` for body-less items.
            let mut depth = 0i32;
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 && tokens[k].kind == TokKind::Punct('}') {
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let end = k.min(tokens.len().saturating_sub(1));
            for flag in masked.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    masked
}

/// If tokens starting at `i` form a `#[test]`-like attribute (`#[test]`,
/// `#[cfg(test)]`, `#[tokio::test]`, `#[cfg(all(test, …))]`), returns the
/// index one past the closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.kind != TokKind::Punct('#') || tokens.get(i + 1)?.kind != TokKind::Punct('[')
    {
        return None;
    }
    let close = matching(tokens, i + 1, '[', ']')?;
    let inner = &tokens[i + 2..close];
    // Path segments of the attribute head, before any `(` arguments.
    let mut head: Vec<&str> = Vec::new();
    for t in inner {
        match &t.kind {
            TokKind::Punct('(') => break,
            TokKind::Ident(n) => head.push(n.as_str()),
            _ => {}
        }
    }
    let has_ident =
        |name: &str| inner.iter().any(|t| matches!(&t.kind, TokKind::Ident(n) if n == name));
    let is_test = if head.first() == Some(&"cfg") {
        // #[cfg(test)] / #[cfg(all(test, …))] — but NOT #[cfg(not(test))],
        // which marks code compiled only *outside* tests.
        has_ident("test") && !has_ident("not")
    } else {
        // #[test], #[tokio::test], #[should_panic(…)].
        matches!(head.last(), Some(&"test") | Some(&"should_panic"))
    };
    if is_test {
        Some(close + 1)
    } else {
        None
    }
}

/// Index of the token closing the bracket opened at `open_ix` (whose kind
/// must be `Punct(open)`).
fn matching(tokens: &[Token], open_ix: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open_ix) {
        if t.kind == TokKind::Punct(open) {
            depth += 1;
        } else if t.kind == TokKind::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

/// True when `allows` suppresses `rule` at `line` (directive on the same
/// line or the line directly above).
fn allowed(allows: &[Allow], rule: RuleId, line: u32) -> bool {
    allows
        .iter()
        .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule.name()))
}

/// Runs every applicable rule over one scanned file.
///
/// `known_metrics` is the S1 registry: `(component, name)` pairs considered
/// registered. Pass [`spacea_obs::registry::METRICS`] in production; tests
/// inject reduced tables to provoke violations.
pub fn check_file(
    meta: &FileMeta,
    scan: &ScanOutput,
    known_metrics: &[(&str, &str)],
) -> Vec<Violation> {
    let tokens = &scan.tokens;
    let masked = mark_test_regions(tokens);
    let mut out = Vec::new();

    let d1_applies =
        meta.kind == FileKind::Lib && DETERMINISTIC_CRATES.contains(&meta.krate.as_str());
    let d2_applies =
        meta.kind != FileKind::Example && !SUPERVISION_CRATES.contains(&meta.krate.as_str());
    let d3_applies = meta.kind != FileKind::Example && PDES_CRATES.contains(&meta.krate.as_str());
    let d4_applies = d3_applies && meta.rel != D4_HELPER_FILE;
    let r1_applies = meta.kind != FileKind::Example;
    let s1_applies = LEDGER_CRATES.contains(&meta.krate.as_str());

    let mut push = |allows: &[Allow], rule: RuleId, line: u32, what: String| {
        if !allowed(allows, rule, line) {
            out.push(Violation { rule, file: meta.rel.clone(), line, what });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if masked[i] {
            continue;
        }
        let TokKind::Ident(name) = &t.kind else { continue };
        match name.as_str() {
            // D1: the hash-ordered types themselves. Iteration is not
            // statically decidable for a token scanner, so the types are
            // banned outright in deterministic crates (see --explain D1).
            "HashMap" | "HashSet" if d1_applies => {
                push(&scan.allows, RuleId::D1, t.line, name.clone());
            }
            // D2: wall clock.
            "Instant" | "SystemTime"
                if d2_applies
                    && punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("now") =>
            {
                push(&scan.allows, RuleId::D2, t.line, format!("{name}::now"));
            }
            // D2: ambient randomness.
            "thread_rng" | "from_entropy" if d2_applies => {
                push(&scan.allows, RuleId::D2, t.line, name.clone());
            }
            // D3: shared-mutable-state primitives.
            "static" if d3_applies && ident_at(tokens, i + 1) == Some("mut") => {
                push(&scan.allows, RuleId::D3, t.line, "static mut".into());
            }
            "Mutex" | "RwLock" | "RefCell" | "Condvar" if d3_applies => {
                push(&scan.allows, RuleId::D3, t.line, name.clone());
            }
            "mpsc" | "sync_channel" if d3_applies => {
                push(&scan.allows, RuleId::D3, t.line, format!("{name} channel"));
            }
            "thread"
                if d3_applies
                    && punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("spawn") =>
            {
                push(&scan.allows, RuleId::D3, t.line, "thread::spawn".into());
            }
            // D4: `.sum::<f32|f64>()` / `.product::<f32|f64>()` turbofish.
            "sum" | "product"
                if d4_applies
                    && i > 0
                    && punct_at(tokens, i - 1, '.')
                    && punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && punct_at(tokens, i + 3, '<')
                    && matches!(ident_at(tokens, i + 4), Some("f32") | Some("f64"))
                    && punct_at(tokens, i + 5, '>')
                    && punct_at(tokens, i + 6, '(') =>
            {
                let ty = ident_at(tokens, i + 4).unwrap_or_default();
                push(&scan.allows, RuleId::D4, t.line, format!(".{name}::<{ty}>()"));
            }
            // D4: `.fold(<float seed>, ..)` — the seed type fixes the
            // accumulator type, so a float literal (or `f64::NEG_INFINITY`
            // style constant) marks a float reduction.
            "fold"
                if d4_applies
                    && i > 0
                    && punct_at(tokens, i - 1, '.')
                    && punct_at(tokens, i + 1, '(') =>
            {
                let mut k = i + 2;
                if punct_at(tokens, k, '-') {
                    k += 1;
                }
                let float_seed = match tokens.get(k).map(|t| &t.kind) {
                    Some(TokKind::Num(text)) => is_float_literal(text),
                    Some(TokKind::Ident(ty)) if ty == "f32" || ty == "f64" => {
                        punct_at(tokens, k + 1, ':') && punct_at(tokens, k + 2, ':')
                    }
                    _ => false,
                };
                if float_seed {
                    push(&scan.allows, RuleId::D4, t.line, ".fold(<float seed>, ..)".into());
                }
            }
            // R1: `.unwrap(` / `.expect(` method calls.
            "unwrap" | "expect"
                if r1_applies
                    && i > 0
                    && punct_at(tokens, i - 1, '.')
                    && punct_at(tokens, i + 1, '(') =>
            {
                push(&scan.allows, RuleId::R1, t.line, format!(".{name}()"));
            }
            // R1: panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented"
                if r1_applies && punct_at(tokens, i + 1, '!') =>
            {
                push(&scan.allows, RuleId::R1, t.line, format!("{name}!"));
            }
            // S1: MetricKey::vault("comp", .., "name") literal pairs.
            "MetricKey"
                if s1_applies
                    && punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && matches!(ident_at(tokens, i + 3), Some("vault") | Some("global"))
                    && punct_at(tokens, i + 4, '(') =>
            {
                if let Some(close) = matching(tokens, i + 4, '(', ')') {
                    let strings: Vec<&str> = tokens[i + 5..close]
                        .iter()
                        .filter_map(|t| match &t.kind {
                            TokKind::Str(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect();
                    // Need both the component and the name as literals;
                    // dynamic keys are out of scope for a static pass.
                    if strings.len() >= 2 {
                        let pair = (strings[0], strings[strings.len() - 1]);
                        if !known_metrics.contains(&pair) {
                            push(
                                &scan.allows,
                                RuleId::S1,
                                t.line,
                                format!("(\"{}\", \"{}\")", pair.0, pair.1),
                            );
                        }
                    }
                }
            }
            n if d3_applies && n.starts_with("Atomic") => {
                push(&scan.allows, RuleId::D3, t.line, n.to_string());
            }
            _ => {}
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn meta(rel: &str, krate: &str, kind: FileKind) -> FileMeta {
        FileMeta { rel: rel.into(), krate: krate.into(), kind }
    }

    fn run(krate: &str, kind: FileKind, src: &str) -> Vec<Violation> {
        run_with_metrics(krate, kind, src, &[("noc", "utilization")])
    }

    fn run_with_metrics(
        krate: &str,
        kind: FileKind,
        src: &str,
        metrics: &[(&str, &str)],
    ) -> Vec<Violation> {
        check_file(&meta("x.rs", krate, kind), &scan(src), metrics)
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }";
        let v = run("sim", FileKind::Lib, src);
        assert_eq!(v.iter().filter(|v| v.rule == RuleId::D1).count(), 3);
        assert!(run("harness", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D1));
        assert!(run("obs", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D1));
    }

    #[test]
    fn d1_skips_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n #[test]\n fn t() { let _ = HashSet::<u32>::new(); }\n}";
        assert!(run("arch", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn d2_fires_outside_supervision_crates_only() {
        let src = "fn f() -> u128 { let t = std::time::Instant::now(); t.elapsed().as_nanos() }";
        let v = run("core", FileKind::Lib, src);
        assert_eq!(v.iter().filter(|v| v.rule == RuleId::D2).count(), 1);
        assert!(run("harness", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D2));
        assert!(run("bench", FileKind::Bin, src).iter().all(|v| v.rule != RuleId::D2));
        // Examples measure wall time legitimately (user-facing demos).
        assert!(run("core", FileKind::Example, src).iter().all(|v| v.rule != RuleId::D2));
    }

    #[test]
    fn d2_exempts_the_serve_crate() {
        // Pins the exemption rationale: serve times real sockets and queues
        // (read timeouts, queue-wait telemetry, the gather window), which
        // are measurements of host time, not simulation inputs.
        let src = "fn f() -> u128 { let t = std::time::Instant::now(); t.elapsed().as_nanos() }";
        assert!(run("serve", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D2));
        assert!(SUPERVISION_CRATES.contains(&"serve"), "exemption list must name serve");
    }

    #[test]
    fn s1_fires_in_the_serve_crate() {
        // serve mints its own gauge keys, so S1 must cover it: a key the
        // registry does not know is a violation there.
        let src = "fn f() { let _ = MetricKey::global(\"serve\", \"queue-wait-us\"); }";
        let known = [("serve", "queue-wait-us")];
        assert!(run_with_metrics("serve", FileKind::Lib, src, &known)
            .iter()
            .all(|v| v.rule != RuleId::S1));
        let typo = "fn f() { let _ = MetricKey::global(\"serve\", \"queue-wait-usec\"); }";
        let v = run_with_metrics("serve", FileKind::Lib, typo, &known);
        assert_eq!(v.iter().filter(|v| v.rule == RuleId::S1).count(), 1);
    }

    #[test]
    fn d2_requires_the_now_call() {
        let src = "fn f(i: std::time::Instant) -> std::time::Instant { i }";
        assert!(run("core", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D2));
    }

    #[test]
    fn r1_method_calls_and_macros() {
        let src =
            "fn f(x: Option<u32>) -> u32 { let a = x.unwrap(); if a > 3 { panic!(\"no\"); } a }";
        let v = run("graph", FileKind::Lib, src);
        let rules: Vec<&str> = v.iter().map(|v| v.what.as_str()).collect();
        assert_eq!(rules, vec![".unwrap()", "panic!"]);
    }

    #[test]
    fn r1_ignores_lookalikes() {
        // unwrap_or / expect_err are different idents; a bare `panic` ident
        // without `!` (e.g. std::panic::catch_unwind paths) is not a macro.
        let src = "fn f(x: Option<u32>) -> u32 { std::panic::catch_unwind(|| x.unwrap_or(0)).unwrap_or(1) }";
        assert!(run("graph", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn r1_exempts_examples() {
        let src = "fn main() { std::fs::read(\"x\").expect(\"demo input\"); }";
        assert!(run("core", FileKind::Example, src).is_empty());
        assert_eq!(run("core", FileKind::Bin, src).len(), 1);
    }

    #[test]
    fn r1_skips_test_fns_but_not_neighbors() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\nfn live(x: Option<u32>) { x.unwrap(); }";
        let v = run("core", FileKind::Lib, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn should_panic_attr_masks_its_fn() {
        let src = "#[should_panic(expected = \"boom\")]\nfn t() { panic!(\"boom\"); }";
        assert!(run("core", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn s1_catches_a_counter_typo() {
        // Deliberately injected typo: "tvs" for "tsv".
        let src =
            "fn arm(s: &mut S) { s.register(MetricKey::global(\"tvs\", \"bytes\"), |_| 0.0); }";
        let v = run_with_metrics("arch", FileKind::Lib, src, &[("tsv", "bytes")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::S1);
        assert!(v[0].what.contains("tvs"), "{}", v[0].what);
    }

    #[test]
    fn s1_name_typo_in_vault_form() {
        let src =
            "fn arm(s: &mut S, v: usize) { s.register(MetricKey::vault(\"ldq\", v, \"l1-ocupancy\"), |_| 0.0); }";
        let v = run_with_metrics("sim", FileKind::Lib, src, &[("ldq", "l1-occupancy")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::S1);
    }

    #[test]
    fn s1_accepts_registered_pairs_and_other_crates() {
        let src = "fn arm(s: &mut S) { s.register(MetricKey::global(\"noc\", \"utilization\"), |_| 0.0); }";
        assert!(run("arch", FileKind::Lib, src).is_empty());
        let typo =
            "fn arm(s: &mut S) { s.register(MetricKey::global(\"tvs\", \"bytes\"), |_| 0.0); }";
        // Outside arch/sim the ledger rule does not apply.
        assert!(run_with_metrics("harness", FileKind::Lib, typo, &[("tsv", "bytes")]).is_empty());
    }

    #[test]
    fn s1_skips_dynamic_components() {
        let src =
            "fn arm(s: &mut S, c: &str) { s.register(MetricKey::global(c, \"bytes\"), |_| 0.0); }";
        assert!(run_with_metrics("arch", FileKind::Lib, src, &[("tsv", "bytes")]).is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(R1) by construction";
        assert!(run("core", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "// lint:allow(R1) by construction\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run("core", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn allow_names_only_its_rule() {
        let src = "// lint:allow(D1) wrong rule\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let v = run("core", FileKind::Lib, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::R1);
    }

    #[test]
    fn allow_two_lines_above_does_not_reach() {
        let src = "// lint:allow(R1) too far\n\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run("core", FileKind::Lib, src).len(), 1);
    }

    #[test]
    fn d3_fires_on_shared_state_primitives_in_pdes_crates() {
        let src = "use std::sync::Mutex;\n\
                   static mut GLOBAL: u32 = 0;\n\
                   fn f() { let _ = std::sync::atomic::AtomicUsize::new(0); }\n\
                   fn g() { let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); }\n\
                   fn h() { let _ = std::thread::spawn(|| 1); }";
        let v = run("backend", FileKind::Lib, src);
        let whats: Vec<&str> =
            v.iter().filter(|v| v.rule == RuleId::D3).map(|v| v.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["Mutex", "static mut", "AtomicUsize", "mpsc channel", "thread::spawn"],
            "{v:?}"
        );
        // Supervision crates own their concurrency.
        assert!(run("serve", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D3));
        assert!(run("harness", FileKind::Lib, src).iter().all(|v| v.rule != RuleId::D3));
    }

    #[test]
    fn d3_covers_the_executor_crates_d1_does_not() {
        let src = "fn f() { let _ = std::cell::RefCell::new(0u32); }";
        for krate in ["gpu", "graph", "backend", "sim"] {
            let v = run(krate, FileKind::Lib, src);
            assert_eq!(v.iter().filter(|v| v.rule == RuleId::D3).count(), 1, "{krate}");
        }
    }

    #[test]
    fn d3_respects_allow_and_test_masking() {
        let src = "// lint:allow(D3) local, never shared\nfn f() { let _ = std::cell::RefCell::new(0u32); }";
        assert!(run("sim", FileKind::Lib, src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; fn t() { let _ = Mutex::new(0); } }";
        assert!(run("sim", FileKind::Lib, test_src).is_empty());
    }

    #[test]
    fn d4_fires_on_float_turbofish_reductions() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
                   fn g(xs: &[f32]) -> f32 { xs.iter().product::<f32>() }\n\
                   fn h(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }";
        let v = run("model", FileKind::Lib, src);
        let whats: Vec<&str> =
            v.iter().filter(|v| v.rule == RuleId::D4).map(|v| v.what.as_str()).collect();
        assert_eq!(whats, vec![".sum::<f64>()", ".product::<f32>()"], "{v:?}");
    }

    #[test]
    fn d4_fires_on_float_seeded_folds_only() {
        let float = "fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }";
        assert_eq!(run("model", FileKind::Lib, float).len(), 1);
        let negative = "fn f(xs: &[f64]) -> f64 { xs.iter().fold(-1.5, f64::max) }";
        assert_eq!(run("model", FileKind::Lib, negative).len(), 1);
        let constant =
            "fn f(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }";
        assert_eq!(run("model", FileKind::Lib, constant).len(), 1);
        let integer = "fn f(xs: &[u64]) -> u64 { xs.iter().fold(0u64, |a, b| a + b) }";
        assert!(run("model", FileKind::Lib, integer).is_empty());
    }

    #[test]
    fn d4_exempts_the_canonical_helper_file() {
        let src = "pub fn sum_f64(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        let v = check_file(
            &meta(D4_HELPER_FILE, "matrix", FileKind::Lib),
            &scan(src),
            &[("noc", "utilization")],
        );
        assert!(v.is_empty(), "{v:?}");
        // The same code anywhere else in the crate is a violation.
        assert_eq!(run("matrix", FileKind::Lib, src).len(), 1);
    }

    #[test]
    fn explain_exists_for_all_rules() {
        for r in RuleId::ALL {
            assert!(r.explain().contains(r.name()));
            assert!(RuleId::parse(r.name()) == Some(r));
        }
        assert!(RuleId::parse("Z9").is_none());
    }
}
