//! The `spacea-lint` command-line driver.
//!
//! ```text
//! spacea-lint --check [--baseline FILE] [--root DIR]   # lint the workspace
//! spacea-lint --update-baseline FILE [--root DIR]      # rewrite the baseline
//! spacea-lint --compare-baselines OLD NEW              # CI ratchet guard
//! spacea-lint --graph dot|json [--root DIR]            # export the call graph
//! spacea-lint --why SYMBOL [--root DIR]                # trace a call chain
//! spacea-lint --explain RULE                           # contributor docs
//! spacea-lint --list                                   # enumerate rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations / ratchet failure, `2` usage or
//! I/O error.

use spacea_lint::baseline::{self, Baseline};
use spacea_lint::rules::RuleId;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
spacea-lint: determinism & robustness static analysis for the SpaceA workspace

USAGE:
  spacea-lint --check [--baseline FILE] [--root DIR]
  spacea-lint --update-baseline FILE [--root DIR]
  spacea-lint --compare-baselines OLD NEW
  spacea-lint --graph dot|json [--root DIR]
  spacea-lint --why SYMBOL [--root DIR]
  spacea-lint --explain RULE
  spacea-lint --list

Rules: D1 D2 D3 D4 D5 R1 S1 (see --explain). Suppress a deliberate site
inline with `// lint:allow(RULE) reason` on the offending line or the line
above; carry pre-existing debt in a committed baseline, which CI only lets
shrink.

--graph exports the deterministic workspace call graph (the D5 substrate)
as GraphViz DOT or JSON on stdout. --why SYMBOL (`name`, `Type::name`, or
`module::name`) prints, for every matching function, whether it is
reachable from the PDES roots (Machine::run, the DesQueue impls, the
Backend::run impls) and the full call chain when it is.";

enum Mode {
    Check { baseline: Option<PathBuf> },
    Update { baseline: PathBuf },
    Compare { old: PathBuf, new: PathBuf },
    Graph { format: String },
    Why { symbol: String },
    Explain { rule: String },
    List,
}

struct Args {
    root: PathBuf,
    mode: Mode,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut mode: Option<Mode> = None;
    let mut it = std::env::args().skip(1);
    let set = |m: Mode, mode: &mut Option<Mode>| -> Result<(), String> {
        if mode.is_some() {
            return Err("more than one mode flag given".into());
        }
        *mode = Some(m);
        Ok(())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => set(Mode::Check { baseline: None }, &mut mode)?,
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a FILE")?;
                match mode {
                    Some(Mode::Check { ref mut baseline }) => *baseline = Some(file.into()),
                    _ => return Err("--baseline only applies after --check".into()),
                }
            }
            "--update-baseline" => {
                let file = it.next().ok_or("--update-baseline needs a FILE")?;
                set(Mode::Update { baseline: file.into() }, &mut mode)?;
            }
            "--compare-baselines" => {
                let old = it.next().ok_or("--compare-baselines needs OLD NEW")?;
                let new = it.next().ok_or("--compare-baselines needs OLD NEW")?;
                set(Mode::Compare { old: old.into(), new: new.into() }, &mut mode)?;
            }
            "--graph" => {
                let format = it.next().ok_or("--graph needs a FORMAT (dot|json)")?;
                if format != "dot" && format != "json" {
                    return Err(format!("--graph FORMAT must be dot or json, got {format:?}"));
                }
                set(Mode::Graph { format }, &mut mode)?;
            }
            "--why" => {
                let symbol = it.next().ok_or("--why needs a SYMBOL")?;
                set(Mode::Why { symbol }, &mut mode)?;
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a RULE")?;
                set(Mode::Explain { rule }, &mut mode)?;
            }
            "--list" => set(Mode::List, &mut mode)?,
            "--root" => root = it.next().ok_or("--root needs a DIR")?.into(),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let mode = mode.ok_or("no mode given")?;
    Ok(Args { root, mode })
}

fn run(args: Args) -> Result<bool, String> {
    match args.mode {
        Mode::List => {
            for r in RuleId::ALL {
                println!("{}  {}", r.name(), r.summary());
            }
            Ok(true)
        }
        Mode::Explain { rule } => {
            let r = RuleId::parse(&rule)
                .ok_or_else(|| format!("unknown rule {rule:?} (try --list)"))?;
            println!("{}", r.explain());
            Ok(true)
        }
        Mode::Graph { format } => {
            let scans = spacea_lint::scan_workspace(&args.root).map_err(|e| e.to_string())?;
            let g = spacea_lint::build_graph(&scans);
            if format == "dot" {
                print!("{}", g.to_dot());
            } else {
                print!("{}", g.to_json());
            }
            Ok(true)
        }
        Mode::Why { symbol } => {
            let scans = spacea_lint::scan_workspace(&args.root).map_err(|e| e.to_string())?;
            let g = spacea_lint::build_graph(&scans);
            let ids = g.find(&symbol);
            if ids.is_empty() {
                return Err(format!(
                    "no function named {symbol:?} in the graphed crates (try Type::name)"
                ));
            }
            for id in ids {
                let d = &g.defs[id];
                println!("{} ({}:{})", d.qualified(), d.file, d.line);
                if g.roots.contains(&id) {
                    println!("  PDES root");
                }
                match g.chain_to(id) {
                    Some(chain) => println!("  reachable: {}", chain.join(" -> ")),
                    None => println!("  not reachable from any PDES root"),
                }
                for sink in &g.sinks[id] {
                    println!("  sink at line {}: {}", sink.line, sink.what);
                }
            }
            Ok(true)
        }
        Mode::Compare { old, new } => {
            let load = |p: &PathBuf| -> Result<Baseline, String> {
                let text = fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
            };
            let problems = baseline::compare(&load(&old)?, &load(&new)?);
            for p in &problems {
                eprintln!("ratchet: {p}");
            }
            if problems.is_empty() {
                println!(
                    "ratchet ok: baseline total {} -> {}",
                    load(&old)?.total(),
                    load(&new)?.total()
                );
            }
            Ok(problems.is_empty())
        }
        Mode::Update { baseline: path } => {
            let violations = spacea_lint::lint_workspace(&args.root).map_err(|e| e.to_string())?;
            let b = Baseline::from_violations(&violations);
            fs::write(&path, b.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "wrote {} ({} entries, {} violations)",
                path.display(),
                b.entries.len(),
                b.total()
            );
            Ok(true)
        }
        Mode::Check { baseline: path } => {
            let violations = spacea_lint::lint_workspace(&args.root).map_err(|e| e.to_string())?;
            let base = match &path {
                Some(p) => {
                    let text =
                        fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
                    Baseline::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
                }
                None => Baseline::default(),
            };
            let report = baseline::check_against(&violations, &base);
            for (rule, file, current, baselined) in &report.regressions {
                eprintln!("{rule} {file}: {current} violation(s), baseline allows {baselined}:");
                for v in violations.iter().filter(|v| v.rule.name() == rule && &v.file == file) {
                    eprintln!("  {}:{}: {} [{}]", v.file, v.line, v.what, rule);
                }
            }
            for (rule, file, current, baselined) in &report.stale {
                println!(
                    "note: stale baseline entry ({rule}, {file}): {baselined} baselined, {current} remain — run --update-baseline"
                );
            }
            let baselined: u64 = violations.len() as u64
                - report.regressions.iter().map(|(_, _, c, b)| c - b).sum::<u64>();
            if report.ok() {
                println!(
                    "spacea-lint: ok ({} violation(s), all baselined; {} baseline entries)",
                    baselined,
                    base.entries.len()
                );
            } else {
                eprintln!(
                    "spacea-lint: FAIL ({} new violation(s) beyond the baseline)",
                    report.regressions.iter().map(|(_, _, c, b)| c - b).sum::<u64>()
                );
                eprintln!("fix them, suppress with `// lint:allow(RULE) reason`, or see --explain");
            }
            Ok(report.ok())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
