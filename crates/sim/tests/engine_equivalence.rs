//! Calendar-queue vs reference-heap equivalence: arbitrary schedules must
//! produce bitwise-identical delivery streams from both engines.
//!
//! The calendar queue ([`EventQueue`]) replaced the `BinaryHeap` engine
//! (kept verbatim as [`reference::HeapQueue`]). Its correctness contract is
//! "observably identical": same pop stream, same `drain_cycle` batches,
//! same clock positions — including the tricky regions the wheel layout
//! creates (same-cycle bursts inside one bucket, far-future events routed
//! through the overflow tree and migrated back, past schedules clamped to
//! now). These tests drive both engines in lockstep through arbitrary
//! operation sequences and compare every observable.

use proptest::prelude::*;
use spacea_sim::engine::reference::HeapQueue;
use spacea_sim::engine::EventQueue;
use spacea_sim::workload::{run_workload, standard_workloads};

/// One step of an interleaved schedule/deliver sequence, decoded from a
/// generated `(selector, at, payload)` triple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule `payload` at absolute cycle `at`. Because the clock only
    /// moves forward, late ops with small `at` exercise the past-clamp
    /// path; large `at` values land beyond the 4096-bucket wheel horizon
    /// and exercise the overflow tree.
    Schedule { at: u64, payload: u32 },
    /// Pop one event.
    Pop,
    /// Drain the whole next cycle as a batch; for every drained event with
    /// an odd payload, schedule a follow-up *at the drained cycle* — the
    /// same-cycle re-entry pattern the machine's drain loop produces.
    Drain,
}

/// Weighted decode: half schedules (so queues actually fill up), the rest
/// split between pops and drains.
fn decode(selector: u8, at: u64, payload: u32) -> Op {
    match selector % 8 {
        0..=3 => Op::Schedule { at, payload },
        4 | 5 => Op::Pop,
        _ => Op::Drain,
    }
}

/// Applies one op to both engines and asserts every observable matches.
fn step(op: Op, cal: &mut EventQueue<u32>, heap: &mut HeapQueue<u32>) {
    match op {
        Op::Schedule { at, payload } => {
            cal.schedule(at, payload);
            heap.schedule(at, payload);
        }
        Op::Pop => {
            assert_eq!(cal.pop(), heap.pop(), "pop streams diverged");
        }
        Op::Drain => {
            let (mut cb, mut hb) = (Vec::new(), Vec::new());
            let (ct, ht) = (cal.drain_cycle(&mut cb), heap.drain_cycle(&mut hb));
            assert_eq!(ct, ht, "drain cycles diverged");
            assert_eq!(cb, hb, "drain batches diverged at cycle {ct:?}");
            if let Some(t) = ct {
                for &p in cb.iter().filter(|&&p| p % 2 == 1) {
                    // Same-cycle follow-up: must be delivered at cycle t,
                    // after everything drained above, by both engines.
                    cal.schedule(t, p.wrapping_mul(31));
                    heap.schedule(t, p.wrapping_mul(31));
                }
            }
        }
    }
    assert_eq!(cal.len(), heap.len(), "pending counts diverged");
    assert_eq!(cal.peek_time(), heap.peek_time(), "peek times diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn calendar_matches_heap_on_arbitrary_schedules(
        ops in proptest::collection::vec((any::<u8>(), 0u64..20_000, any::<u32>()), 1..400)
    ) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (selector, at, payload) in ops {
            step(decode(selector, at, payload), &mut cal, &mut heap);
        }
        // Drain both to empty: the tails must agree too.
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h, "tail pop streams diverged");
            if c.is_none() {
                break;
            }
        }
        cal.check_counters();
    }

    #[test]
    fn same_cycle_bursts_preserve_fifo_order(
        burst in proptest::collection::vec(any::<u32>(), 1..200),
        at in 0u64..10_000
    ) {
        // All events land in one bucket; both engines must deliver them in
        // scheduling order (the seq tie-break), and one drain must take the
        // whole burst.
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        for &p in &burst {
            cal.schedule(at, p);
            heap.schedule(at, p);
        }
        let (mut cb, mut hb) = (Vec::new(), Vec::new());
        prop_assert_eq!(cal.drain_cycle(&mut cb), Some(at));
        prop_assert_eq!(heap.drain_cycle(&mut hb), Some(at));
        prop_assert_eq!(&cb, &burst, "calendar drain must be FIFO");
        prop_assert_eq!(&hb, &burst, "heap drain must be FIFO");
        prop_assert!(cal.is_empty() && heap.is_empty());
    }

    #[test]
    fn far_future_overflow_round_trips(
        near in proptest::collection::vec((0u64..4_000, any::<u32>()), 1..50),
        far in proptest::collection::vec((5_000u64..1_000_000, any::<u32>()), 1..50)
    ) {
        // Mix events inside the wheel horizon with events far beyond it
        // (overflow tree), then pop everything: the merged stream must
        // match the heap exactly, proving overflow migration preserves
        // both ordering and the FIFO tie-break.
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        for &(at, p) in near.iter().chain(&far) {
            cal.schedule(at, p);
            heap.schedule(at, p);
        }
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h, "overflow pop streams diverged");
            if c.is_none() {
                break;
            }
        }
    }
}

/// The `engine_bench` workload suite replays to identical results on both
/// engines — the same cross-check the benchmark performs, pinned as a test
/// so `cargo test` catches a divergence without running the bench.
#[test]
fn standard_workloads_agree_across_engines() {
    for w in standard_workloads() {
        let cal = run_workload(&w, &mut EventQueue::new());
        let heap = run_workload(&w, &mut HeapQueue::new());
        assert_eq!(cal, heap, "workload {} diverged between engines", w.name);
        assert!(cal.events > 0, "workload {} delivered nothing", w.name);
    }
}
