//! Property tests for the simulation substrate: each stateful component is
//! checked against a simple reference model under arbitrary operation
//! sequences.

use proptest::prelude::*;
use spacea_sim::cam::{Cam, CamConfig};
use spacea_sim::dram::{AccessKind, DramBank, DramTiming};
use spacea_sim::engine::EventQueue;
use spacea_sim::ldq::{LdqPush, LoadQueue};
use spacea_sim::link::Link;
use spacea_sim::noc::MeshNoc;

/// Reference LRU model for one CAM set: a vector ordered most-recent-first.
#[derive(Default)]
struct RefLru {
    entries: Vec<(u64, u32)>,
    ways: usize,
}

impl RefLru {
    fn lookup(&mut self, key: u64) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(self.entries[0].1)
    }

    fn insert(&mut self, key: u64, value: u32) {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.ways {
            self.entries.pop();
        }
        self.entries.insert(0, (key, value));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cam_matches_reference_lru(ops in proptest::collection::vec((0u64..24, any::<bool>(), any::<u32>()), 1..200)) {
        // Single-set CAM so every key collides: the hardest LRU case.
        let mut cam: Cam<u32> = Cam::new(CamConfig { sets: 1, ways: 4, way_bytes: 32 });
        let mut reference = RefLru { ways: 4, ..Default::default() };
        for (key, is_insert, value) in ops {
            if is_insert {
                cam.insert(key, value);
                reference.insert(key, value);
            } else {
                prop_assert_eq!(cam.lookup(key), reference.lookup(key), "key {}", key);
            }
        }
    }

    #[test]
    fn event_queue_is_a_stable_sort(events in proptest::collection::vec((0u64..1000, 0u32..1000), 0..300)) {
        let mut q = EventQueue::new();
        for &(t, payload) in &events {
            q.schedule(t, payload);
        }
        let mut expected: Vec<(u64, u32)> = events.clone();
        // Stable sort by time reproduces FIFO-within-cycle semantics.
        expected.sort_by_key(|&(t, _)| t);
        let drained: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn dram_bank_time_is_monotone(accesses in proptest::collection::vec((0u64..16, 1usize..300), 1..100)) {
        let mut bank = DramBank::new(DramTiming::default());
        let mut last = 0;
        for (row, bytes) in accesses {
            let done = bank.access(0, row, bytes, AccessKind::Read);
            prop_assert!(done >= last, "bank completion times must not go backwards");
            prop_assert!(done > 0);
            last = done;
        }
        let c = bank.counters();
        prop_assert!(c.activates >= 1, "the first access always activates");
    }

    #[test]
    fn ldq_waiters_conserved(ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..200)) {
        let mut ldq: LoadQueue<u32> = LoadQueue::new(8);
        let mut pushed = 0u64;
        let mut returned = 0u64;
        for (i, (key, complete)) in ops.into_iter().enumerate() {
            if complete {
                returned += ldq.complete(key).len() as u64;
            } else if ldq.push(key, i as u32) != LdqPush::Full {
                pushed += 1;
            }
        }
        // Drain everything still pending.
        for key in 0..16 {
            returned += ldq.complete(key).len() as u64;
        }
        prop_assert_eq!(pushed, returned, "no waiter may be lost or duplicated");
    }

    #[test]
    fn link_transfers_never_overlap(transfers in proptest::collection::vec((0u64..500, 1usize..100), 1..60)) {
        let mut link = Link::new_bus(3, 16);
        let mut prev_done = 0;
        for (earliest, bytes) in transfers {
            let done = link.transfer(earliest, bytes);
            prop_assert!(done >= prev_done, "bus transfers must serialize");
            prop_assert!(done >= earliest);
            prev_done = done;
        }
    }

    #[test]
    fn noc_accounts_every_byte(sends in proptest::collection::vec((0usize..16, 0usize..16, 1usize..100), 1..60)) {
        let mut noc = MeshNoc::new(4, 4, 2, 16);
        let mut bytes = 0u64;
        let mut byte_hops = 0u64;
        for (src, dst, sz) in sends {
            let arrive = noc.send(0, src, dst, sz);
            let hops = noc.hops(src, dst) as u64;
            bytes += sz as u64;
            byte_hops += sz as u64 * hops;
            if src == dst {
                prop_assert_eq!(arrive, 0);
            } else {
                prop_assert!(arrive >= hops * (2 + 1), "at least latency+ser per hop");
            }
        }
        prop_assert_eq!(noc.bytes(), bytes);
        prop_assert_eq!(noc.byte_hops(), byte_hops);
    }
}
