//! DRAM bank timing model.
//!
//! Section II-C: each memory bank reads or writes 256 bits per `tCCD` cycles
//! once the target row is in the row buffer; opening a row costs `tRAS`
//! cycles. The bank is a serial resource — a new access cannot begin until
//! the previous one finishes. This module models exactly that: open-row
//! tracking, activation latency, per-beat column access latency, and the
//! access counters the energy model consumes.

use crate::Cycle;

/// DRAM bank timing parameters, in cycles of the 1 GHz internal clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row activation latency: cycles from ACT until the row is usable in the
    /// row buffer (the paper's `tRAS` in Section III-B).
    pub t_ras: Cycle,
    /// Column access latency per 256-bit beat with an open row (`tCCD`,
    /// "as small as 4 cycles").
    pub t_ccd: Cycle,
    /// Precharge latency before a different row can be activated.
    pub t_rp: Cycle,
    /// Bytes transferred per beat (256 bits).
    pub beat_bytes: usize,
    /// Row buffer size in bytes (2 Kb = 256 B).
    pub row_bytes: usize,
}

impl Default for DramTiming {
    /// HMC-like defaults from the paper's configuration (Section V-A) and the
    /// HMC characterization study it cites.
    fn default() -> Self {
        DramTiming { t_ras: 27, t_ccd: 4, t_rp: 13, beat_bytes: 32, row_bytes: 256 }
    }
}

impl DramTiming {
    /// Beats needed to stream one full row buffer.
    pub fn beats_per_row(&self) -> usize {
        self.row_bytes.div_ceil(self.beat_bytes)
    }

    /// Cycles to stream `bytes` with an open row.
    pub fn burst_cycles(&self, bytes: usize) -> Cycle {
        (bytes.div_ceil(self.beat_bytes) as Cycle) * self.t_ccd
    }
}

/// Whether a bank access read or wrote the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read columns from the row buffer.
    Read,
    /// Write columns through the row buffer.
    Write,
}

/// Counters of bank activity, consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankCounters {
    /// Row activations (row-buffer misses).
    pub activates: u64,
    /// Row-buffer hits (access to the already-open row).
    pub row_hits: u64,
    /// 256-bit beats read.
    pub read_beats: u64,
    /// 256-bit beats written.
    pub write_beats: u64,
}

impl BankCounters {
    /// Total bytes read, given the beat width.
    pub fn read_bytes(&self, timing: &DramTiming) -> u64 {
        self.read_beats * timing.beat_bytes as u64
    }

    /// Total bytes written, given the beat width.
    pub fn write_bytes(&self, timing: &DramTiming) -> u64 {
        self.write_beats * timing.beat_bytes as u64
    }

    /// Row-buffer hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.activates + self.row_hits;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Timing state of one DRAM bank.
///
/// The bank serializes accesses: [`DramBank::access`] returns the completion
/// cycle of the request given the earliest cycle it could start, accounting
/// for a still-busy data bus, a row-buffer miss (precharge + activate), and
/// the burst length.
///
/// # Example
///
/// ```
/// use spacea_sim::dram::{AccessKind, DramBank, DramTiming};
///
/// let timing = DramTiming::default();
/// let mut bank = DramBank::new(timing);
/// // First access activates row 3 and streams a full row.
/// let done = bank.access(0, 3, timing.row_bytes, AccessKind::Read);
/// // Second access to the same row is a row-buffer hit.
/// let done2 = bank.access(done, 3, 32, AccessKind::Read);
/// assert_eq!(done2 - done, timing.t_ccd);
/// ```
#[derive(Debug, Clone)]
pub struct DramBank {
    timing: DramTiming,
    open_row: Option<u64>,
    busy_until: Cycle,
    busy_cycles: u64,
    counters: BankCounters,
}

impl DramBank {
    /// Creates an idle bank with no open row.
    pub fn new(timing: DramTiming) -> Self {
        DramBank {
            timing,
            open_row: None,
            busy_until: 0,
            busy_cycles: 0,
            counters: BankCounters::default(),
        }
    }

    /// The timing parameters this bank was built with.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Cycle at which the bank becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Activity counters accumulated so far.
    pub fn counters(&self) -> &BankCounters {
        &self.counters
    }

    /// Total cycles the bank spent servicing accesses (activation +
    /// precharge + burst). Utilization = `busy_cycles / elapsed`.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Performs an access of `bytes` bytes to DRAM row `row`, starting no
    /// earlier than `earliest`, and returns the completion cycle.
    ///
    /// A row-buffer miss pays precharge (if another row was open) plus
    /// activation; a hit streams immediately. `bytes` is rounded up to whole
    /// 256-bit beats.
    pub fn access(&mut self, earliest: Cycle, row: u64, bytes: usize, kind: AccessKind) -> Cycle {
        let start = earliest.max(self.busy_until);
        let mut t = start;
        match self.open_row {
            Some(open) if open == row => {
                self.counters.row_hits += 1;
            }
            Some(_) => {
                t += self.timing.t_rp + self.timing.t_ras;
                self.counters.activates += 1;
                self.open_row = Some(row);
            }
            None => {
                t += self.timing.t_ras;
                self.counters.activates += 1;
                self.open_row = Some(row);
            }
        }
        let beats = bytes.div_ceil(self.timing.beat_bytes) as u64;
        t += beats * self.timing.t_ccd;
        match kind {
            AccessKind::Read => self.counters.read_beats += beats,
            AccessKind::Write => self.counters.write_beats += beats,
        }
        self.busy_cycles += t - start;
        self.busy_until = t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::default()
    }

    #[test]
    fn first_access_activates() {
        let mut bank = DramBank::new(timing());
        let done = bank.access(0, 0, 32, AccessKind::Read);
        assert_eq!(done, timing().t_ras + timing().t_ccd);
        assert_eq!(bank.counters().activates, 1);
        assert_eq!(bank.counters().row_hits, 0);
    }

    #[test]
    fn row_hit_skips_activation() {
        let mut bank = DramBank::new(timing());
        let d1 = bank.access(0, 5, 32, AccessKind::Read);
        let d2 = bank.access(d1, 5, 32, AccessKind::Read);
        assert_eq!(d2 - d1, timing().t_ccd);
        assert_eq!(bank.counters().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut bank = DramBank::new(timing());
        let d1 = bank.access(0, 5, 32, AccessKind::Read);
        let d2 = bank.access(d1, 9, 32, AccessKind::Read);
        assert_eq!(d2 - d1, timing().t_rp + timing().t_ras + timing().t_ccd);
        assert_eq!(bank.counters().activates, 2);
        assert_eq!(bank.open_row(), Some(9));
    }

    #[test]
    fn bank_serializes_accesses() {
        let mut bank = DramBank::new(timing());
        let d1 = bank.access(0, 0, 256, AccessKind::Read);
        // Request arriving earlier than the bank frees must queue.
        let d2 = bank.access(0, 0, 32, AccessKind::Read);
        assert_eq!(d2, d1 + timing().t_ccd);
    }

    #[test]
    fn full_row_stream_takes_eight_beats() {
        let t = timing();
        assert_eq!(t.beats_per_row(), 8);
        let mut bank = DramBank::new(t);
        let done = bank.access(0, 0, t.row_bytes, AccessKind::Read);
        assert_eq!(done, t.t_ras + 8 * t.t_ccd);
        assert_eq!(bank.counters().read_beats, 8);
    }

    #[test]
    fn bandwidth_matches_paper() {
        // 256 bits / 4 cycles @ 1 GHz = 8 GB/s per bank (Section II-C).
        let t = timing();
        let bytes_per_cycle = t.beat_bytes as f64 / t.t_ccd as f64;
        assert!((bytes_per_cycle - 8.0).abs() < 1e-12);
    }

    #[test]
    fn write_counts_separately() {
        let mut bank = DramBank::new(timing());
        bank.access(0, 0, 64, AccessKind::Write);
        assert_eq!(bank.counters().write_beats, 2);
        assert_eq!(bank.counters().read_beats, 0);
        assert_eq!(bank.counters().write_bytes(&timing()), 64);
    }

    #[test]
    fn partial_beat_rounds_up() {
        let mut bank = DramBank::new(timing());
        bank.access(0, 0, 1, AccessKind::Read);
        assert_eq!(bank.counters().read_beats, 1);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = BankCounters::default();
        assert_eq!(c.hit_rate(), 0.0);
        c.activates = 1;
        c.row_hits = 3;
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }
}
