//! Set-associative content-addressable memory (CAM).
//!
//! SpaceA integrates an L1 CAM per bank group and an L2 CAM per vault
//! controller (Sections III-B and III-C) as key-value stores from input-vector
//! block index to block contents. Both levels share this implementation:
//! configurable set count, associativity and way size, with LRU replacement
//! inside a set.
//!
//! The paper's default configuration gives each way 32 bytes — four
//! double-precision elements of the input vector — so the CAM caches
//! *blocks* of `X`, and spatial locality across neighbouring column indices
//! turns into CAM hits.

use crate::stats::CamCounters;

/// Geometry of a CAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamConfig {
    /// Number of sets (paper defaults: 32 for L1, 2048 for L2).
    pub sets: usize,
    /// Ways per set (default 4).
    pub ways: usize,
    /// Bytes per way (default 32 B = 4 × f64 input-vector elements).
    pub way_bytes: usize,
}

impl CamConfig {
    /// The paper's default L1 CAM: 32 sets × 4 ways × 32 B = 4 KB.
    pub fn l1_default() -> Self {
        CamConfig { sets: 32, ways: 4, way_bytes: 32 }
    }

    /// The paper's default L2 CAM: 2048 sets × 4 ways × 32 B = 256 KB.
    pub fn l2_default() -> Self {
        CamConfig { sets: 2048, ways: 4, way_bytes: 32 }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.way_bytes
    }

    /// Vector elements (f64) per way.
    pub fn elements_per_way(&self) -> usize {
        self.way_bytes / 8
    }
}

#[derive(Debug, Clone, Copy)]
struct Way<V> {
    key: u64,
    value: V,
    /// Monotone timestamp for LRU ordering.
    last_use: u64,
}

/// A set-associative CAM with LRU replacement.
///
/// Keys are block indices (`u64`); values are the cached block payloads.
///
/// # Example
///
/// ```
/// use spacea_sim::cam::{Cam, CamConfig};
///
/// let mut cam: Cam<[f64; 4]> = Cam::new(CamConfig::l1_default());
/// assert!(cam.lookup(7).is_none());
/// cam.insert(7, [1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cam.lookup(7), Some([1.0, 2.0, 3.0, 4.0]));
/// ```
#[derive(Debug, Clone)]
pub struct Cam<V> {
    config: CamConfig,
    sets: Vec<Vec<Way<V>>>,
    tick: u64,
    counters: CamCounters,
}

impl<V: Copy> Cam<V> {
    /// Creates an empty CAM with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CamConfig) -> Self {
        assert!(config.sets > 0, "CAM needs at least one set");
        assert!(config.ways > 0, "CAM needs at least one way");
        Cam {
            config,
            sets: (0..config.sets).map(|_| Vec::with_capacity(config.ways)).collect(),
            tick: 0,
            counters: CamCounters::default(),
        }
    }

    /// The geometry this CAM was built with.
    pub fn config(&self) -> &CamConfig {
        &self.config
    }

    /// Hit/miss counters accumulated so far.
    pub fn counters(&self) -> &CamCounters {
        &self.counters
    }

    fn set_index(&self, key: u64) -> usize {
        (key % self.config.sets as u64) as usize
    }

    /// Searches for `key`, updating LRU state and hit/miss counters.
    pub fn lookup(&mut self, key: u64) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(key);
        match self.sets[set].iter_mut().find(|w| w.key == key) {
            Some(way) => {
                way.last_use = tick;
                self.counters.hits += 1;
                Some(way.value)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Searches for `key` without disturbing LRU order or counters (used by
    /// tests and by response paths that only need presence information).
    pub fn peek(&self, key: u64) -> Option<&V> {
        let set = self.set_index(key);
        self.sets[set].iter().find(|w| w.key == key).map(|w| &w.value)
    }

    /// Inserts or refreshes `key`, evicting the LRU way if the set is full.
    ///
    /// Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.tick += 1;
        let tick = self.tick;
        let set_ix = self.set_index(key);
        let ways = self.config.ways;
        let set = &mut self.sets[set_ix];
        self.counters.fills += 1;
        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.value = value;
            way.last_use = tick;
            return None;
        }
        if set.len() < ways {
            set.push(Way { key, value, last_use: tick });
            return None;
        }
        // The set is full (the non-full case returned above), so a victim
        // always exists; an empty set degrades to a plain insert.
        let Some(victim_ix) =
            set.iter().enumerate().min_by_key(|(_, w)| w.last_use).map(|(i, _)| i)
        else {
            set.push(Way { key, value, last_use: tick });
            return None;
        };
        let victim = set[victim_ix];
        set[victim_ix] = Way { key, value, last_use: tick };
        self.counters.evictions += 1;
        Some((victim.key, victim.value))
    }

    /// Removes every entry but keeps the counters.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of currently resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cam<u32> {
        Cam::new(CamConfig { sets: 2, ways: 2, way_bytes: 32 })
    }

    #[test]
    fn miss_then_hit() {
        let mut cam = tiny();
        assert_eq!(cam.lookup(4), None);
        cam.insert(4, 44);
        assert_eq!(cam.lookup(4), Some(44));
        assert_eq!(cam.counters().hits, 1);
        assert_eq!(cam.counters().misses, 1);
    }

    #[test]
    fn keys_map_to_sets_by_modulo() {
        let mut cam = tiny();
        // Keys 0 and 2 share set 0; keys 1 and 3 share set 1.
        cam.insert(0, 0);
        cam.insert(2, 2);
        cam.insert(1, 1);
        cam.insert(3, 3);
        assert_eq!(cam.len(), 4);
        // A fifth key in set 0 must evict.
        let evicted = cam.insert(4, 4);
        assert!(evicted.is_some());
        assert_eq!(cam.len(), 4);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cam = tiny();
        cam.insert(0, 10);
        cam.insert(2, 20);
        cam.lookup(0); // refresh key 0 → key 2 is now LRU
        let evicted = cam.insert(4, 40).expect("set full");
        assert_eq!(evicted, (2, 20));
        assert_eq!(cam.lookup(0), Some(10));
        assert_eq!(cam.lookup(4), Some(40));
    }

    #[test]
    fn insert_refreshes_existing() {
        let mut cam = tiny();
        cam.insert(0, 1);
        assert!(cam.insert(0, 2).is_none());
        assert_eq!(cam.lookup(0), Some(2));
        assert_eq!(cam.len(), 1);
    }

    #[test]
    fn peek_does_not_count() {
        let mut cam = tiny();
        cam.insert(0, 5);
        assert_eq!(cam.peek(0), Some(&5));
        assert_eq!(cam.peek(1), None);
        assert_eq!(cam.counters().hits, 0);
        assert_eq!(cam.counters().misses, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut cam = tiny();
        cam.insert(0, 5);
        cam.lookup(0);
        cam.clear();
        assert!(cam.is_empty());
        assert_eq!(cam.counters().hits, 1);
    }

    #[test]
    fn paper_default_capacities() {
        assert_eq!(CamConfig::l1_default().capacity_bytes(), 4 * 1024);
        assert_eq!(CamConfig::l2_default().capacity_bytes(), 256 * 1024);
        assert_eq!(CamConfig::l1_default().elements_per_way(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _: Cam<u8> = Cam::new(CamConfig { sets: 0, ways: 1, way_bytes: 8 });
    }
}
