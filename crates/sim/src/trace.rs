//! Bounded event tracing.
//!
//! One of three instrumentation layers approximating the detailed event
//! trace the paper's simulator logs (Section V-A): this module is the
//! *inspectable prefix* — a bounded log with a drop counter, so memory
//! stays predictable on billion-event runs while debugging and teaching
//! tools can replay what the machine did first. The `stats` module keeps
//! the whole-run aggregates that feed the energy model, and the
//! `spacea-obs` crate adds the time-resolved view: cycle-sampled gauge
//! series and Perfetto-loadable timelines covering the entire run.

/// A bounded prefix log of trace records.
///
/// Keeps the first `capacity` records pushed; later pushes only increment
/// the drop counter. A capacity of zero disables tracing with no per-push
/// allocation cost.
///
/// # Example
///
/// ```
/// use spacea_sim::trace::TraceLog;
///
/// let mut log = TraceLog::new(2);
/// log.push("a");
/// log.push("b");
/// log.push("c");
/// assert_eq!(log.records(), &["a", "b"]);
/// assert_eq!(log.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceLog<R> {
    records: Vec<R>,
    capacity: usize,
    dropped: u64,
}

impl<R> TraceLog<R> {
    /// Creates a log keeping at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog { records: Vec::with_capacity(capacity.min(1 << 20)), capacity, dropped: 0 }
    }

    /// Creates a disabled log (capacity zero).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether pushes are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Whether the log still has room.
    pub fn has_room(&self) -> bool {
        self.records.len() < self.capacity
    }

    /// Appends a record, or counts it as dropped when full/disabled.
    pub fn push(&mut self, record: R) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Appends the record produced by `f` only if there is room — use when
    /// building the record itself is expensive.
    pub fn push_with(&mut self, f: impl FnOnce() -> R) {
        if self.records.len() < self.capacity {
            self.records.push(f());
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded prefix.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Records not retained because the log was full or disabled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records offered (retained + dropped).
    pub fn offered(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }
}

impl<R> Default for TraceLog<R> {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_prefix_and_counts_drops() {
        let mut log = TraceLog::new(3);
        for i in 0..10 {
            log.push(i);
        }
        assert_eq!(log.records(), &[0, 1, 2]);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.offered(), 10);
    }

    #[test]
    fn disabled_log_drops_everything() {
        let mut log: TraceLog<u8> = TraceLog::disabled();
        assert!(!log.is_enabled());
        log.push(1);
        assert!(log.records().is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn push_with_skips_builder_when_full() {
        let mut log = TraceLog::new(1);
        log.push_with(|| 1);
        let mut called = false;
        log.push_with(|| {
            called = true;
            2
        });
        assert!(!called, "builder must not run when the log is full");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn has_room_tracks_capacity() {
        let mut log = TraceLog::new(1);
        assert!(log.has_room());
        log.push(());
        assert!(!log.has_room());
    }
}
