//! Load queues (LDQ) with request deduplication.
//!
//! Both CAM levels pair with a load queue (Sections III-B and III-C) whose
//! job is to "remove the duplication of data requests": when several
//! non-zeros (or several bank groups) need the same input-vector block, only
//! the first lookup sends a request downstream; later requestors are parked
//! as waiters and woken when the response arrives.
//!
//! The queues are fully associative with a fixed capacity (512 entries for
//! L1, 8192 for L2 in the default configuration). A full queue back-pressures
//! the requestor, which retries on its next scan — the same behaviour as the
//! paper's cyclic PE queue revisit.

use crate::stats::LdqCounters;
use std::collections::BTreeMap;

/// Outcome of pushing a request into a load queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdqPush {
    /// The key was not pending: a new downstream request must be sent.
    NewRequest,
    /// The key is already in flight: the waiter was parked, no new request.
    Deduplicated,
    /// The queue is full; the requestor must retry later.
    Full,
}

/// A fully-associative load queue tracking in-flight keys and their waiters.
///
/// `W` identifies a waiter (a PE queue slot, a bank-group id, a vault id…)
/// and is returned verbatim by [`LoadQueue::complete`].
///
/// # Example
///
/// ```
/// use spacea_sim::ldq::{LdqPush, LoadQueue};
///
/// let mut ldq: LoadQueue<&str> = LoadQueue::new(2);
/// assert_eq!(ldq.push(10, "pe0"), LdqPush::NewRequest);
/// assert_eq!(ldq.push(10, "pe1"), LdqPush::Deduplicated);
/// assert_eq!(ldq.complete(10), vec!["pe0", "pe1"]);
/// ```
#[derive(Debug, Clone)]
pub struct LoadQueue<W> {
    capacity: usize,
    pending: BTreeMap<u64, Entry<W>>,
    counters: LdqCounters,
}

/// One in-flight key: its waiters plus the simulated cycle it was admitted
/// at (the latency-probe timestamp behind the `queue-age` gauge).
#[derive(Debug, Clone)]
struct Entry<W> {
    since: u64,
    waiters: Vec<W>,
}

impl<W> LoadQueue<W> {
    /// Creates an empty queue holding at most `capacity` distinct keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "load queue capacity must be positive");
        LoadQueue { capacity, pending: BTreeMap::new(), counters: LdqCounters::default() }
    }

    /// Maximum number of distinct in-flight keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no keys are in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Returns `true` if `key` is currently in flight.
    pub fn contains(&self, key: u64) -> bool {
        self.pending.contains_key(&key)
    }

    /// Activity counters accumulated so far.
    pub fn counters(&self) -> &LdqCounters {
        &self.counters
    }

    /// Registers `waiter` for `key`.
    ///
    /// Returns [`LdqPush::NewRequest`] if this is the first request for the
    /// key (the caller must send it downstream), [`LdqPush::Deduplicated`] if
    /// the key was already pending, or [`LdqPush::Full`] if the queue cannot
    /// accept a new key (the waiter is *not* registered in that case).
    pub fn push(&mut self, key: u64, waiter: W) -> LdqPush {
        self.push_at(key, waiter, 0)
    }

    /// [`push`](LoadQueue::push) with an admission timestamp: `now` is the
    /// simulated cycle, recorded for new keys so
    /// [`oldest_age`](LoadQueue::oldest_age) can report how long the
    /// longest-waiting request has been in flight.
    pub fn push_at(&mut self, key: u64, waiter: W, now: u64) -> LdqPush {
        if let Some(entry) = self.pending.get_mut(&key) {
            entry.waiters.push(waiter);
            self.counters.deduplicated += 1;
            return LdqPush::Deduplicated;
        }
        if self.pending.len() >= self.capacity {
            self.counters.rejected_full += 1;
            return LdqPush::Full;
        }
        self.pending.insert(key, Entry { since: now, waiters: vec![waiter] });
        self.counters.new_requests += 1;
        LdqPush::NewRequest
    }

    /// Registers `waiter` for `key`, admitting the key even when the queue
    /// is over capacity.
    ///
    /// Structural overflow is counted in
    /// [`rejected_full`](crate::stats::LdqCounters::rejected_full) but the
    /// waiter is always parked; never returns [`LdqPush::Full`]. Used where
    /// dropping the request would require a retry loop the caller cannot
    /// express (the requestor has already moved on, as the non-blocking PE
    /// control unit does).
    pub fn push_forced(&mut self, key: u64, waiter: W) -> LdqPush {
        self.push_forced_at(key, waiter, 0)
    }

    /// [`push_forced`](LoadQueue::push_forced) with an admission timestamp
    /// (see [`push_at`](LoadQueue::push_at)).
    pub fn push_forced_at(&mut self, key: u64, waiter: W, now: u64) -> LdqPush {
        if let Some(entry) = self.pending.get_mut(&key) {
            entry.waiters.push(waiter);
            self.counters.deduplicated += 1;
            return LdqPush::Deduplicated;
        }
        if self.pending.len() >= self.capacity {
            self.counters.rejected_full += 1;
        }
        self.pending.insert(key, Entry { since: now, waiters: vec![waiter] });
        self.counters.new_requests += 1;
        LdqPush::NewRequest
    }

    /// Completes `key`, removing it and returning its waiters in arrival
    /// order. Returns an empty vector if the key was not pending.
    pub fn complete(&mut self, key: u64) -> Vec<W> {
        match self.pending.remove(&key) {
            Some(entry) => {
                self.counters.completed += 1;
                entry.waiters
            }
            None => Vec::new(),
        }
    }

    /// Age in cycles of the longest-waiting in-flight key at cycle `now`,
    /// or 0 when the queue is empty. A *growing* age under steady
    /// occupancy is the signature of a stuck (not merely deep) queue —
    /// the stall-diagnosis signal occupancy gauges cannot provide.
    pub fn oldest_age(&self, now: u64) -> u64 {
        self.pending.values().map(|e| now.saturating_sub(e.since)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_push_is_new_request() {
        let mut q: LoadQueue<u32> = LoadQueue::new(4);
        assert_eq!(q.push(1, 100), LdqPush::NewRequest);
        assert!(q.contains(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn duplicate_pushes_dedupe() {
        let mut q: LoadQueue<u32> = LoadQueue::new(4);
        q.push(1, 100);
        assert_eq!(q.push(1, 101), LdqPush::Deduplicated);
        assert_eq!(q.push(1, 102), LdqPush::Deduplicated);
        assert_eq!(q.len(), 1, "dedup must not consume capacity");
        assert_eq!(q.counters().deduplicated, 2);
    }

    #[test]
    fn complete_returns_waiters_in_order() {
        let mut q: LoadQueue<&str> = LoadQueue::new(4);
        q.push(9, "a");
        q.push(9, "b");
        assert_eq!(q.complete(9), vec!["a", "b"]);
        assert!(!q.contains(9));
        assert_eq!(q.complete(9), Vec::<&str>::new());
    }

    #[test]
    fn full_queue_rejects_new_keys_only() {
        let mut q: LoadQueue<u32> = LoadQueue::new(2);
        q.push(1, 0);
        q.push(2, 0);
        assert_eq!(q.push(3, 0), LdqPush::Full);
        // Existing keys still accept waiters when full.
        assert_eq!(q.push(1, 1), LdqPush::Deduplicated);
        assert_eq!(q.counters().rejected_full, 1);
    }

    #[test]
    fn completion_frees_capacity() {
        let mut q: LoadQueue<u32> = LoadQueue::new(1);
        q.push(1, 0);
        assert_eq!(q.push(2, 0), LdqPush::Full);
        q.complete(1);
        assert_eq!(q.push(2, 0), LdqPush::NewRequest);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LoadQueue<()> = LoadQueue::new(0);
    }

    #[test]
    fn oldest_age_tracks_the_longest_waiting_key() {
        let mut q: LoadQueue<u32> = LoadQueue::new(4);
        assert_eq!(q.oldest_age(100), 0, "empty queue has no age");
        q.push_at(1, 0, 10);
        q.push_at(2, 0, 30);
        assert_eq!(q.oldest_age(50), 40);
        // Deduplicated waiters do not reset the admission stamp.
        q.push_at(1, 1, 45);
        assert_eq!(q.oldest_age(50), 40);
        // Completing the oldest key leaves the younger one's age.
        q.complete(1);
        assert_eq!(q.oldest_age(50), 20);
        // Forced pushes stamp too.
        q.push_forced_at(3, 0, 48);
        assert_eq!(q.oldest_age(50), 20);
        q.complete(2);
        assert_eq!(q.oldest_age(50), 2);
    }

    #[test]
    fn push_forced_overflows_but_registers() {
        let mut q: LoadQueue<u32> = LoadQueue::new(1);
        assert_eq!(q.push_forced(1, 0), LdqPush::NewRequest);
        assert_eq!(q.push_forced(2, 0), LdqPush::NewRequest);
        assert_eq!(q.len(), 2, "forced push admits over capacity");
        assert_eq!(q.counters().rejected_full, 1);
        assert_eq!(q.complete(2), vec![0]);
    }
}
