//! Deterministic discrete-event engine: a bucketed calendar queue.
//!
//! The engine is intentionally policy-free: it orders `(cycle, event)` pairs
//! and hands them back either one at a time ([`EventQueue::pop`]) or as
//! whole same-cycle batches ([`EventQueue::drain_cycle`]). The architecture
//! model (the `spacea-arch` crate) owns all machine state and interprets the
//! events. Events scheduled for the same cycle are delivered in scheduling
//! (FIFO) order, which makes every simulation bit-for-bit reproducible.
//!
//! # Layout
//!
//! The queue is a timing wheel of [`WHEEL_BUCKETS`] one-cycle buckets
//! covering the near future `[now, now + WHEEL_BUCKETS)`, an occupancy
//! bitmap (one bit per bucket, scanned a 64-bucket word at a time), and a
//! sorted overflow tree for events beyond the horizon (watchdog-scale
//! timers, far-future retries, deeply backlogged banks). Scheduling and
//! popping inside the horizon are O(1) amortized — a push to a bucket deque
//! and a bitmap probe — versus the O(log n) sift of the previous
//! `BinaryHeap` engine (kept as [`reference::HeapQueue`], the oracle the
//! equivalence proptests and `engine_bench` compare against).
//!
//! # Tie-break contract
//!
//! Every scheduled event gets a monotonically increasing sequence number.
//! Within one cycle, events are delivered in sequence order — exactly the
//! order `schedule` was called — and an event scheduled *while* draining
//! cycle `t` for cycle `t` lands after everything already pending at `t`
//! (its sequence number is larger than all of theirs). This makes
//! [`EventQueue::drain_cycle`] observationally identical to a `pop` loop:
//! the batch boundary is invisible to the model.

use crate::Cycle;
use std::collections::{BTreeMap, VecDeque};

/// Buckets in the timing wheel (one cycle each, a power of two).
///
/// Sized to cover the common latency scale of the machine model (CAM/TSV
/// latencies, DRAM timings, NoC hop chains, the stall-retry bounce) without
/// touching the overflow tree; only genuinely far-future events (deeply
/// backlogged banks, fault-plan delays) pay the tree's O(log n).
pub const WHEEL_BUCKETS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;

/// The queue operations every engine implementation provides.
///
/// The heap-vs-calendar equivalence proptests and the `engine_bench`
/// workloads drive both [`EventQueue`] and [`reference::HeapQueue`] through
/// this trait, so a schedule replays identically on either engine.
pub trait DesQueue<E> {
    /// Schedules `event` at absolute cycle `at` (clamped to `now`).
    fn schedule(&mut self, at: Cycle, event: E);
    /// Pops the next event, advancing the clock to its cycle.
    fn pop(&mut self) -> Option<(Cycle, E)>;
    /// Moves every event pending at the next occupied cycle into `sink`
    /// (appending, in scheduling order) and returns that cycle.
    fn drain_cycle(&mut self, sink: &mut Vec<E>) -> Option<Cycle>;
    /// The cycle of the most recently delivered event.
    fn now(&self) -> Cycle;
    /// Number of events currently pending.
    fn len(&self) -> usize;
    /// Returns `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A deterministic calendar queue of timed events.
///
/// # Example
///
/// ```
/// use spacea_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "late");
/// q.schedule(1, "early");
/// assert_eq!(q.pop(), Some((1, "early")));
/// assert_eq!(q.now(), 1);
/// ```
///
/// Same-cycle batches can be drained whole; scheduling order is preserved
/// and follow-up events scheduled for the drained cycle surface on the next
/// drain of that cycle:
///
/// ```
/// use spacea_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(7, "a");
/// q.schedule(7, "b");
/// q.schedule(9, "c");
/// let mut batch = Vec::new();
/// assert_eq!(q.drain_cycle(&mut batch), Some(7));
/// assert_eq!(batch, vec!["a", "b"]);
/// batch.clear();
/// assert_eq!(q.drain_cycle(&mut batch), Some(9));
/// assert_eq!(batch, vec!["c"]);
/// ```
///
/// # Counter invariant
///
/// At every point in the queue's lifetime,
///
/// ```text
/// scheduled_count() − processed_count() == len()
/// ```
///
/// Every scheduled event is either still pending or has been delivered
/// exactly once — events are never dropped, duplicated, or conjured. Run
/// telemetry (the `spacea-harness` manifest) relies on this to report
/// events-processed counts that reconcile with queue occupancy; see
/// [`EventQueue::check_counters`] and the `counter_invariant_*` tests.
///
/// ```
/// use spacea_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(3, "a");
/// q.schedule(5, "b");
/// q.pop();
/// assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
/// q.check_counters(); // would panic if the invariant were violated
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// One deque per wheel bucket; bucket `c % WHEEL_BUCKETS` holds only
    /// events at cycle `c` (the horizon is shorter than the wheel, so two
    /// distinct pending cycles never share a bucket).
    wheel: Vec<VecDeque<(u64, E)>>,
    /// One occupancy bit per bucket, scanned 64 buckets per probe.
    occupied: [u64; WHEEL_WORDS],
    /// Events currently in the wheel.
    wheel_len: usize,
    /// Events beyond the horizon, keyed by cycle; each deque is in
    /// scheduling order. Invariant: every key is `>= now + WHEEL_BUCKETS`.
    overflow: BTreeMap<Cycle, VecDeque<(u64, E)>>,
    /// Events currently in the overflow tree.
    overflow_len: usize,
    seq: u64,
    now: Cycle,
    scheduled: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_BUCKETS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            wheel_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
            seq: 0,
            now: 0,
            scheduled: 0,
            processed: 0,
        }
    }

    /// The cycle of the most recently delivered event (0 before the first).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow_len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered over the queue's lifetime.
    pub fn processed_count(&self) -> u64 {
        self.processed
    }

    #[inline]
    fn bucket_of(at: Cycle) -> usize {
        (at % WHEEL_BUCKETS as Cycle) as usize
    }

    #[inline]
    fn set_bit(&mut self, bucket: usize) {
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
    }

    #[inline]
    fn clear_bit(&mut self, bucket: usize) {
        self.occupied[bucket / 64] &= !(1u64 << (bucket % 64));
    }

    /// Schedules `event` to fire at absolute cycle `at`.
    ///
    /// Scheduling in the past is clamped to `now`: a component reacting to an
    /// event at cycle `t` may trigger follow-up work "immediately", which
    /// lands at `t` and is delivered after all earlier-scheduled cycle-`t`
    /// events.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        if at - self.now < WHEEL_BUCKETS as Cycle {
            let bucket = Self::bucket_of(at);
            self.wheel[bucket].push_back((seq, event));
            self.set_bit(bucket);
            self.wheel_len += 1;
        } else {
            self.overflow.entry(at).or_default().push_back((seq, event));
            self.overflow_len += 1;
        }
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// The earliest occupied cycle in the wheel, scanning the occupancy
    /// bitmap from `now` forward (with wrap). `None` when the wheel is
    /// empty.
    fn next_wheel_cycle(&self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = Self::bucket_of(self.now);
        let mut word_ix = start / 64;
        // First probe masks off buckets before `now` within the word.
        let mut word = self.occupied[word_ix] & (!0u64 << (start % 64));
        for _ in 0..=WHEEL_WORDS {
            if word != 0 {
                let bucket = word_ix * 64 + word.trailing_zeros() as usize;
                let offset = (bucket + WHEEL_BUCKETS - start) % WHEEL_BUCKETS;
                return Some(self.now + offset as Cycle);
            }
            word_ix = (word_ix + 1) % WHEEL_WORDS;
            // On wrap-around the start word is re-probed unmasked: its low
            // bits map to cycles just under one full wheel ahead.
            word = self.occupied[word_ix];
        }
        None
    }

    /// Advances the clock to `to` and migrates every overflow entry that
    /// the move brought inside the horizon into the wheel. Called only with
    /// `to` at or before the earliest pending event, so migrated events are
    /// always strictly in the future.
    fn advance_to(&mut self, to: Cycle) {
        self.now = to;
        let horizon = to.saturating_add(WHEEL_BUCKETS as Cycle);
        while let Some((&at, _)) = self.overflow.first_key_value() {
            if at >= horizon {
                break;
            }
            let Some(mut events) = self.overflow.remove(&at) else { break };
            self.overflow_len -= events.len();
            self.wheel_len += events.len();
            let bucket = Self::bucket_of(at);
            debug_assert!(
                self.wheel[bucket].is_empty() || self.wheel[bucket].front().is_some(),
                "bucket holds one cycle at a time"
            );
            self.set_bit(bucket);
            self.wheel[bucket].append(&mut events);
        }
    }

    /// Positions the clock on the next occupied cycle, pulling from the
    /// overflow tree when the wheel is empty. Returns that cycle.
    fn seek_next(&mut self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            let (&at, _) = self.overflow.first_key_value()?;
            self.advance_to(at);
        }
        let next = self.next_wheel_cycle()?;
        if next > self.now {
            self.advance_to(next);
        }
        Some(next)
    }

    /// Pops the next event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let at = self.seek_next()?;
        let bucket = Self::bucket_of(at);
        let (_, event) = self.wheel[bucket].pop_front()?;
        if self.wheel[bucket].is_empty() {
            self.clear_bit(bucket);
        }
        self.wheel_len -= 1;
        self.processed += 1;
        Some((at, event))
    }

    /// Moves every event pending at the next occupied cycle into `sink`
    /// (appending, in scheduling order), advances the clock to that cycle,
    /// and returns it.
    ///
    /// Events scheduled *for the drained cycle* while the batch is being
    /// processed are not lost: they land in the (now empty) bucket and the
    /// next `drain_cycle` call returns the same cycle again with just those
    /// follow-ups — in exactly the order a `pop` loop would have delivered,
    /// since their sequence numbers exceed every drained event's.
    pub fn drain_cycle(&mut self, sink: &mut Vec<E>) -> Option<Cycle> {
        let at = self.seek_next()?;
        let bucket = Self::bucket_of(at);
        let batch = &mut self.wheel[bucket];
        let n = batch.len();
        sink.reserve(n);
        sink.extend(batch.drain(..).map(|(_, event)| event));
        self.clear_bit(bucket);
        self.wheel_len -= n;
        self.processed += n as u64;
        Some(at)
    }

    /// The cycle of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        match self.next_wheel_cycle() {
            Some(wheel_next) => Some(wheel_next),
            None => self.overflow.first_key_value().map(|(&at, _)| at),
        }
    }

    /// Asserts the counter invariant `scheduled − processed == len`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated, which would indicate a bug in
    /// the queue itself (events lost or double-delivered).
    pub fn check_counters(&self) {
        if let Err(msg) = self.try_check_counters() {
            // lint:allow(R1) documented panic; try_check_counters is the fallible twin
            panic!("{msg}");
        }
    }

    /// Checks the counter invariant `scheduled − processed == len`,
    /// returning the violation as a message instead of panicking — for
    /// callers (the machine's supervised run path) that surface it as a
    /// structured error.
    ///
    /// # Errors
    ///
    /// Returns a message naming all three counters when the invariant does
    /// not hold.
    pub fn try_check_counters(&self) -> Result<(), String> {
        if self.scheduled.checked_sub(self.processed) == Some(self.len() as u64) {
            Ok(())
        } else {
            Err(format!(
                "event-queue counter invariant violated: scheduled {} - processed {} != pending {}",
                self.scheduled,
                self.processed,
                self.len()
            ))
        }
    }
}

impl<E> DesQueue<E> for EventQueue<E> {
    fn schedule(&mut self, at: Cycle, event: E) {
        EventQueue::schedule(self, at, event);
    }
    fn pop(&mut self) -> Option<(Cycle, E)> {
        EventQueue::pop(self)
    }
    fn drain_cycle(&mut self, sink: &mut Vec<E>) -> Option<Cycle> {
        EventQueue::drain_cycle(self, sink)
    }
    fn now(&self) -> Cycle {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
}

pub mod reference {
    //! The previous `BinaryHeap`-backed engine, kept verbatim as the
    //! reference implementation: the heap-vs-calendar equivalence proptests
    //! replay arbitrary schedules on both engines and demand identical
    //! delivery, and `engine_bench` measures the calendar queue's speedup
    //! against this baseline.

    use super::DesQueue;
    use crate::Cycle;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key {
        at: Cycle,
        seq: u64,
    }

    /// Wrapper so the heap never compares payloads: ordering is fully
    /// determined by the key, and `E` needs no `Ord` bound.
    #[derive(Debug, Clone)]
    struct EventSlot<E>(E);

    impl<E> PartialEq for EventSlot<E> {
        fn eq(&self, _: &Self) -> bool {
            true
        }
    }
    impl<E> Eq for EventSlot<E> {}
    impl<E> PartialOrd for EventSlot<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for EventSlot<E> {
        fn cmp(&self, _: &Self) -> std::cmp::Ordering {
            std::cmp::Ordering::Equal
        }
    }

    /// The O(log n) binary-heap event queue (pre-calendar engine).
    #[derive(Debug, Clone)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<(Key, EventSlot<E>)>>,
        seq: u64,
        now: Cycle,
        scheduled: u64,
        processed: u64,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// Creates an empty queue at cycle 0.
        pub fn new() -> Self {
            HeapQueue { heap: BinaryHeap::new(), seq: 0, now: 0, scheduled: 0, processed: 0 }
        }

        /// The cycle of the most recently popped event.
        pub fn now(&self) -> Cycle {
            self.now
        }

        /// Number of events currently pending.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Returns `true` if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Total events scheduled over the queue's lifetime.
        pub fn scheduled_count(&self) -> u64 {
            self.scheduled
        }

        /// Total events popped over the queue's lifetime.
        pub fn processed_count(&self) -> u64 {
            self.processed
        }

        /// Schedules `event` at absolute cycle `at` (clamped to `now`).
        pub fn schedule(&mut self, at: Cycle, event: E) {
            let at = at.max(self.now);
            let key = Key { at, seq: self.seq };
            self.seq += 1;
            self.scheduled += 1;
            self.heap.push(Reverse((key, EventSlot(event))));
        }

        /// Pops the next event, advancing the clock to its cycle.
        pub fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse((key, EventSlot(ev))) = self.heap.pop()?;
            debug_assert!(key.at >= self.now, "event queue time went backwards");
            self.now = key.at;
            self.processed += 1;
            Some((key.at, ev))
        }

        /// Drains every event at the next pending cycle into `sink`
        /// (appending), returning that cycle — the batch API mirror.
        pub fn drain_cycle(&mut self, sink: &mut Vec<E>) -> Option<Cycle> {
            let (at, first) = self.pop()?;
            sink.push(first);
            while self.heap.peek().is_some_and(|Reverse((k, _))| k.at == at) {
                if let Some(Reverse((_, EventSlot(ev)))) = self.heap.pop() {
                    self.processed += 1;
                    sink.push(ev);
                }
            }
            Some(at)
        }

        /// The cycle of the next pending event without popping it.
        pub fn peek_time(&self) -> Option<Cycle> {
            self.heap.peek().map(|Reverse((k, _))| k.at)
        }
    }

    impl<E> DesQueue<E> for HeapQueue<E> {
        fn schedule(&mut self, at: Cycle, event: E) {
            HeapQueue::schedule(self, at, event);
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            HeapQueue::pop(self)
        }
        fn drain_cycle(&mut self, sink: &mut Vec<E>) -> Option<Cycle> {
            HeapQueue::drain_cycle(self, sink)
        }
        fn now(&self) -> Cycle {
            HeapQueue::now(self)
        }
        fn len(&self) -> usize {
            HeapQueue::len(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.pop();
        q.schedule(3, "late");
        assert_eq!(q.pop(), Some((10, "late")));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_after(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.processed_count(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counter_invariant_holds_throughout_lifetime() {
        let mut q = EventQueue::new();
        q.check_counters();
        for i in 0..50 {
            q.schedule(i % 7, i);
            q.check_counters();
            assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
        }
        while q.pop().is_some() {
            q.check_counters();
            assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
        }
        assert_eq!(q.scheduled_count(), 50);
        assert_eq!(q.processed_count(), 50);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn counter_invariant_survives_interleaving() {
        // Schedule-from-pop interleaving (the machine's actual usage
        // pattern): follow-up events created while draining.
        let mut q = EventQueue::new();
        q.schedule(0, 0u64);
        let mut processed = 0u64;
        while let Some((t, ev)) = q.pop() {
            processed += 1;
            if ev < 20 {
                q.schedule(t + 1, ev + 1);
                q.schedule(t + 2, ev + 2);
            }
            q.check_counters();
        }
        assert_eq!(q.processed_count(), processed);
        assert_eq!(q.scheduled_count(), processed, "drained queue: all scheduled were processed");
    }

    #[test]
    fn try_check_counters_reports_instead_of_panicking() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        assert!(q.try_check_counters().is_ok());
        q.pop();
        assert!(q.try_check_counters().is_ok());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(9, ());
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.now(), 0);
    }

    #[test]
    fn payload_needs_no_ord() {
        // f64 is not Ord; the queue must still work.
        let mut q = EventQueue::new();
        q.schedule(1, 2.5f64);
        assert_eq!(q.pop(), Some((1, 2.5)));
    }

    #[test]
    fn far_future_events_route_through_overflow_and_back() {
        let mut q = EventQueue::new();
        let far = WHEEL_BUCKETS as Cycle * 37 + 11;
        q.schedule(far, "far");
        q.schedule(2, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.now(), far);
        q.check_counters();
    }

    #[test]
    fn overflow_preserves_fifo_against_later_wheel_inserts() {
        // An event parked in overflow for cycle c must still precede an
        // event scheduled for c *later* (higher seq), even though the
        // latter may be inserted directly into the wheel after the horizon
        // has moved.
        let mut q = EventQueue::new();
        let c = WHEEL_BUCKETS as Cycle + 100;
        q.schedule(c, "first");
        q.schedule(c - WHEEL_BUCKETS as Cycle, "mover");
        assert_eq!(q.pop(), Some((c - WHEEL_BUCKETS as Cycle, "mover")));
        // Horizon now covers c; this insert goes straight to the wheel.
        q.schedule(c, "second");
        assert_eq!(q.pop(), Some((c, "first")));
        assert_eq!(q.pop(), Some((c, "second")));
    }

    #[test]
    fn drain_cycle_hands_back_whole_batches() {
        let mut q = EventQueue::new();
        q.schedule(4, 1);
        q.schedule(4, 2);
        q.schedule(4, 3);
        q.schedule(9, 4);
        let mut sink = Vec::new();
        assert_eq!(q.drain_cycle(&mut sink), Some(4));
        assert_eq!(sink, vec![1, 2, 3]);
        assert_eq!(q.now(), 4);
        q.check_counters();
        sink.clear();
        assert_eq!(q.drain_cycle(&mut sink), Some(9));
        assert_eq!(sink, vec![4]);
        assert_eq!(q.drain_cycle(&mut sink), None);
    }

    #[test]
    fn drain_cycle_resurfaces_same_cycle_followups() {
        let mut q = EventQueue::new();
        q.schedule(5, "a");
        q.schedule(5, "b");
        let mut sink = Vec::new();
        assert_eq!(q.drain_cycle(&mut sink), Some(5));
        // The model reacts to the batch by scheduling more work at cycle 5.
        q.schedule(5, "c");
        q.schedule(5, "d");
        sink.clear();
        assert_eq!(q.drain_cycle(&mut sink), Some(5), "same cycle drains again");
        assert_eq!(sink, vec!["c", "d"]);
        q.check_counters();
    }

    #[test]
    fn wheel_wraparound_keeps_order() {
        // March the clock across several full wheel revolutions with a
        // stride that exercises bucket reuse and the bitmap wrap scan.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0u64..200 {
            let at = i * 97; // crosses the 4096 boundary repeatedly
            q.schedule(at, i);
            expect.push((at, i));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_schedule() {
        // A quick inline cross-check (the full property test lives in
        // tests/engine_equivalence.rs): interleaved schedules and pops with
        // bursts and far-future outliers replay identically.
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: reference::HeapQueue<u64> = reference::HeapQueue::new();
        let mut state = 0x9E37_79B9u64;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..5_000u64 {
            let r = step();
            match r % 4 {
                0 | 1 => {
                    let delay = match r % 97 {
                        0 => 100_000, // overflow territory
                        d => d,
                    };
                    cal.schedule(cal.now() + delay, i);
                    heap.schedule(heap.now() + delay, i);
                }
                2 => {
                    // Same-cycle burst.
                    let at = cal.now() + (r % 16);
                    for b in 0..(r % 7) {
                        cal.schedule(at, i + b);
                        heap.schedule(at, i + b);
                    }
                }
                _ => assert_eq!(cal.pop(), heap.pop()),
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.processed_count(), heap.processed_count());
    }
}
