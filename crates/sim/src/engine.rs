//! Deterministic discrete-event queue.
//!
//! The engine is intentionally policy-free: it orders `(cycle, event)` pairs
//! and hands them back one at a time. The architecture model (the `spacea-arch`
//! crate) owns all machine state and interprets the events. Events scheduled
//! for the same cycle are delivered in scheduling (FIFO) order, which makes
//! every simulation bit-for-bit reproducible.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: Cycle,
    seq: u64,
}

/// A deterministic priority queue of timed events.
///
/// # Example
///
/// ```
/// use spacea_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "late");
/// q.schedule(1, "early");
/// assert_eq!(q.pop(), Some((1, "early")));
/// assert_eq!(q.now(), 1);
/// ```
///
/// # Counter invariant
///
/// At every point in the queue's lifetime,
///
/// ```text
/// scheduled_count() − processed_count() == len()
/// ```
///
/// Every scheduled event is either still pending or has been popped exactly
/// once — events are never dropped, duplicated, or conjured. Run telemetry
/// (the `spacea-harness` manifest) relies on this to report
/// events-processed counts that reconcile with queue occupancy; see
/// [`EventQueue::check_counters`] and the `counter_invariant_*` tests.
///
/// ```
/// use spacea_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(3, "a");
/// q.schedule(5, "b");
/// q.pop();
/// assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
/// q.check_counters(); // would panic if the invariant were violated
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, EventSlot<E>)>>,
    seq: u64,
    now: Cycle,
    scheduled: u64,
    processed: u64,
}

/// Wrapper so the heap never compares payloads: ordering is fully determined
/// by the key, and `E` needs no `Ord` bound.
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0, scheduled: 0, processed: 0 }
    }

    /// The cycle of the most recently popped event (0 before the first pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events popped over the queue's lifetime.
    pub fn processed_count(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` to fire at absolute cycle `at`.
    ///
    /// Scheduling in the past is clamped to `now`: a component reacting to an
    /// event at cycle `t` may trigger follow-up work "immediately", which
    /// lands at `t` and is delivered after all earlier-scheduled cycle-`t`
    /// events.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let at = at.max(self.now);
        let key = Key { at, seq: self.seq };
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse((key, EventSlot(event))));
    }

    /// Schedules `event` to fire `delay` cycles after the current time.
    pub fn schedule_after(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse((key, EventSlot(ev))) = self.heap.pop()?;
        debug_assert!(key.at >= self.now, "event queue time went backwards");
        self.now = key.at;
        self.processed += 1;
        Some((key.at, ev))
    }

    /// The cycle of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((k, _))| k.at)
    }

    /// Asserts the counter invariant `scheduled − processed == len`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated, which would indicate a bug in
    /// the queue itself (events lost or double-delivered).
    pub fn check_counters(&self) {
        if let Err(msg) = self.try_check_counters() {
            // lint:allow(R1) documented panic; try_check_counters is the fallible twin
            panic!("{msg}");
        }
    }

    /// Checks the counter invariant `scheduled − processed == len`,
    /// returning the violation as a message instead of panicking — for
    /// callers (the machine's supervised run path) that surface it as a
    /// structured error.
    ///
    /// # Errors
    ///
    /// Returns a message naming all three counters when the invariant does
    /// not hold.
    pub fn try_check_counters(&self) -> Result<(), String> {
        if self.scheduled.checked_sub(self.processed) == Some(self.heap.len() as u64) {
            Ok(())
        } else {
            Err(format!(
                "event-queue counter invariant violated: scheduled {} - processed {} != pending {}",
                self.scheduled,
                self.processed,
                self.heap.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.pop();
        q.schedule(3, "late");
        assert_eq!(q.pop(), Some((10, "late")));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_after(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.processed_count(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counter_invariant_holds_throughout_lifetime() {
        let mut q = EventQueue::new();
        q.check_counters();
        for i in 0..50 {
            q.schedule(i % 7, i);
            q.check_counters();
            assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
        }
        while q.pop().is_some() {
            q.check_counters();
            assert_eq!(q.scheduled_count() - q.processed_count(), q.len() as u64);
        }
        assert_eq!(q.scheduled_count(), 50);
        assert_eq!(q.processed_count(), 50);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn counter_invariant_survives_interleaving() {
        // Schedule-from-pop interleaving (the machine's actual usage
        // pattern): follow-up events created while draining.
        let mut q = EventQueue::new();
        q.schedule(0, 0u64);
        let mut processed = 0u64;
        while let Some((t, ev)) = q.pop() {
            processed += 1;
            if ev < 20 {
                q.schedule(t + 1, ev + 1);
                q.schedule(t + 2, ev + 2);
            }
            q.check_counters();
        }
        assert_eq!(q.processed_count(), processed);
        assert_eq!(q.scheduled_count(), processed, "drained queue: all scheduled were processed");
    }

    #[test]
    fn try_check_counters_reports_instead_of_panicking() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        assert!(q.try_check_counters().is_ok());
        q.pop();
        assert!(q.try_check_counters().is_ok());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(9, ());
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.now(), 0);
    }

    #[test]
    fn payload_needs_no_ord() {
        // f64 is not Ord; the queue must still work.
        let mut q = EventQueue::new();
        q.schedule(1, 2.5f64);
        assert_eq!(q.pop(), Some((1, 2.5)));
    }
}
