//! Deterministic fault injection and forward-progress supervision.
//!
//! A [`FaultPlan`] describes a single deliberate defect — a dropped or
//! delayed NoC packet, a wedged vault controller, a corrupted accumulator
//! update, or an outright panic — that the machine injects at an exact,
//! counter-addressed point in the run. Plans exist to *prove* the
//! robustness layer: every fault must surface as a structured failure
//! (deadlock, livelock, validation error), never as a silently wrong
//! result.
//!
//! A [`WatchdogConfig`] bounds the run loop: a total cycle budget and a
//! stall window (maximum cycles between two retirements). When either
//! trips, the machine aborts with a [`StallDiagnosis`] naming the most
//! loaded vault and its queue occupancy.

use crate::Cycle;
use std::fmt;

/// A deterministic single-fault injection plan, threaded through the
/// hardware configuration. The default (empty) plan injects nothing and
/// is free at runtime.
///
/// Faults are addressed by event ordinals, not probabilities, so a plan
/// reproduces exactly: the Nth routed NoC packet, the Nth accumulator
/// update, a named vault from a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Drop the Nth cross-vault NoC packet (0-based). The lost message
    /// strands its waiters, so the run ends in a diagnosed deadlock.
    pub drop_noc_packet: Option<u64>,
    /// Delay every cross-vault NoC packet from ordinal N onward by D
    /// cycles. The run stays correct, just slower.
    pub delay_noc: Option<(u64, Cycle)>,
    /// Wedge vault V's controller from cycle T: events addressed to it are
    /// bounced forward instead of handled, so the run livelocks until the
    /// stall-window watchdog fires.
    pub stall_vault: Option<(usize, Cycle)>,
    /// Corrupt the Nth accumulator update by +1.0. The output oracle must
    /// catch it as a validation failure.
    pub flip_accum_update: Option<u64>,
    /// Panic at the start of the run loop (exercises the harness's
    /// `catch_unwind` supervision).
    pub panic_on_run: bool,
}

impl FaultPlan {
    /// True when the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses a comma-separated list of fault directives:
    ///
    /// * `drop-noc=N` — drop the Nth routed NoC packet
    /// * `delay-noc=N@D` — delay packets from ordinal N by D cycles
    /// * `stall-vault=V@T` — wedge vault V from cycle T
    /// * `flip-accum=N` — corrupt the Nth accumulator update
    /// * `panic` — panic at run start
    ///
    /// Directives never contain `:`, so callers can prefix a plan with an
    /// index (`3:stall-vault=0@100`) unambiguously.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending directive when one is
    /// unknown or malformed.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for directive in s.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            match directive.split_once('=') {
                None if directive == "panic" => plan.panic_on_run = true,
                Some(("drop-noc", n)) => plan.drop_noc_packet = Some(parse_u64("drop-noc", n)?),
                Some(("delay-noc", v)) => plan.delay_noc = Some(parse_at("delay-noc", v)?),
                Some(("stall-vault", v)) => {
                    let (vault, from) = parse_at("stall-vault", v)?;
                    plan.stall_vault = Some((vault as usize, from));
                }
                Some(("flip-accum", n)) => {
                    plan.flip_accum_update = Some(parse_u64("flip-accum", n)?)
                }
                _ => {
                    return Err(format!(
                        "unknown fault directive '{directive}' (expected drop-noc=N, \
                         delay-noc=N@D, stall-vault=V@T, flip-accum=N, or panic)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut part = |f: &mut fmt::Formatter<'_>, s: String| {
            let r = write!(f, "{sep}{s}");
            sep = ",";
            r
        };
        if let Some(n) = self.drop_noc_packet {
            part(f, format!("drop-noc={n}"))?;
        }
        if let Some((n, d)) = self.delay_noc {
            part(f, format!("delay-noc={n}@{d}"))?;
        }
        if let Some((v, t)) = self.stall_vault {
            part(f, format!("stall-vault={v}@{t}"))?;
        }
        if let Some(n) = self.flip_accum_update {
            part(f, format!("flip-accum={n}"))?;
        }
        if self.panic_on_run {
            part(f, "panic".to_string())?;
        }
        if sep.is_empty() {
            write!(f, "none")?;
        }
        Ok(())
    }
}

fn parse_u64(what: &str, v: &str) -> Result<u64, String> {
    v.trim().parse().map_err(|_| format!("{what} needs an unsigned integer, got '{v}'"))
}

fn parse_at(what: &str, v: &str) -> Result<(u64, Cycle), String> {
    let (a, b) =
        v.split_once('@').ok_or_else(|| format!("{what} needs the form N@M, got '{v}'"))?;
    Ok((parse_u64(what, a)?, parse_u64(what, b)?))
}

/// Forward-progress budgets for the machine run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Abort when simulated time passes this cycle count. `None` (the
    /// default) leaves total time unbounded — the stall window alone
    /// catches hangs without penalizing large healthy runs.
    pub max_cycles: Option<Cycle>,
    /// Abort when no retirement (matrix entry consumed or Y element
    /// written back) happens for this many cycles while work is still
    /// outstanding. Healthy runs retire continuously, so the generous
    /// default never fires on them.
    pub stall_window: Option<Cycle>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { max_cycles: None, stall_window: Some(1_000_000) }
    }
}

/// Outstanding work in one vault at the moment a watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VaultOccupancy {
    /// Global vault id.
    pub vault: usize,
    /// In-flight distinct block requests across the vault's L1 load queues.
    pub l1_ldq: usize,
    /// In-flight distinct block requests in the vault's L2 load queue.
    pub l2_ldq: usize,
    /// Outstanding row-load requests from the vault's PEs.
    pub pe_pending: usize,
}

impl VaultOccupancy {
    /// Total outstanding requests parked on this vault.
    pub fn total(&self) -> usize {
        self.l1_ldq + self.l2_ldq + self.pe_pending
    }
}

/// One point of a vault's occupancy time series, recorded by the machine's
/// always-on history ring while a stall window is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OccupancySample {
    /// Simulated cycle the sample was taken at.
    pub cycle: Cycle,
    /// In-flight distinct block requests across the vault's L1 load queues.
    pub l1_ldq: usize,
    /// In-flight distinct block requests in the vault's L2 load queue.
    pub l2_ldq: usize,
    /// Outstanding row-load requests from the vault's PEs.
    pub pe_pending: usize,
}

impl OccupancySample {
    /// Total outstanding requests at this sample.
    pub fn total(&self) -> usize {
        self.l1_ldq + self.l2_ldq + self.pe_pending
    }
}

/// The last K occupancy samples of one vault, oldest first — how the vault
/// *got* to the state the watchdog caught it in, not just where it ended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OccupancyHistory {
    /// Global vault id.
    pub vault: usize,
    /// Samples in cycle order, the final one taken at the abort cycle.
    pub samples: Vec<OccupancySample>,
}

impl OccupancyHistory {
    /// Largest total occupancy seen across the window.
    pub fn peak(&self) -> usize {
        self.samples.iter().map(OccupancySample::total).max().unwrap_or(0)
    }
}

/// A snapshot of machine state taken when a watchdog aborted the run:
/// what was left to do, where it was parked, and which vault looks
/// responsible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnosis {
    /// Simulated cycle at abort.
    pub cycle: Cycle,
    /// Matrix entries not yet consumed.
    pub entries_left: u64,
    /// Y elements not yet written back.
    pub y_left: u64,
    /// Events still pending in the queue.
    pub pending_events: usize,
    /// The most loaded vault (ties broken toward the lowest id), if any
    /// vault holds outstanding work.
    pub suspect_vault: Option<usize>,
    /// Per-vault occupancy, vaults with no outstanding work elided.
    pub vaults: Vec<VaultOccupancy>,
    /// Recent occupancy time series per vault (same elision as `vaults`):
    /// the machine's history ring plus a final sample at the abort cycle.
    pub history: Vec<OccupancyHistory>,
}

impl fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} entries + {} Y partials outstanding, {} events pending",
            self.cycle, self.entries_left, self.y_left, self.pending_events
        )?;
        match self.suspect_vault.and_then(|v| self.vaults.iter().find(|o| o.vault == v)) {
            Some(o) => write!(
                f,
                "; suspect vault {} (L1-LDQ {}, L2-LDQ {}, PE in-flight {})",
                o.vault, o.l1_ldq, o.l2_ldq, o.pe_pending
            )?,
            None => return write!(f, "; no vault holds outstanding requests"),
        }
        if let Some(h) = self.suspect_vault.and_then(|v| self.history.iter().find(|h| h.vault == v))
        {
            if !h.samples.is_empty() {
                write!(
                    f,
                    "; occupancy history over {} samples: peak {}, latest {}",
                    h.samples.len(),
                    h.peak(),
                    h.samples.last().map(OccupancySample::total).unwrap_or(0)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_parses_and_is_empty() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "none");
    }

    #[test]
    fn directives_parse_into_the_right_fields() {
        let plan =
            FaultPlan::parse("drop-noc=7, delay-noc=3@50, stall-vault=2@100, flip-accum=9, panic")
                .unwrap();
        assert_eq!(plan.drop_noc_packet, Some(7));
        assert_eq!(plan.delay_noc, Some((3, 50)));
        assert_eq!(plan.stall_vault, Some((2, 100)));
        assert_eq!(plan.flip_accum_update, Some(9));
        assert!(plan.panic_on_run);
        assert!(!plan.is_empty());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let plan = FaultPlan::parse("stall-vault=0@100,flip-accum=4").unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn malformed_directives_are_named_in_the_error() {
        for bad in ["drop-noc=x", "delay-noc=5", "stall-vault=1", "warp-core-breach", "panic=1"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "no message for '{bad}'");
        }
    }

    #[test]
    fn diagnosis_names_the_suspect_vault() {
        let d = StallDiagnosis {
            cycle: 1234,
            entries_left: 10,
            y_left: 2,
            pending_events: 3,
            suspect_vault: Some(0),
            vaults: vec![VaultOccupancy { vault: 0, l1_ldq: 4, l2_ldq: 1, pe_pending: 2 }],
            history: vec![],
        };
        let text = d.to_string();
        assert!(text.contains("suspect vault 0"), "{text}");
        assert!(text.contains("10 entries"), "{text}");
        assert_eq!(d.vaults[0].total(), 7);
        assert!(!text.contains("occupancy history"), "no history recorded: {text}");
    }

    #[test]
    fn diagnosis_summarizes_the_suspects_history() {
        let d = StallDiagnosis {
            cycle: 9000,
            entries_left: 5,
            y_left: 0,
            pending_events: 1,
            suspect_vault: Some(2),
            vaults: vec![VaultOccupancy { vault: 2, l1_ldq: 3, l2_ldq: 0, pe_pending: 0 }],
            history: vec![OccupancyHistory {
                vault: 2,
                samples: vec![
                    OccupancySample { cycle: 1000, l1_ldq: 1, l2_ldq: 0, pe_pending: 0 },
                    OccupancySample { cycle: 5000, l1_ldq: 4, l2_ldq: 2, pe_pending: 1 },
                    OccupancySample { cycle: 9000, l1_ldq: 3, l2_ldq: 0, pe_pending: 0 },
                ],
            }],
        };
        assert_eq!(d.history[0].peak(), 7);
        let text = d.to_string();
        assert!(text.contains("occupancy history over 3 samples: peak 7, latest 3"), "{text}");
    }
}
