//! Activity counters shared by the simulator components.
//!
//! The paper's simulator "logs a detailed event trace including read/write
//! transactions to DRAM banks and on-chip SRAM, TSV data transfer, and FPU
//! computation" (Section V-A) and feeds those counts into CACTI-3DD-style
//! energy tables. These counter types cover the *aggregate* half of that:
//! whole-run totals that the `spacea-model` crate turns into joules. For
//! the time-resolved half — when the activity happened, not just how much —
//! see the `trace` module (bounded event prefix) and the `spacea-obs`
//! crate (cycle-sampled gauge series and timeline export).

use std::ops::AddAssign;

/// Hit/miss counters of a CAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamCounters {
    /// Successful searches.
    pub hits: u64,
    /// Failed searches.
    pub misses: u64,
    /// Insertions (including refreshes of resident keys).
    pub fills: u64,
    /// LRU evictions caused by insertions into full sets.
    pub evictions: u64,
}

impl CamCounters {
    /// Searches performed (hits + misses).
    pub fn searches(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over all searches, or 0 when no search happened.
    pub fn hit_rate(&self) -> f64 {
        if self.searches() == 0 {
            0.0
        } else {
            self.hits as f64 / self.searches() as f64
        }
    }
}

impl AddAssign for CamCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.fills += rhs.fills;
        self.evictions += rhs.evictions;
    }
}

/// Activity counters of a load queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdqCounters {
    /// Pushes that created a new downstream request.
    pub new_requests: u64,
    /// Pushes absorbed by an already-pending key.
    pub deduplicated: u64,
    /// Keys completed by a response.
    pub completed: u64,
    /// Pushes rejected because the queue was full.
    pub rejected_full: u64,
}

impl LdqCounters {
    /// Total search operations against the queue's CAM structure.
    pub fn searches(&self) -> u64 {
        self.new_requests + self.deduplicated + self.rejected_full + self.completed
    }
}

impl AddAssign for LdqCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.new_requests += rhs.new_requests;
        self.deduplicated += rhs.deduplicated;
        self.completed += rhs.completed;
        self.rejected_full += rhs.rejected_full;
    }
}

/// Read/write counters of an SRAM structure (PE queue, register file, update
/// buffer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SramCounters {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
}

impl SramCounters {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AddAssign for SramCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_hit_rate() {
        let c = CamCounters { hits: 3, misses: 1, fills: 0, evictions: 0 };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CamCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn cam_add_assign() {
        let mut a = CamCounters { hits: 1, misses: 2, fills: 3, evictions: 4 };
        a += CamCounters { hits: 10, misses: 20, fills: 30, evictions: 40 };
        assert_eq!(a, CamCounters { hits: 11, misses: 22, fills: 33, evictions: 44 });
    }

    #[test]
    fn ldq_searches() {
        let c = LdqCounters { new_requests: 1, deduplicated: 2, completed: 1, rejected_full: 1 };
        assert_eq!(c.searches(), 5);
    }

    #[test]
    fn sram_totals() {
        let mut s = SramCounters { reads: 5, writes: 3 };
        s += SramCounters { reads: 1, writes: 1 };
        assert_eq!(s.total(), 10);
    }
}
