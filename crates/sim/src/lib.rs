//! Event-driven simulation substrate for the SpaceA reproduction.
//!
//! The paper evaluates SpaceA with an "event-based in-house simulator"
//! (Section V-A): hardware behaviour is modelled as events triggered after
//! deterministic latencies derived from per-component latency models. This
//! crate is that substrate, reusable by any component-level architecture
//! model:
//!
//! * [`engine`] — a deterministic calendar-queue event engine with stable
//!   FIFO ordering among simultaneous events and whole-cycle batch drain.
//! * [`dram`] — DRAM bank timing (row buffer, tRCD/tRAS/tCCD) and access
//!   accounting.
//! * [`cam`] — the set-associative content-addressable memories (L1/L2 CAM)
//!   SpaceA integrates to cache input-vector blocks.
//! * [`ldq`] — load queues that deduplicate outstanding requests and track
//!   waiters.
//! * [`link`] — bandwidth-limited shared links (TSV, SerDes).
//! * [`noc`] — 2D-mesh network-on-chip with X-Y routing and the paper's
//!   bytes×hops traffic metric.
//! * [`stats`] — the event ledger consumed by the energy model.
//! * [`fault`] — deterministic fault-injection plans and the
//!   forward-progress watchdog configuration/diagnosis types.
//! * [`workload`] — seeded synthetic schedules (hold model, same-cycle
//!   bursts, far-future overflow) with checksummed replay for engine
//!   benchmarking and equivalence testing.
//!
//! # Example
//!
//! ```
//! use spacea_sim::engine::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(5, "b");
//! q.schedule(3, "a");
//! q.schedule(5, "c"); // same cycle as "b": FIFO order preserved
//! let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
//! assert_eq!(order, vec![(3, "a"), (5, "b"), (5, "c")]);
//! ```

#![warn(missing_docs)]

pub mod cam;
pub mod dram;
pub mod engine;
pub mod fault;
pub mod ldq;
pub mod link;
pub mod noc;
pub mod stats;
pub mod trace;
pub mod workload;

/// Simulation time in clock cycles (the machine runs at 1 GHz, Section II-C).
pub type Cycle = u64;
