//! Bandwidth-limited shared links (TSV bundles, SerDes lanes).
//!
//! Section II-C: 1024 TSVs at 2 Gbps give 256 GB/s per cube — 16 B/cycle for
//! each vault's TSV slice at 1 GHz. A link is a serial resource: a transfer
//! occupies it for `ceil(bytes / bytes_per_cycle)` cycles after a fixed
//! per-transfer latency, and later transfers queue behind earlier ones.

use crate::Cycle;

/// A shared, bandwidth-limited, serial link.
///
/// # Example
///
/// ```
/// use spacea_sim::link::Link;
///
/// // A vault TSV slice: 2-cycle latency, 16 bytes/cycle.
/// let mut tsv = Link::new(2, 16);
/// let done = tsv.transfer(0, 32);
/// assert_eq!(done, 2 + 2); // latency + 2 cycles of serialization
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycle,
    bytes_per_cycle: usize,
    pipelined: bool,
    busy_until: Cycle,
    bytes_total: u64,
    transfers: u64,
}

impl Link {
    /// Creates an idle *pipelined* link: the fixed latency is wire flight
    /// time, so back-to-back transfers are spaced only by serialization
    /// (wormhole-style NoC links, SerDes lanes).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Cycle, bytes_per_cycle: usize) -> Self {
        assert!(bytes_per_cycle > 0, "link bandwidth must be positive");
        Link {
            latency,
            bytes_per_cycle,
            pipelined: true,
            busy_until: 0,
            bytes_total: 0,
            transfers: 0,
        }
    }

    /// Creates an idle *bus-style* link: a transfer occupies the link for
    /// its serialization time plus half its transfer latency (a segmented
    /// bus: the tail segment frees while the head is still in flight). This
    /// models the TSV column bus a bank group arbitrates for — the reason
    /// the paper's Figure 9 sees real slowdowns as TSV latency grows.
    pub fn new_bus(latency: Cycle, bytes_per_cycle: usize) -> Self {
        assert!(bytes_per_cycle > 0, "link bandwidth must be positive");
        Link {
            latency,
            bytes_per_cycle,
            pipelined: false,
            busy_until: 0,
            bytes_total: 0,
            transfers: 0,
        }
    }

    /// Fixed per-transfer latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Changes the per-transfer latency (used by the Figure 9 TSV sweep).
    pub fn set_latency(&mut self, latency: Cycle) {
        self.latency = latency;
    }

    /// Bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> usize {
        self.bytes_per_cycle
    }

    /// Total bytes moved across the link so far (the paper's TSV traffic
    /// metric).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cycle at which the link next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Occupies the link for a `bytes`-byte transfer starting no earlier than
    /// `earliest`; returns the cycle the last byte arrives.
    pub fn transfer(&mut self, earliest: Cycle, bytes: usize) -> Cycle {
        let start = earliest.max(self.busy_until);
        let ser = (bytes.div_ceil(self.bytes_per_cycle)) as Cycle;
        let done = start + self.latency + ser;
        // A pipelined link is occupied only for the serialization time; a
        // bus-style link is additionally held for half the flight latency.
        self.busy_until =
            if self.pipelined { start + ser } else { start + ser + self.latency.div_ceil(2) };
        self.bytes_total += bytes as u64;
        self.transfers += 1;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_latency() {
        let mut l = Link::new(3, 16);
        assert_eq!(l.transfer(10, 16), 10 + 3 + 1);
        assert_eq!(l.bytes_total(), 16);
        assert_eq!(l.transfers(), 1);
    }

    #[test]
    fn transfers_queue_for_bandwidth() {
        let mut l = Link::new(1, 8);
        let d1 = l.transfer(0, 32); // occupies cycles 0..4
        assert_eq!(d1, 1 + 4);
        let d2 = l.transfer(0, 8); // must wait for cycle 4
        assert_eq!(d2, 4 + 1 + 1);
    }

    #[test]
    fn latency_is_pipelined() {
        // Two back-to-back 1-cycle transfers with big latency should finish
        // one cycle apart, not latency apart.
        let mut l = Link::new(10, 8);
        let d1 = l.transfer(0, 8);
        let d2 = l.transfer(0, 8);
        assert_eq!(d2 - d1, 1);
    }

    #[test]
    fn partial_word_rounds_up() {
        let mut l = Link::new(0, 16);
        assert_eq!(l.transfer(0, 1), 1);
    }

    #[test]
    fn set_latency_applies() {
        let mut l = Link::new(1, 16);
        l.set_latency(16);
        assert_eq!(l.latency(), 16);
        assert_eq!(l.transfer(0, 16), 16 + 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        Link::new(1, 0);
    }

    #[test]
    fn bus_link_holds_for_half_latency() {
        let mut l = Link::new_bus(10, 8);
        let d1 = l.transfer(0, 8);
        let d2 = l.transfer(0, 8);
        assert_eq!(d1, 11);
        // Occupied for ser (1) + latency/2 (5) = 6 cycles per transfer.
        assert_eq!(d2, 6 + 11, "bus transfers serialize with half the flight latency");
    }
}
