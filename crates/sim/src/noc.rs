//! 2D-mesh network-on-chip with dimension-ordered (X-Y) routing.
//!
//! Vaults inside a cube communicate through NoC routers on the base logic
//! die (Section II-C); cubes are themselves connected in a memory network
//! (Figure 3(a)). Both levels reuse this mesh model. Following Section V-C,
//! NoC traffic is measured as *packet size × hop distance* because inter-node
//! latency is distance-dependent, unlike the uniform-latency TSVs.

use crate::link::Link;
use crate::Cycle;

/// A 2D mesh of routers with X-Y routing and per-link bandwidth contention.
///
/// Nodes are linear ids in row-major order: node `n` sits at
/// `(n % width, n / width)`.
///
/// # Example
///
/// ```
/// use spacea_sim::noc::MeshNoc;
///
/// let mut noc = MeshNoc::new(4, 4, 3, 16);
/// assert_eq!(noc.hops(0, 15), 6);
/// let done = noc.send(0, 0, 5, 32);
/// assert!(done > 0);
/// assert_eq!(noc.byte_hops(), 32 * 2);
/// ```
#[derive(Debug, Clone)]
pub struct MeshNoc {
    width: usize,
    height: usize,
    hop_latency: Cycle,
    /// One link per directed edge: `node * 4 + direction`
    /// (0 = +x, 1 = -x, 2 = +y, 3 = -y).
    links: Vec<Link>,
    byte_hops: u64,
    packets: u64,
    bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    XPlus = 0,
    XMinus = 1,
    YPlus = 2,
    YMinus = 3,
}

impl MeshNoc {
    /// Creates a `width × height` mesh whose links add `hop_latency` cycles
    /// per hop and carry `bytes_per_cycle` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, hop_latency: Cycle, bytes_per_cycle: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        let links =
            (0..width * height * 4).map(|_| Link::new(hop_latency, bytes_per_cycle)).collect();
        MeshNoc { width, height, hop_latency, links, byte_hops: 0, packets: 0, bytes: 0 }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Per-hop router/link latency.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Accumulated traffic in bytes × hops (the paper's NoC traffic metric).
    pub fn byte_hops(&self) -> u64 {
        self.byte_hops
    }

    /// Total packets sent.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total payload bytes sent (each counted once, independent of distance).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        debug_assert!(node < self.nodes(), "node id out of range");
        (node % self.width, node / self.width)
    }

    /// Manhattan (X-Y route) hop count between two nodes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either node id is out of range.
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u32
    }

    fn link_mut(&mut self, node: usize, dir: Dir) -> &mut Link {
        &mut self.links[node * 4 + dir as usize]
    }

    /// Sends a `bytes`-byte packet from `src` to `dst`, starting no earlier
    /// than `earliest`; returns the arrival cycle of the whole packet.
    ///
    /// The packet traverses X first, then Y, occupying each directed link in
    /// turn (store-and-forward at router granularity). A `src == dst` send
    /// completes immediately at `earliest`.
    pub fn send(&mut self, earliest: Cycle, src: usize, dst: usize, bytes: usize) -> Cycle {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut t = earliest;
        let mut x = sx;
        let mut y = sy;
        while x != dx {
            let (dir, nx) = if x < dx { (Dir::XPlus, x + 1) } else { (Dir::XMinus, x - 1) };
            let node = y * self.width + x;
            t = self.link_mut(node, dir).transfer(t, bytes);
            x = nx;
        }
        while y != dy {
            let (dir, ny) = if y < dy { (Dir::YPlus, y + 1) } else { (Dir::YMinus, y - 1) };
            let node = y * self.width + x;
            t = self.link_mut(node, dir).transfer(t, bytes);
            y = ny;
        }
        let hops = self.hops(src, dst) as u64;
        self.byte_hops += bytes as u64 * hops;
        self.bytes += bytes as u64;
        self.packets += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_counts() {
        let noc = MeshNoc::new(4, 4, 1, 16);
        assert_eq!(noc.hops(0, 0), 0);
        assert_eq!(noc.hops(0, 3), 3);
        assert_eq!(noc.hops(0, 12), 3);
        assert_eq!(noc.hops(0, 15), 6);
        assert_eq!(noc.hops(5, 6), 1);
    }

    #[test]
    fn local_send_is_free() {
        let mut noc = MeshNoc::new(2, 2, 5, 16);
        assert_eq!(noc.send(42, 1, 1, 64), 42);
        assert_eq!(noc.byte_hops(), 0);
        assert_eq!(noc.packets(), 1);
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut noc = MeshNoc::new(4, 1, 2, 16);
        let one_hop = noc.send(0, 0, 1, 16);
        let mut noc2 = MeshNoc::new(4, 1, 2, 16);
        let three_hops = noc2.send(0, 0, 3, 16);
        assert_eq!(one_hop, 2 + 1);
        assert_eq!(three_hops, 3 * (2 + 1));
    }

    #[test]
    fn byte_hops_metric() {
        let mut noc = MeshNoc::new(4, 4, 1, 16);
        noc.send(0, 0, 15, 32);
        assert_eq!(noc.byte_hops(), 32 * 6);
        assert_eq!(noc.bytes(), 32);
    }

    #[test]
    fn contended_link_queues() {
        let mut noc = MeshNoc::new(2, 1, 1, 8);
        let d1 = noc.send(0, 0, 1, 32); // 4 cycles serialization
        let d2 = noc.send(0, 0, 1, 8);
        assert!(d2 > d1, "second packet must queue behind the first");
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut noc = MeshNoc::new(4, 1, 1, 8);
        let d1 = noc.send(0, 0, 1, 64);
        let d2 = noc.send(0, 2, 3, 64);
        assert_eq!(d1, d2, "packets on disjoint links must not interfere");
    }

    #[test]
    fn xy_routing_is_deterministic() {
        let mut a = MeshNoc::new(4, 4, 1, 16);
        let mut b = MeshNoc::new(4, 4, 1, 16);
        for (s, d) in [(0, 15), (3, 12), (5, 10)] {
            assert_eq!(a.send(0, s, d, 16), b.send(0, s, d, 16));
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        MeshNoc::new(0, 4, 1, 16);
    }
}
