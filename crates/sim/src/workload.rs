//! Deterministic synthetic event schedules for engine benchmarking and
//! equivalence testing.
//!
//! Each [`Workload`] drives any [`DesQueue`] implementation through a fully
//! deterministic schedule derived from a seeded splitmix64 stream — no
//! ambient randomness, no wall clock — and folds every delivered
//! `(cycle, payload)` pair into an FNV-1a checksum. Replaying the same
//! workload on the calendar queue and the reference heap must yield the
//! same [`WorkloadResult`] bit for bit; `engine_bench` ratchets these
//! checksums in `BENCH_engine.json` and `core/tests/determinism.rs` pins
//! them across double runs.

use crate::engine::DesQueue;
use crate::Cycle;

/// Shape of the synthetic schedule a workload generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Classic hold model: pop one event, schedule one replacement a short
    /// random delay ahead. Keeps queue occupancy constant and exercises the
    /// steady-state schedule/pop path.
    Hold {
        /// Events resident in the queue throughout the run.
        population: usize,
        /// Exclusive upper bound on the uniform reschedule delay.
        max_delay: Cycle,
    },
    /// Same-cycle bursts: each round schedules a burst of events for one
    /// nearby cycle, then drains whole cycles via `drain_cycle`. Exercises
    /// the batch API and FIFO tie-ordering.
    Burst {
        /// Events per burst round.
        burst: usize,
        /// Exclusive upper bound on the gap between burst cycles.
        max_gap: Cycle,
    },
    /// Hold model with a far-future tail: a slice of reschedules jump far
    /// beyond the wheel horizon, exercising the overflow tree and its
    /// migration back into the wheel.
    FarFuture {
        /// Events resident in the queue throughout the run.
        population: usize,
        /// Exclusive upper bound on the near-reschedule delay.
        max_delay: Cycle,
        /// One in `far_one_in` reschedules jumps `far_jump` cycles ahead.
        far_one_in: u64,
        /// Distance of the far jump (beyond the wheel horizon).
        far_jump: Cycle,
    },
}

/// A named, seeded synthetic schedule.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Stable identifier (used in `BENCH_engine.json` entries).
    pub name: &'static str,
    /// Splitmix64 seed for the delay stream.
    pub seed: u64,
    /// Number of deliver-reschedule (or burst) rounds to run.
    pub rounds: u64,
    /// Schedule shape.
    pub kind: WorkloadKind,
}

/// Outcome of replaying a workload on some queue implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadResult {
    /// Total events delivered (popped or drained).
    pub events: u64,
    /// FNV-1a checksum over every delivered `(cycle, payload)` pair in
    /// delivery order.
    pub checksum: u64,
}

/// The fixed workload suite measured by `engine_bench` and pinned by the
/// determinism tests.
pub fn standard_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "hold-4k",
            seed: 0x5EED_0001,
            rounds: 400_000,
            kind: WorkloadKind::Hold { population: 4096, max_delay: 256 },
        },
        Workload {
            name: "burst-64",
            seed: 0x5EED_0002,
            rounds: 20_000,
            kind: WorkloadKind::Burst { burst: 64, max_gap: 32 },
        },
        Workload {
            name: "far-future",
            seed: 0x5EED_0003,
            rounds: 300_000,
            kind: WorkloadKind::FarFuture {
                population: 2048,
                max_delay: 128,
                far_one_in: 64,
                far_jump: 1 << 20,
            },
        },
    ]
}

/// Deterministic splitmix64 step (same generator the matrix synthesizers
/// use); advances `state` and returns the next draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Replays `workload` on `queue`, returning the delivered-event count and
/// order-sensitive checksum. The queue must be freshly constructed.
pub fn run_workload<Q: DesQueue<u64>>(workload: &Workload, queue: &mut Q) -> WorkloadResult {
    let mut rng = workload.seed;
    let mut hash = FNV_OFFSET;
    let mut events = 0u64;
    let mut payload = 0u64;
    match workload.kind {
        WorkloadKind::Hold { population, max_delay } => {
            for _ in 0..population {
                let delay = splitmix64(&mut rng) % max_delay;
                queue.schedule(delay, payload);
                payload += 1;
            }
            for _ in 0..workload.rounds {
                let Some((at, ev)) = queue.pop() else { break };
                events += 1;
                hash = fnv_fold(fnv_fold(hash, at), ev);
                let delay = 1 + splitmix64(&mut rng) % max_delay;
                queue.schedule(at + delay, payload);
                payload += 1;
            }
        }
        WorkloadKind::Burst { burst, max_gap } => {
            let mut sink = Vec::with_capacity(burst);
            for _ in 0..workload.rounds {
                let at = queue.now() + 1 + splitmix64(&mut rng) % max_gap;
                for _ in 0..burst {
                    queue.schedule(at, payload);
                    payload += 1;
                }
                while let Some(cycle) = queue.drain_cycle(&mut sink) {
                    for ev in sink.drain(..) {
                        events += 1;
                        hash = fnv_fold(fnv_fold(hash, cycle), ev);
                    }
                }
            }
        }
        WorkloadKind::FarFuture { population, max_delay, far_one_in, far_jump } => {
            for _ in 0..population {
                let delay = splitmix64(&mut rng) % max_delay;
                queue.schedule(delay, payload);
                payload += 1;
            }
            for _ in 0..workload.rounds {
                let Some((at, ev)) = queue.pop() else { break };
                events += 1;
                hash = fnv_fold(fnv_fold(hash, at), ev);
                let draw = splitmix64(&mut rng);
                let delay =
                    if draw.is_multiple_of(far_one_in) { far_jump } else { 1 + draw % max_delay };
                queue.schedule(at + delay, payload);
                payload += 1;
            }
        }
    }
    // Drain whatever is still pending so the checksum covers the complete
    // delivery order and the queue ends empty (counter invariant checkable).
    while let Some((at, ev)) = queue.pop() {
        events += 1;
        hash = fnv_fold(fnv_fold(hash, at), ev);
    }
    WorkloadResult { events, checksum: hash }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{reference::HeapQueue, EventQueue};

    #[test]
    fn suite_is_deterministic_and_engine_agnostic() {
        for wl in standard_workloads() {
            let small = Workload { rounds: wl.rounds.min(2_000), ..wl };
            let mut cal = EventQueue::new();
            let mut heap = HeapQueue::new();
            let a = run_workload(&small, &mut cal);
            let b = run_workload(&small, &mut heap);
            assert_eq!(a, b, "workload {} diverged between engines", small.name);
            assert!(a.events > 0);
            cal.check_counters();
            assert!(cal.is_empty() && heap.is_empty());
            // Replay is bit-identical.
            let mut again = EventQueue::new();
            assert_eq!(run_workload(&small, &mut again), a);
        }
    }
}
