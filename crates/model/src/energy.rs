//! Energy model (paper Section V-A/B and Figure 8).
//!
//! The simulator logs per-component activity; this module prices that
//! activity with CACTI-3DD-magnitude dynamic energies and adds static energy
//! (static power × execution time). The output is the paper's four-part
//! breakdown: DRAM dynamic, PE + L1 + L2 dynamic, interconnect dynamic, and
//! total static (Figure 8).

use spacea_sim::stats::{CamCounters, LdqCounters, SramCounters};

/// Aggregated activity of one simulated SpMV run, filled by the architecture
/// crate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivitySummary {
    /// Execution time in cycles (1 GHz clock).
    pub cycles: u64,
    /// DRAM row activations over all banks.
    pub dram_activates: u64,
    /// DRAM 256-bit beats read over all banks.
    pub dram_read_beats: u64,
    /// DRAM 256-bit beats written over all banks.
    pub dram_write_beats: u64,
    /// Double-precision FPU operations (multiply-accumulate counts as one).
    pub fpu_ops: u64,
    /// PE queue scratchpad accesses (also used as the update buffer in
    /// Accumulation-PEs).
    pub pe_queue: SramCounters,
    /// Register file accesses.
    pub register_file: SramCounters,
    /// Aggregated L1 CAM activity over all bank groups.
    pub l1_cam: CamCounters,
    /// Aggregated L2 CAM activity over all vaults.
    pub l2_cam: CamCounters,
    /// Aggregated L1 load-queue activity.
    pub l1_ldq: LdqCounters,
    /// Aggregated L2 load-queue activity.
    pub l2_ldq: LdqCounters,
    /// Bytes moved over TSVs (intra-vault, uniform latency).
    pub tsv_bytes: u64,
    /// NoC traffic in bytes × hops (intra- and inter-cube meshes).
    pub noc_byte_hops: u64,
}

/// Hardware structure counts needed for static power.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticConfig {
    /// Total memory banks (DRAM static).
    pub banks: usize,
    /// Total bank groups (PE + L1 CAM + LDQ static).
    pub bank_groups: usize,
    /// Total vaults (L2 CAM + LDQ + router static).
    pub vaults: usize,
    /// Total cubes (SerDes and base-die overhead static).
    pub cubes: usize,
}

/// Per-event dynamic energies (pJ) and per-structure static powers (mW).
///
/// Defaults are CACTI-3DD-magnitude values for 22 nm logic under DRAM-process
/// derating, chosen so the Figure 8 breakdown reproduces the paper's shape
/// (DRAM dynamic and static dominate; added PE/CAM logic is negligible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per DRAM row activation.
    pub dram_activate_pj: f64,
    /// Energy per 256-bit DRAM beat (read or write).
    pub dram_beat_pj: f64,
    /// Energy per PE-queue scratchpad access.
    pub pe_queue_pj: f64,
    /// Energy per register-file access.
    pub register_file_pj: f64,
    /// Energy per L1 CAM search.
    pub l1_cam_search_pj: f64,
    /// Energy per L1 CAM fill.
    pub l1_cam_fill_pj: f64,
    /// Energy per L2 CAM search.
    pub l2_cam_search_pj: f64,
    /// Energy per L2 CAM fill.
    pub l2_cam_fill_pj: f64,
    /// Energy per L1 LDQ associative operation.
    pub l1_ldq_pj: f64,
    /// Energy per L2 LDQ associative operation.
    pub l2_ldq_pj: f64,
    /// Energy per double-precision fused multiply-add \[23\].
    pub fpu_op_pj: f64,
    /// TSV transfer energy per byte.
    pub tsv_pj_per_byte: f64,
    /// NoC energy per byte per hop (router + link).
    pub noc_pj_per_byte_hop: f64,
    /// Static power per memory bank (DRAM periphery + refresh), mW.
    pub static_mw_per_bank: f64,
    /// Static power of the added bank-group logic (PEs, L1 CAM, LDQ), mW.
    pub static_mw_per_bank_group: f64,
    /// Static power per vault controller (L2 CAM, LDQ, router), mW.
    pub static_mw_per_vault: f64,
    /// Static power per cube for SerDes links and base-die periphery, mW.
    pub static_mw_per_cube: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            dram_activate_pj: 900.0,
            dram_beat_pj: 100.0,
            pe_queue_pj: 2.0,
            register_file_pj: 0.8,
            l1_cam_search_pj: 3.0,
            l1_cam_fill_pj: 2.0,
            l2_cam_search_pj: 12.0,
            l2_cam_fill_pj: 8.0,
            l1_ldq_pj: 3.0,
            l2_ldq_pj: 8.0,
            fpu_op_pj: 15.0,
            tsv_pj_per_byte: 0.8,
            noc_pj_per_byte_hop: 2.0,
            static_mw_per_bank: 5.0,
            static_mw_per_bank_group: 10.0,
            static_mw_per_vault: 34.0,
            static_mw_per_cube: 5000.0,
        }
    }
}

impl EnergyParams {
    /// Axis constructor: every parameter (dynamic per-event energies and
    /// static powers alike) multiplied by `factor` — a first-order model of
    /// process/voltage scaling, used as the energy axis of sweep grids.
    pub fn scaled(&self, factor: f64) -> Self {
        EnergyParams {
            dram_activate_pj: self.dram_activate_pj * factor,
            dram_beat_pj: self.dram_beat_pj * factor,
            pe_queue_pj: self.pe_queue_pj * factor,
            register_file_pj: self.register_file_pj * factor,
            l1_cam_search_pj: self.l1_cam_search_pj * factor,
            l1_cam_fill_pj: self.l1_cam_fill_pj * factor,
            l2_cam_search_pj: self.l2_cam_search_pj * factor,
            l2_cam_fill_pj: self.l2_cam_fill_pj * factor,
            l1_ldq_pj: self.l1_ldq_pj * factor,
            l2_ldq_pj: self.l2_ldq_pj * factor,
            fpu_op_pj: self.fpu_op_pj * factor,
            tsv_pj_per_byte: self.tsv_pj_per_byte * factor,
            noc_pj_per_byte_hop: self.noc_pj_per_byte_hop * factor,
            static_mw_per_bank: self.static_mw_per_bank * factor,
            static_mw_per_bank_group: self.static_mw_per_bank_group * factor,
            static_mw_per_vault: self.static_mw_per_vault * factor,
            static_mw_per_cube: self.static_mw_per_cube * factor,
        }
    }
}

/// The Figure 8 energy breakdown, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM dynamic energy.
    pub dram_dynamic_j: f64,
    /// Dynamic energy of the PEs, L1 CAM/LDQ and L2 CAM/LDQ.
    pub pe_cam_dynamic_j: f64,
    /// Dynamic energy of the interconnect (TSV and NoC).
    pub interconnect_dynamic_j: f64,
    /// Static energy of the whole chip.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dram_dynamic_j + self.pe_cam_dynamic_j + self.interconnect_dynamic_j + self.static_j
    }
}

impl EnergyParams {
    /// Prices an activity summary into the four-part breakdown.
    pub fn breakdown(&self, act: &ActivitySummary, cfg: &StaticConfig) -> EnergyBreakdown {
        const PJ: f64 = 1e-12;
        let dram = (act.dram_activates as f64 * self.dram_activate_pj
            + (act.dram_read_beats + act.dram_write_beats) as f64 * self.dram_beat_pj)
            * PJ;

        let pe_cam = (act.pe_queue.total() as f64 * self.pe_queue_pj
            + act.register_file.total() as f64 * self.register_file_pj
            + act.l1_cam.searches() as f64 * self.l1_cam_search_pj
            + act.l1_cam.fills as f64 * self.l1_cam_fill_pj
            + act.l2_cam.searches() as f64 * self.l2_cam_search_pj
            + act.l2_cam.fills as f64 * self.l2_cam_fill_pj
            + act.l1_ldq.searches() as f64 * self.l1_ldq_pj
            + act.l2_ldq.searches() as f64 * self.l2_ldq_pj
            + act.fpu_ops as f64 * self.fpu_op_pj)
            * PJ;

        let interconnect = (act.tsv_bytes as f64 * self.tsv_pj_per_byte
            + act.noc_byte_hops as f64 * self.noc_pj_per_byte_hop)
            * PJ;

        let static_w = self.static_power_w(cfg);
        let seconds = act.cycles as f64 * 1e-9; // 1 GHz clock
        EnergyBreakdown {
            dram_dynamic_j: dram,
            pe_cam_dynamic_j: pe_cam,
            interconnect_dynamic_j: interconnect,
            static_j: static_w * seconds,
        }
    }

    /// Whole-chip static power in watts for a machine configuration.
    pub fn static_power_w(&self, cfg: &StaticConfig) -> f64 {
        (cfg.banks as f64 * self.static_mw_per_bank
            + cfg.bank_groups as f64 * self.static_mw_per_bank_group
            + cfg.vaults as f64 * self.static_mw_per_vault
            + cfg.cubes as f64 * self.static_mw_per_cube)
            * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_cube() -> StaticConfig {
        StaticConfig { banks: 256, bank_groups: 128, vaults: 16, cubes: 1 }
    }

    #[test]
    fn zero_activity_has_only_static() {
        let act = ActivitySummary { cycles: 1_000_000, ..Default::default() };
        let b = EnergyParams::default().breakdown(&act, &one_cube());
        assert_eq!(b.dram_dynamic_j, 0.0);
        assert_eq!(b.pe_cam_dynamic_j, 0.0);
        assert_eq!(b.interconnect_dynamic_j, 0.0);
        assert!(b.static_j > 0.0);
        assert_eq!(b.total_j(), b.static_j);
    }

    #[test]
    fn static_scales_with_time() {
        let p = EnergyParams::default();
        let a1 = ActivitySummary { cycles: 1000, ..Default::default() };
        let a2 = ActivitySummary { cycles: 2000, ..Default::default() };
        let b1 = p.breakdown(&a1, &one_cube());
        let b2 = p.breakdown(&a2, &one_cube());
        assert!((b2.static_j / b1.static_j - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_counts_activates_and_beats() {
        let p = EnergyParams::default();
        let act = ActivitySummary {
            dram_activates: 10,
            dram_read_beats: 100,
            dram_write_beats: 50,
            ..Default::default()
        };
        let b = p.breakdown(&act, &one_cube());
        let expected = (10.0 * p.dram_activate_pj + 150.0 * p.dram_beat_pj) * 1e-12;
        assert!((b.dram_dynamic_j - expected).abs() < 1e-20);
    }

    #[test]
    fn interconnect_energy_uses_byte_hops() {
        let p = EnergyParams::default();
        let act = ActivitySummary { tsv_bytes: 1000, noc_byte_hops: 500, ..Default::default() };
        let b = p.breakdown(&act, &one_cube());
        let expected = (1000.0 * p.tsv_pj_per_byte + 500.0 * p.noc_pj_per_byte_hop) * 1e-12;
        assert!((b.interconnect_dynamic_j - expected).abs() < 1e-20);
    }

    #[test]
    fn static_power_magnitude_is_plausible() {
        // A 16-cube machine idles around 100-150 W (HMC cubes draw ~10 W
        // each, dominated by SerDes), consistent with the paper's
        // static-dominated Figure 8 and its implied SpaceA average power of
        // roughly 1.7x the GPU's (Section V-B arithmetic).
        let cfg = StaticConfig { banks: 4096, bank_groups: 2048, vaults: 256, cubes: 16 };
        let w = EnergyParams::default().static_power_w(&cfg);
        assert!(w > 50.0 && w < 250.0, "static power {w} W implausible");
    }

    #[test]
    fn total_is_sum_of_parts() {
        let p = EnergyParams::default();
        let act = ActivitySummary {
            cycles: 5000,
            dram_activates: 7,
            dram_read_beats: 9,
            fpu_ops: 11,
            tsv_bytes: 13,
            ..Default::default()
        };
        let b = p.breakdown(&act, &one_cube());
        let sum = b.dram_dynamic_j + b.pe_cam_dynamic_j + b.interconnect_dynamic_j + b.static_j;
        assert!((b.total_j() - sum).abs() < 1e-20);
    }

    #[test]
    fn scaled_params_scale_every_field() {
        let p = EnergyParams::default();
        let half = p.scaled(0.5);
        assert_eq!(half.dram_activate_pj, p.dram_activate_pj * 0.5);
        assert_eq!(half.fpu_op_pj, p.fpu_op_pj * 0.5);
        assert_eq!(half.static_mw_per_cube, p.static_mw_per_cube * 0.5);
        // Identity scaling is exactly the original (bit-for-bit, so the
        // sweep's default energy axis produces the same job keys).
        assert_eq!(p.scaled(1.0), p);
    }
}
