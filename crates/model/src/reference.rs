//! Published reference constants for the baselines.
//!
//! Table III compares SpaceA against Tesseract \[4\] and GraphP \[76\] by taking
//! the speedups *claimed in their papers* ("We assume Tesseract and GraphP
//! can obtain the same speedup as claimed in their paper"). This module
//! embeds those constants, plus the host-platform specifications used by the
//! analytic CPU baseline.

/// Graph workload of the Section V-F case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphWorkload {
    /// PageRank.
    PageRank,
    /// Single-source shortest path.
    Sssp,
}

impl std::fmt::Display for GraphWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphWorkload::PageRank => f.write_str("PR"),
            GraphWorkload::Sssp => f.write_str("SSSP"),
        }
    }
}

/// Input graph of the Section V-F case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphDataset {
    /// The SNAP Wiki vote/talk graph ("WK").
    Wiki,
    /// The SNAP LiveJournal graph ("LJ").
    LiveJournal,
}

impl std::fmt::Display for GraphDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphDataset::Wiki => f.write_str("WK"),
            GraphDataset::LiveJournal => f.write_str("LJ"),
        }
    }
}

/// Claimed speedup over the CPU baseline for a prior accelerator (Table III
/// columns 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimedSpeedup {
    /// Tesseract's claimed speedup.
    pub tesseract: f64,
    /// GraphP's claimed speedup.
    pub graphp: f64,
    /// The paper's measured SpaceA speedup (for EXPERIMENTS.md comparison).
    pub spacea_paper: f64,
}

/// The Table III prior-work speedups for a workload × dataset pair.
pub fn claimed_speedups(workload: GraphWorkload, dataset: GraphDataset) -> ClaimedSpeedup {
    use GraphDataset::*;
    use GraphWorkload::*;
    match (workload, dataset) {
        (PageRank, Wiki) => ClaimedSpeedup { tesseract: 18.19, graphp: 22.58, spacea_paper: 29.73 },
        (Sssp, Wiki) => ClaimedSpeedup { tesseract: 43.70, graphp: 52.17, spacea_paper: 103.57 },
        (PageRank, LiveJournal) => {
            ClaimedSpeedup { tesseract: 21.09, graphp: 34.08, spacea_paper: 58.34 }
        }
        (Sssp, LiveJournal) => {
            ClaimedSpeedup { tesseract: 40.10, graphp: 42.83, spacea_paper: 51.47 }
        }
    }
}

/// Shape of a case-study input graph (published SNAP sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphShape {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
}

/// Published sizes of the case-study graphs \[36\].
pub fn graph_shape(dataset: GraphDataset) -> GraphShape {
    match dataset {
        // wiki-Talk: 2.39 M vertices, 5.02 M edges.
        GraphDataset::Wiki => GraphShape { vertices: 2_394_385, edges: 5_021_410 },
        // soc-LiveJournal1: 4.85 M vertices, 69 M edges.
        GraphDataset::LiveJournal => GraphShape { vertices: 4_847_571, edges: 68_993_773 },
    }
}

/// The paper's headline results (Section V-B), used by EXPERIMENTS.md to
/// record paper-vs-measured deltas.
pub mod paper_headline {
    /// Mean speedup of SpaceA + proposed mapping over the GPU baseline.
    pub const SPEEDUP_PROPOSED: f64 = 13.54;
    /// Mean speedup of SpaceA + naive mapping over the GPU baseline.
    pub const SPEEDUP_NAIVE: f64 = 6.22;
    /// Mean energy saving of SpaceA + proposed mapping (fraction).
    pub const ENERGY_SAVING_PROPOSED: f64 = 0.8749;
    /// Mean energy saving of SpaceA + naive mapping (fraction).
    pub const ENERGY_SAVING_NAIVE: f64 = 0.7955;
    /// Mean GPU DRAM bandwidth utilization over all 15 matrices (Figure 2).
    pub const GPU_BW_UTILIZATION: f64 = 0.2708;
    /// Mean GPU ALU utilization (Figure 2).
    pub const GPU_ALU_UTILIZATION: f64 = 0.0268;
    /// Normalized workload of naive relative to proposed (Figure 6(a)).
    pub const NAIVE_NORMALIZED_WORKLOAD_RATIO: f64 = 0.81;
    /// L1 CAM hit rates, naive → proposed (Figure 6(b)).
    pub const L1_HIT_NAIVE: f64 = 0.18;
    /// L1 CAM hit rate with the proposed mapping.
    pub const L1_HIT_PROPOSED: f64 = 0.78;
    /// L2 CAM hit rates, naive → proposed (Figure 6(c)).
    pub const L2_HIT_NAIVE: f64 = 0.4709;
    /// L2 CAM hit rate with the proposed mapping.
    pub const L2_HIT_PROPOSED: f64 = 0.3193;
    /// TSV traffic of proposed relative to naive (Figure 6(d)).
    pub const TSV_TRAFFIC_RATIO: f64 = 0.3311;
    /// NoC traffic of proposed relative to naive (Figure 6(d)).
    pub const NOC_TRAFFIC_RATIO: f64 = 0.3889;
    /// Scalability speedups vs 16 cubes (Figure 10).
    pub const SCALE_32_CUBES: f64 = 1.42;
    /// Speedup of the 64-cube machine over 16 cubes.
    pub const SCALE_64_CUBES: f64 = 1.8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_match_paper() {
        let s = claimed_speedups(GraphWorkload::Sssp, GraphDataset::Wiki);
        assert_eq!(s.tesseract, 43.70);
        assert_eq!(s.graphp, 52.17);
        assert_eq!(s.spacea_paper, 103.57);
    }

    #[test]
    fn spacea_beats_prior_work_in_paper() {
        for w in [GraphWorkload::PageRank, GraphWorkload::Sssp] {
            for d in [GraphDataset::Wiki, GraphDataset::LiveJournal] {
                let s = claimed_speedups(w, d);
                assert!(s.spacea_paper > s.graphp && s.graphp > s.tesseract);
            }
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(GraphWorkload::PageRank.to_string(), "PR");
        assert_eq!(GraphDataset::LiveJournal.to_string(), "LJ");
    }

    #[test]
    fn graph_shapes_are_published_sizes() {
        assert_eq!(graph_shape(GraphDataset::Wiki).vertices, 2_394_385);
        assert!(graph_shape(GraphDataset::LiveJournal).edges > 60_000_000);
    }
}
