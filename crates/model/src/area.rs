//! Area and power-density model (paper Table II and Section V-B).
//!
//! All logic is assumed fabricated in a 22 nm process and doubled in area for
//! the DRAM process (fewer metal layers), exactly as the paper does:
//! "we multiply all area results from CACTI-3DD and existing FPU design by 2x".

/// Area (mm²) and power density (mW/mm²) of one component instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentArea {
    /// Human-readable name matching Table II.
    pub name: &'static str,
    /// Instances per bank group (Table II's "(x2)" entries).
    pub count: usize,
    /// Area per instance in mm² (already includes the 2× DRAM-process
    /// factor).
    pub area_mm2: f64,
    /// Power density in mW/mm².
    pub power_density_mw_mm2: f64,
}

/// The bank-group-level overhead table (paper Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct BankGroupArea {
    /// Per-component rows.
    pub components: Vec<ComponentArea>,
}

impl BankGroupArea {
    /// Total added area per bank group in mm² (Table II: 0.1458 mm²).
    pub fn total_mm2(&self) -> f64 {
        spacea_matrix::reduce::sum_f64(self.components.iter().map(|c| c.area_mm2 * c.count as f64))
    }

    /// Peak power density across components (Table II: 66.56 mW/mm²).
    /// Densities are non-negative, so the `NEG_INFINITY`-seeded canonical
    /// max matches the old `0.0`-seeded fold on every real table.
    pub fn peak_power_density(&self) -> f64 {
        spacea_matrix::reduce::max_f64(self.components.iter().map(|c| c.power_density_mw_mm2))
            .max(0.0)
    }
}

/// The analytic area model with the paper's published constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaModel;

impl AreaModel {
    /// Bank-group area in mm² (derived from Table II: the 0.1458 mm² overhead
    /// is 4.86% of a bank group).
    pub const BANK_GROUP_MM2: f64 = 3.0;
    /// Area of the two memory banks in a bank group (overhead is 5.96% of the
    /// banks).
    pub const BANKS_MM2: f64 = 2.446;
    /// Vault area in mm² (48 mm² cube footprint / 16 vaults).
    pub const VAULT_MM2: f64 = 3.0;
    /// Default L2 CAM area (256 KB, Section V-B): 0.1898 mm².
    pub const L2_CAM_DEFAULT_MM2: f64 = 0.1898;
    /// Default L2 load queue area (8192 entries): 0.0760 mm².
    pub const L2_LDQ_DEFAULT_MM2: f64 = 0.0760;
    /// Base-die area budget fraction the paper conservatively assumes.
    pub const BASE_DIE_BUDGET_FRACTION: f64 = 0.10;
    /// Commodity-server active cooling power density limit, mW/mm² \[46\].
    pub const COOLING_LIMIT_COMMODITY: f64 = 706.0;
    /// High-end server active cooling limit, mW/mm² \[20\].
    pub const COOLING_LIMIT_HIGH_END: f64 = 1214.0;
    /// Stacked DRAM layers contributing to the footprint power density.
    pub const LAYERS: usize = 8;

    /// The Table II component table.
    pub fn bank_group(&self) -> BankGroupArea {
        BankGroupArea {
            components: vec![
                ComponentArea {
                    name: "PE Queue",
                    count: 2,
                    area_mm2: 0.0048 / 2.0,
                    power_density_mw_mm2: 43.75,
                },
                ComponentArea {
                    name: "Register File",
                    count: 2,
                    area_mm2: 0.0058 / 2.0,
                    power_density_mw_mm2: 49.66,
                },
                ComponentArea {
                    name: "PE Logic",
                    count: 2,
                    area_mm2: 0.0994 / 2.0,
                    power_density_mw_mm2: 28.21,
                },
                ComponentArea {
                    name: "L1 CAM (4 KB)",
                    count: 1,
                    area_mm2: 0.0286,
                    power_density_mw_mm2: 66.56,
                },
                ComponentArea {
                    name: "L1 Load Queue",
                    count: 1,
                    area_mm2: 0.0072,
                    power_density_mw_mm2: 56.29,
                },
            ],
        }
    }

    /// Bank-group overhead as a fraction of the bank-group area
    /// (paper: 4.86%).
    pub fn bank_group_overhead_fraction(&self) -> f64 {
        self.bank_group().total_mm2() / Self::BANK_GROUP_MM2
    }

    /// Bank-group overhead as a fraction of the two banks' area
    /// (paper: 5.96%).
    pub fn bank_overhead_fraction(&self) -> f64 {
        self.bank_group().total_mm2() / Self::BANKS_MM2
    }

    /// Area of an L2 CAM with the given geometry.
    ///
    /// Linear capacity model anchored on the two published points: 4 KB →
    /// 0.0286 mm² (the L1 CAM uses the same circuit) and 256 KB → 0.1898 mm².
    pub fn cam_area_mm2(&self, sets: usize, ways: usize, way_bytes: usize) -> f64 {
        let kb = (sets * ways * way_bytes) as f64 / 1024.0;
        // fixed search/control logic + per-KB storage
        let per_kb = (Self::L2_CAM_DEFAULT_MM2 - 0.0286) / (256.0 - 4.0);
        let fixed = 0.0286 - 4.0 * per_kb;
        fixed + per_kb * kb
    }

    /// Area of a fully-associative load queue with `entries` entries,
    /// proportional to the published 8192-entry point.
    pub fn ldq_area_mm2(&self, entries: usize) -> f64 {
        Self::L2_LDQ_DEFAULT_MM2 * entries as f64 / 8192.0
    }

    /// Base-die area consumed by a vault's L2 CAM + L2 LDQ, in mm².
    pub fn vault_base_die_mm2(&self, cam_sets: usize, cam_ways: usize, ldq_entries: usize) -> f64 {
        self.cam_area_mm2(cam_sets, cam_ways, 32) + self.ldq_area_mm2(ldq_entries)
    }

    /// Whether a vault's base-die additions fit the conservative 10% budget.
    pub fn fits_base_die_budget(
        &self,
        cam_sets: usize,
        cam_ways: usize,
        ldq_entries: usize,
    ) -> bool {
        self.vault_base_die_mm2(cam_sets, cam_ways, ldq_entries)
            <= Self::VAULT_MM2 * Self::BASE_DIE_BUDGET_FRACTION * 3.0
        // The paper itself places a 0.2658 mm² structure in a "10% of a vault"
        // budget (0.3 mm²) while calling 8.86% of the vault within budget; we
        // allow the same interpretation headroom (the budget applies to the
        // whole base die, not the 3 mm² vault slice alone).
    }

    /// Peak footprint power density in mW/mm²: the per-layer peak stacked
    /// over all DRAM layers (paper: 66.56 × 8 = 532.48 mW/mm²).
    pub fn peak_footprint_power_density(&self) -> f64 {
        self.bank_group().peak_power_density() * Self::LAYERS as f64
    }

    /// Thermal feasibility against the commodity cooling limit (paper
    /// Section V-B: 532.48 < 706 mW/mm²).
    pub fn thermally_feasible(&self) -> bool {
        self.peak_footprint_power_density() < Self::COOLING_LIMIT_COMMODITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_total_matches_paper() {
        let bg = AreaModel.bank_group();
        assert!((bg.total_mm2() - 0.1458).abs() < 1e-9, "total {}", bg.total_mm2());
    }

    #[test]
    fn table2_peak_density_matches_paper() {
        assert!((AreaModel.bank_group().peak_power_density() - 66.56).abs() < 1e-9);
    }

    #[test]
    fn overhead_fractions_match_paper() {
        let m = AreaModel;
        assert!((m.bank_group_overhead_fraction() - 0.0486).abs() < 0.001);
        assert!((m.bank_overhead_fraction() - 0.0596).abs() < 0.001);
    }

    #[test]
    fn l2_defaults_match_published_areas() {
        let m = AreaModel;
        assert!((m.cam_area_mm2(2048, 4, 32) - AreaModel::L2_CAM_DEFAULT_MM2).abs() < 1e-9);
        assert!((m.cam_area_mm2(32, 4, 32) - 0.0286).abs() < 1e-9);
        assert!((m.ldq_area_mm2(8192) - AreaModel::L2_LDQ_DEFAULT_MM2).abs() < 1e-12);
    }

    #[test]
    fn vault_base_die_total_matches_paper() {
        // 0.1898 + 0.0760 = 0.2658 mm², 8.86% of a 3 mm² vault.
        let total = AreaModel.vault_base_die_mm2(2048, 4, 8192);
        assert!((total - 0.2658).abs() < 1e-9);
        assert!((total / AreaModel::VAULT_MM2 - 0.0886).abs() < 0.001);
        assert!(AreaModel.fits_base_die_budget(2048, 4, 8192));
    }

    #[test]
    fn cam_area_grows_with_size() {
        let m = AreaModel;
        assert!(m.cam_area_mm2(4096, 4, 32) > m.cam_area_mm2(2048, 4, 32));
        assert!(m.cam_area_mm2(2048, 8, 32) > m.cam_area_mm2(2048, 4, 32));
    }

    #[test]
    fn thermal_check_matches_paper() {
        let m = AreaModel;
        assert!((m.peak_footprint_power_density() - 532.48).abs() < 0.01);
        assert!(m.thermally_feasible());
    }
}
