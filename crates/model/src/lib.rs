//! Energy, power, area and reference models for the SpaceA reproduction.
//!
//! The paper derives component latencies, energies and areas from CACTI-3DD
//! \[15\] and a taped-out FPU generator \[23\] (Section V-A/B). Those tools are
//! consumed purely as constant tables, so this crate embeds equivalent
//! constants:
//!
//! * [`area`] — Table II component areas and power densities, the 2× DRAM
//!   process factor, CAM/LDQ area scaling for the Figure 7(e) trade-off, and
//!   the thermal feasibility check against active-cooling limits.
//! * [`energy`] — per-event dynamic energies and static powers; turns the
//!   simulator's [`ActivitySummary`] into the
//!   Figure 8 four-part energy breakdown.
//! * [`reference`](mod@reference) — published constants for the baselines: NVIDIA Titan Xp,
//!   the DGX-1 CPU host, and the claimed speedups of Tesseract and GraphP
//!   used by Table III.

#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod reference;

pub use area::{AreaModel, BankGroupArea};
pub use energy::{ActivitySummary, EnergyBreakdown, EnergyParams};
