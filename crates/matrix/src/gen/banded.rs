//! Banded / FEM-style structural matrix generator.

use super::{rng_for, sample_normal, sample_value};
use crate::{Coo, Csr};
use rand::Rng;

/// Configuration of the banded structural generator.
///
/// Models finite-element and structural matrices (Table I domains
/// "Structural Problem", "2D/3D Problem", etc.): each row's non-zeros live in
/// a band around the diagonal and are grouped into contiguous runs, and
/// consecutive rows in the same mesh block share most of their column set —
/// the column-index overlap that the paper's mapping algorithm (Algorithm 1)
/// and its L1/L2 CAMs exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandedConfig {
    /// Number of rows and columns (the matrices are square).
    pub n: usize,
    /// Target mean non-zeros per row (Table I's μ).
    pub mean_row_nnz: f64,
    /// Target standard deviation of row lengths (Table I's σ).
    pub stddev_row_nnz: f64,
    /// Half-width of the diagonal band as a multiple of μ.
    pub band_factor: f64,
    /// Rows per mesh block; rows inside a block share one column template.
    pub block_rows: usize,
    /// Length of each contiguous column run.
    pub run_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BandedConfig {
    fn default() -> Self {
        BandedConfig {
            n: 1024,
            mean_row_nnz: 32.0,
            stddev_row_nnz: 8.0,
            band_factor: 6.0,
            block_rows: 8,
            run_len: 6,
            seed: 0x5ACE_A001,
        }
    }
}

/// Generates a banded structural matrix.
///
/// Deterministic for a given configuration. The produced matrix always has at
/// least one non-zero per row (every mesh node couples to itself).
///
/// # Panics
///
/// Panics if `n == 0`, `block_rows == 0` or `run_len == 0`.
pub fn banded(cfg: &BandedConfig) -> Csr {
    assert!(cfg.n > 0, "matrix dimension must be positive");
    assert!(cfg.block_rows > 0, "block_rows must be positive");
    assert!(cfg.run_len > 0, "run_len must be positive");

    let mut rng = rng_for(cfg.seed);
    let mut coo = Coo::new(cfg.n, cfg.n);
    coo.reserve((cfg.n as f64 * cfg.mean_row_nnz) as usize);

    let half_band = ((cfg.mean_row_nnz * cfg.band_factor) / 2.0).max(cfg.run_len as f64) as i64;
    // One shared run template per mesh block: runs start at fixed offsets from
    // the block anchor so rows in a block overlap heavily.
    let max_runs =
        ((cfg.mean_row_nnz + 4.0 * cfg.stddev_row_nnz) / cfg.run_len as f64).ceil() as usize + 1;

    let mut block_offsets: Vec<i64> = Vec::new();
    let mut cols_buf: Vec<u32> = Vec::new();
    for row in 0..cfg.n {
        if row % cfg.block_rows == 0 {
            // New mesh block: draw a fresh set of run anchor offsets.
            block_offsets.clear();
            for _ in 0..max_runs {
                block_offsets.push(rng.gen_range(-half_band..=half_band));
            }
            block_offsets.sort_unstable();
            block_offsets.dedup();
        }
        let target =
            sample_normal(&mut rng, cfg.mean_row_nnz, cfg.stddev_row_nnz).round().max(1.0) as usize;

        cols_buf.clear();
        cols_buf.push(row as u32); // diagonal coupling
        let anchor = (row / cfg.block_rows * cfg.block_rows) as i64;
        'runs: for &off in &block_offsets {
            for k in 0..cfg.run_len {
                if cols_buf.len() >= target {
                    break 'runs;
                }
                let c = anchor + off + k as i64;
                if c >= 0 && (c as usize) < cfg.n {
                    cols_buf.push(c as u32);
                }
            }
        }
        cols_buf.sort_unstable();
        cols_buf.dedup();
        for &c in &cols_buf {
            coo.push(row, c as usize, sample_value(&mut rng))
                // lint:allow(R1) generator clamps columns in bounds
                .expect("generated column is in bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = BandedConfig { n: 256, ..Default::default() };
        assert_eq!(banded(&cfg), banded(&cfg));
    }

    #[test]
    fn different_seed_differs() {
        let a = BandedConfig { n: 256, ..Default::default() };
        let b = BandedConfig { seed: 1, ..a };
        assert_ne!(banded(&a), banded(&b));
    }

    #[test]
    fn every_row_nonempty() {
        let csr = banded(&BandedConfig { n: 500, ..Default::default() });
        for i in 0..csr.rows() {
            assert!(csr.row_nnz(i) >= 1, "row {i} is empty");
        }
    }

    #[test]
    fn mean_row_nnz_near_target() {
        let cfg = BandedConfig {
            n: 2048,
            mean_row_nnz: 40.0,
            stddev_row_nnz: 10.0,
            ..Default::default()
        };
        let s = banded(&cfg).stats();
        assert!((s.mean_row_nnz - 40.0).abs() < 8.0, "mean {} too far from 40", s.mean_row_nnz);
    }

    #[test]
    fn columns_stay_near_diagonal() {
        let cfg =
            BandedConfig { n: 4096, mean_row_nnz: 16.0, band_factor: 4.0, ..Default::default() };
        let csr = banded(&cfg);
        let half_band = (16.0 * 4.0 / 2.0) as i64 + cfg.block_rows as i64 + cfg.run_len as i64;
        for i in 0..csr.rows() {
            for &c in csr.row_cols(i) {
                let anchor = (i / cfg.block_rows * cfg.block_rows) as i64;
                assert!(
                    ((c as i64) - anchor).abs() <= half_band || c as usize == i,
                    "row {i} col {c} outside band"
                );
            }
        }
    }

    #[test]
    fn neighboring_rows_overlap() {
        // Rows in the same block must share most columns — the locality the
        // mapping algorithm exploits.
        let cfg =
            BandedConfig { n: 1024, mean_row_nnz: 30.0, stddev_row_nnz: 4.0, ..Default::default() };
        let csr = banded(&cfg);
        let mut overlaps = 0.0;
        let mut count = 0;
        for b in (0..csr.rows() - cfg.block_rows).step_by(cfg.block_rows) {
            let a: std::collections::HashSet<u32> = csr.row_cols(b).iter().copied().collect();
            let c: std::collections::HashSet<u32> = csr.row_cols(b + 1).iter().copied().collect();
            let inter = a.intersection(&c).count() as f64;
            overlaps += inter / a.len().max(1) as f64;
            count += 1;
        }
        let mean_overlap = overlaps / count as f64;
        assert!(mean_overlap > 0.5, "mean intra-block overlap {mean_overlap} too low");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        banded(&BandedConfig { n: 0, ..Default::default() });
    }
}
