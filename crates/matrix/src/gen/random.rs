//! Uniform random sparse matrices for tests and property checks.

use super::{rng_for, sample_value};
use crate::{Coo, Csr};
use rand::Rng;

/// Configuration of the uniform random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Non-zeros per row (exact, clamped to `cols`).
    pub row_nnz: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig { rows: 256, cols: 256, row_nnz: 8, seed: 0x5ACE_A003 }
    }
}

/// Generates a matrix with exactly `row_nnz` uniformly random columns per row.
///
/// Uniform column positions are the worst case for the CAM hierarchy (no
/// locality to exploit), making this generator useful for bounding tests.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn uniform_random(cfg: &UniformConfig) -> Csr {
    assert!(cfg.rows > 0 && cfg.cols > 0, "dimensions must be positive");
    let per_row = cfg.row_nnz.min(cfg.cols).max(1);
    let mut rng = rng_for(cfg.seed);
    let mut coo = Coo::new(cfg.rows, cfg.cols);
    coo.reserve(cfg.rows * per_row);
    let mut cols_buf = Vec::with_capacity(per_row);
    for r in 0..cfg.rows {
        cols_buf.clear();
        while cols_buf.len() < per_row {
            let c = rng.gen_range(0..cfg.cols);
            if !cols_buf.contains(&c) {
                cols_buf.push(c);
            }
        }
        for &c in &cols_buf {
            // lint:allow(R1) gen_range keeps columns in bounds
            coo.push(r, c, sample_value(&mut rng)).expect("column in bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_row_nnz() {
        let csr = uniform_random(&UniformConfig { rows: 64, cols: 64, row_nnz: 5, seed: 1 });
        for i in 0..csr.rows() {
            assert_eq!(csr.row_nnz(i), 5);
        }
    }

    #[test]
    fn row_nnz_clamped_to_cols() {
        let csr = uniform_random(&UniformConfig { rows: 4, cols: 3, row_nnz: 10, seed: 1 });
        for i in 0..csr.rows() {
            assert_eq!(csr.row_nnz(i), 3);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = UniformConfig::default();
        assert_eq!(uniform_random(&cfg), uniform_random(&cfg));
    }

    #[test]
    fn no_duplicate_columns_within_row() {
        let csr = uniform_random(&UniformConfig { rows: 100, cols: 50, row_nnz: 20, seed: 2 });
        for i in 0..csr.rows() {
            let cols = csr.row_cols(i);
            let mut sorted = cols.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cols.len());
        }
    }
}
