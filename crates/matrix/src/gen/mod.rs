//! Deterministic synthetic sparse-matrix generators.
//!
//! The paper evaluates on fifteen SuiteSparse matrices (Table I). Those files
//! are not redistributable inside this repository, so the [suite](crate::suite)
//! synthesizes stand-ins with the same row-length distribution (μ, σ) and
//! column-locality character per application domain:
//!
//! * [`banded`] — FEM / structural / 2D-3D problem matrices: clustered row
//!   lengths, column indices concentrated in blocks near the diagonal, heavy
//!   overlap between neighboring rows (what makes L1/L2 CAMs effective).
//! * [`rmat`] — power-law graphs (social networks, web graphs): highly skewed
//!   row lengths and scattered columns (what makes matrices 12–14 behave
//!   poorly in Figure 2 and stress the interconnect).
//! * [`uniform_random`] — uniform random matrices for tests and property
//!   checks.
//!
//! All generators are seeded and deterministic: the same parameters always
//! produce the same matrix, which keeps every experiment reproducible.

mod banded;
mod random;
mod rmat;

pub use banded::{banded, BandedConfig};
pub use random::{uniform_random, UniformConfig};
pub use rmat::{rmat, RmatConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the crate-standard deterministic RNG for a generator seed.
pub(crate) fn rng_for(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws a value from a clamped normal distribution using the Box–Muller
/// transform (avoids a `rand_distr` dependency).
pub(crate) fn sample_normal<R: Rng>(rng: &mut R, mean: f64, stddev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + stddev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a non-zero value in `[-1, 1] \ {0}` for matrix entries.
pub(crate) fn sample_value<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v.abs() > 1e-6 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_sample_mean_converges() {
        let mut rng = rng_for(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_normal(&mut rng, 10.0, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "sample mean {mean} too far from 10");
    }

    #[test]
    fn normal_sample_stddev_converges() {
        let mut rng = rng_for(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 0.0, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 5.0).abs() < 0.25, "sample stddev {} too far from 5", var.sqrt());
    }

    #[test]
    fn values_are_nonzero() {
        let mut rng = rng_for(3);
        for _ in 0..1000 {
            assert!(sample_value(&mut rng).abs() > 1e-6);
        }
    }
}
