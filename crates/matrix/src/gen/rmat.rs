//! Recursive-MATrix (R-MAT) power-law graph generator.

use super::{rng_for, sample_value};
use crate::{Coo, Csr};
use rand::Rng;

/// Configuration of the R-MAT generator (Chakrabarti et al.).
///
/// Produces the skewed, non-structural matrices of Table I (soc-sign-epinions,
/// Stanford, webbase-1M) and the Wiki / LiveJournal-shaped graphs of the
/// Section V-F case study: a few very heavy rows, scattered column indices,
/// poor locality — exactly the inputs that stress SpaceA's interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Number of vertices; the matrix is `n x n`. Rounded up internally to a
    /// power of two for recursion, then trimmed.
    pub n: usize,
    /// Number of edges to draw (duplicates are merged, so the final `nnz` is
    /// slightly lower).
    pub edges: usize,
    /// R-MAT quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // The classic skewed parameterization used by Graph500.
        RmatConfig { n: 1 << 12, edges: 1 << 15, a: 0.57, b: 0.19, c: 0.19, seed: 0x5ACE_A002 }
    }
}

impl RmatConfig {
    /// The bottom-right quadrant probability `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed power-law graph adjacency matrix via R-MAT recursion.
///
/// Every vertex is given a self-loop so that no row is empty (empty rows make
/// workload metrics degenerate and never occur in the paper's Table I suite).
///
/// # Panics
///
/// Panics if `n == 0` or the quadrant probabilities are invalid.
pub fn rmat(cfg: &RmatConfig) -> Csr {
    assert!(cfg.n > 0, "vertex count must be positive");
    let d = cfg.d();
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be non-negative and sum to 1"
    );

    let levels = (cfg.n as f64).log2().ceil() as u32;
    let size = 1usize << levels;
    let mut rng = rng_for(cfg.seed);
    let mut coo = Coo::new(cfg.n, cfg.n);
    coo.reserve(cfg.edges + cfg.n);

    // Self-loops keep every row non-empty (and model page self-rank mass).
    for v in 0..cfg.n {
        // lint:allow(R1) self-loop index < n by the loop bound
        coo.push(v, v, sample_value(&mut rng)).expect("self-loop in bounds");
    }

    let mut placed = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.edges.saturating_mul(8).max(1024);
    while placed < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, size, 0usize, size);
        for _ in 0..levels {
            let p: f64 = rng.gen();
            // Add per-level noise so the distribution is not perfectly
            // self-similar (standard R-MAT smoothing).
            let a = cfg.a * rng.gen_range(0.9..1.1);
            let b = cfg.b * rng.gen_range(0.9..1.1);
            let c = cfg.c * rng.gen_range(0.9..1.1);
            let total = a + b + c + d;
            let (top, left) = if p < a / total {
                (true, true)
            } else if p < (a + b) / total {
                (true, false)
            } else if p < (a + b + c) / total {
                (false, true)
            } else {
                (false, false)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if top {
                r1 = rm;
            } else {
                r0 = rm;
            }
            if left {
                c1 = cm;
            } else {
                c0 = cm;
            }
        }
        if r0 < cfg.n && c0 < cfg.n {
            // lint:allow(R1) guarded by the bounds check above
            coo.push(r0, c0, sample_value(&mut rng)).expect("rmat edge in bounds");
            placed += 1;
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig { n: 512, edges: 2048, ..Default::default() };
        assert_eq!(rmat(&cfg), rmat(&cfg));
    }

    #[test]
    fn no_empty_rows() {
        let csr = rmat(&RmatConfig { n: 1000, edges: 4000, ..Default::default() });
        for i in 0..csr.rows() {
            assert!(csr.row_nnz(i) >= 1);
        }
    }

    #[test]
    fn skew_is_high() {
        // A power-law graph must have σ well above what a uniform random
        // matrix of the same density would give.
        let cfg = RmatConfig { n: 4096, edges: 32768, ..Default::default() };
        let s = rmat(&cfg).stats();
        assert!(
            s.stddev_row_nnz > 1.5 * s.mean_row_nnz.sqrt(),
            "sigma {} not skewed (mu {})",
            s.stddev_row_nnz,
            s.mean_row_nnz
        );
        assert!(s.max_row_nnz > 8 * s.mean_row_nnz as usize);
    }

    #[test]
    fn non_power_of_two_dims_respected() {
        let csr = rmat(&RmatConfig { n: 1000, edges: 3000, ..Default::default() });
        assert_eq!(csr.rows(), 1000);
        assert_eq!(csr.cols(), 1000);
    }

    #[test]
    fn nnz_close_to_requested() {
        let cfg = RmatConfig { n: 2048, edges: 10_000, ..Default::default() };
        let csr = rmat(&cfg);
        // self-loops + edges, minus merged duplicates
        assert!(csr.nnz() > cfg.n + cfg.edges / 2);
        assert!(csr.nnz() <= cfg.n + cfg.edges);
    }

    #[test]
    fn default_d_complements() {
        let cfg = RmatConfig::default();
        assert!((cfg.a + cfg.b + cfg.c + cfg.d() - 1.0).abs() < 1e-12);
    }
}
