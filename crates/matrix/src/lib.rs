//! Sparse-matrix substrate for the SpaceA reproduction.
//!
//! This crate provides the storage formats the paper builds on (Section II-A):
//! [Coordinate list](Coo) (COO) and [Compressed Sparse Row](Csr) (CSR),
//! together with
//!
//! * a reference (software) SpMV used to validate every simulator run,
//! * [Matrix Market](mmio) I/O for interoperability with SuiteSparse dumps,
//! * deterministic synthetic [generators](gen) that reproduce the row-length
//!   and column-locality *shape* of the paper's Table I matrices, and
//! * the [evaluation suite](suite) itself: all fifteen Table I entries with
//!   their published statistics and scaled synthetic stand-ins.
//!
//! # Example
//!
//! ```
//! use spacea_matrix::{Coo, Csr};
//!
//! # fn main() -> Result<(), spacea_matrix::MatrixError> {
//! let mut coo = Coo::new(3, 3);
//! coo.push(0, 0, 2.0)?;
//! coo.push(1, 2, -1.0)?;
//! coo.push(2, 1, 0.5)?;
//! let csr = Csr::from_coo(&coo);
//! let y = csr.spmv(&[1.0, 2.0, 3.0]);
//! assert_eq!(y, vec![2.0, -3.0, 1.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod error;
pub mod formats;
pub mod gen;
pub mod mmio;
pub mod reduce;
pub mod reorder;
pub mod stats;
pub mod suite;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use error::MatrixError;
pub use formats::{FormatKind, SparseFormat};
pub use reorder::Permutation;
pub use stats::MatrixStats;
