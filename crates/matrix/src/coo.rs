use crate::{Csr, MatrixError};

/// A sparse matrix in Coordinate-list (COO) format (paper Section II-A).
///
/// COO stores three parallel lists of length `nnz`: row index, column index,
/// and value. It is the natural construction format; convert to [`Csr`] for
/// computation.
///
/// Entries may be pushed in any order. Duplicate coordinates are allowed and
/// are summed when converting to CSR (the Matrix Market convention).
///
/// # Example
///
/// ```
/// use spacea_matrix::Coo;
///
/// # fn main() -> Result<(), spacea_matrix::MatrixError> {
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 1, 3.0)?;
/// coo.push(1, 0, 4.0)?;
/// assert_eq!(coo.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Creates an empty COO matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`, the index width used by
    /// the on-DRAM layout of SpaceA (4-byte row/column indices).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "SpaceA stores 4-byte indices; dimensions must fit in u32"
        );
        Coo { rows, cols, entries: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including duplicates not yet merged).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::CoordinateOutOfBounds`] if `(row, col)` is
    /// outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), MatrixError> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::CoordinateOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Iterates over `(row, col, value)` triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    ///
    /// This is a convenience alias for [`Csr::from_coo`].
    pub fn to_csr(&self) -> Csr {
        Csr::from_coo(self)
    }

    /// Direct access to the raw entry list, mainly for generators and tests.
    pub(crate) fn entries(&self) -> &[(u32, u32, f64)] {
        &self.entries
    }

    /// Reserves capacity for `additional` further entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }
}

impl Extend<(usize, usize, f64)> for Coo {
    /// Extends the matrix with triples, panicking on out-of-bounds
    /// coordinates (use [`Coo::push`] for fallible insertion).
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            // lint:allow(R1) Extend's documented contract is to panic on out-of-bounds
            self.push(r, c, v).expect("coordinate out of bounds in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let coo = Coo::new(4, 5);
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 5);
        assert_eq!(coo.nnz(), 0);
        assert!(coo.is_empty());
    }

    #[test]
    fn push_in_bounds() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(1, 1, 1.0).is_ok());
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn push_out_of_bounds_row() {
        let mut coo = Coo::new(2, 2);
        let err = coo.push(2, 0, 1.0).unwrap_err();
        assert!(matches!(err, MatrixError::CoordinateOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn push_out_of_bounds_col() {
        let mut coo = Coo::new(2, 2);
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 0, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        let triples: Vec<_> = coo.iter().collect();
        assert_eq!(triples, vec![(2, 0, 1.0), (0, 1, 2.0)]);
    }

    #[test]
    fn extend_collects_triples() {
        let mut coo = Coo::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "coordinate out of bounds")]
    fn extend_panics_out_of_bounds() {
        let mut coo = Coo::new(1, 1);
        coo.extend(vec![(5, 0, 1.0)]);
    }
}
