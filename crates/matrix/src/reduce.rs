//! Canonical-order float reductions.
//!
//! Float addition is not associative, so `.sum::<f64>()` over a container
//! answers differently depending on the iteration order feeding it. Under
//! the parallel simulation engine, per-vault partials arrive in worker
//! order — which is exactly the nondeterminism the D4 lint rule exists to
//! keep out of the deterministic crates. Every float reduction in those
//! crates routes through this module instead: the helpers fold strictly
//! left-to-right over the iterator handed to them, making the reduction
//! order part of the call site's contract (callers pass index-ascending
//! iterators; the double-run determinism suite pins the results).
//!
//! This file is the one place exempt from D4
//! ([`spacea-lint` rule D4](../../lint/src/rules.rs)); everything else
//! calls in.

/// Left-to-right sum of `f64` values, in exactly the iterator's order.
pub fn sum_f64(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0f64;
    for v in values {
        acc += v;
    }
    acc
}

/// Left-to-right sum of `f32` values, in exactly the iterator's order.
pub fn sum_f32(values: impl IntoIterator<Item = f32>) -> f32 {
    let mut acc = 0.0f32;
    for v in values {
        acc += v;
    }
    acc
}

/// Left-to-right product of `f64` values, in exactly the iterator's order.
pub fn product_f64(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 1.0f64;
    for v in values {
        acc *= v;
    }
    acc
}

/// Maximum of `f64` values via [`f64::max`], folding left-to-right from
/// `f64::NEG_INFINITY` (so an empty iterator yields `NEG_INFINITY`, and
/// NaNs are skipped the way `f64::max` skips them).
pub fn max_f64(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = f64::NEG_INFINITY;
    for v in values {
        acc = acc.max(v);
    }
    acc
}

/// Minimum of `f64` values via [`f64::min`], folding left-to-right from
/// `f64::INFINITY`.
pub fn min_f64(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = f64::INFINITY;
    for v in values {
        acc = acc.min(v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_the_iterator_order_exactly() {
        // A sequence chosen so reordering changes the rounded result:
        // (1e16 + 1.0) - 1e16 == 0.0 but (1e16 - 1e16) + 1.0 == 1.0.
        let forward = sum_f64([1e16, 1.0, -1e16]);
        let reordered = sum_f64([1e16, -1e16, 1.0]);
        assert_eq!(forward, 0.0);
        assert_eq!(reordered, 1.0);
        // And the helper is bit-identical to the explicit left fold.
        let xs = [0.1, 0.2, 0.3, 0.4, 0.7];
        let explicit = xs.iter().copied().fold(0.0f64, |a, b| a + b);
        assert_eq!(sum_f64(xs).to_bits(), explicit.to_bits());
    }

    #[test]
    fn empty_reductions_have_identity_results() {
        assert_eq!(sum_f64([]), 0.0);
        assert_eq!(sum_f32([]), 0.0);
        assert_eq!(product_f64([]), 1.0);
        assert_eq!(max_f64([]), f64::NEG_INFINITY);
        assert_eq!(min_f64([]), f64::INFINITY);
    }

    #[test]
    fn max_and_min_skip_nan_like_the_std_combinators() {
        assert_eq!(max_f64([1.0, f64::NAN, 3.0, 2.0]), 3.0);
        assert_eq!(min_f64([4.0, f64::NAN, -1.0]), -1.0);
    }

    #[test]
    fn product_follows_iterator_order() {
        let xs = [1.5, 0.3, 2.0, 7.0];
        let explicit = xs.iter().copied().fold(1.0f64, |a, b| a * b);
        assert_eq!(product_f64(xs).to_bits(), explicit.to_bits());
    }
}
